#include "dist/rank_comm.hpp"

#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <utility>

#include "net/fault.hpp"
#include "net/frame_io.hpp"
#include "net/retry.hpp"
#include "util/strings.hpp"

namespace cas::dist {

namespace {

double now_seconds() {
  using namespace std::chrono;
  return duration<double>(steady_clock::now().time_since_epoch()).count();
}

/// A rendezvous attempt died on a transient wire fault (reset, refused
/// accept, corrupt frame, connection lost). Retried under backoff by the
/// constructor; never escapes RankComm.
struct RendezvousRetry : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// A welcome that simply has not arrived within the per-attempt window:
/// either a wedged stream (re-helloing unwedges it) or a coordinator still
/// assembling the world (re-helloing is a cheap no-op). Unlike a hard
/// fault this consumes no backoff budget — a slow rendezvous paced at one
/// re-hello per window must not exhaust the retry schedule meant for
/// resets; only the overall connect timeout bounds it.
struct AttemptWindowExpired : RendezvousRetry {
  using RendezvousRetry::RendezvousRetry;
};

}  // namespace

RankComm::RankComm(RankCommOptions opts)
    : opts_(std::move(opts)), decoder_(opts_.max_frame_bytes) {
  const bool late = opts_.join || opts_.reconnect;
  if (!late && (opts_.rank < 0 || opts_.rank >= opts_.ranks))
    throw CommError(util::strf("rank_comm: rank %d outside world of %d", opts_.rank, opts_.ranks));
  if (opts_.reconnect && opts_.reconnect_member < 0)
    throw CommError("rank_comm: reconnect needs the surviving member id");
  rank_.store(late ? -1 : opts_.rank, std::memory_order_release);
  ranks_.store(late ? 0 : opts_.ranks, std::memory_order_release);
  member_ = opts_.reconnect ? opts_.reconnect_member : (opts_.join ? -1 : opts_.rank);

  // The whole rendezvous — connect, hello/join, await welcome — retries
  // under bounded backoff when an attempt dies on a transient wire fault:
  // a rank whose hello is reset re-runs the handshake instead of aborting
  // the launch (the coordinator re-welcomes and replays what it routed in
  // the meantime — see Coordinator::handle_frame's re-hello path).
  const double deadline = now_seconds() + opts_.connect_timeout_seconds;
  net::Backoff backoff(opts_.rendezvous_backoff,
                       static_cast<uint64_t>(opts_.reconnect ? opts_.reconnect_member + 0x20000
                                                            : opts_.rank) +
                           (opts_.join ? 0x10000u : 1u));
  for (;;) {
    try {
      const double attempt_deadline =
          opts_.rendezvous_attempt_seconds > 0
              ? std::min(deadline, now_seconds() + opts_.rendezvous_attempt_seconds)
              : deadline;
      rendezvous_once(deadline, attempt_deadline);
      break;
    } catch (const RendezvousRetry& e) {
      fd_.reset();
      // The failed attempt may have left a partial (or poisoned) frame
      // buffered; the next attempt starts from a clean stream.
      decoder_ = net::FrameDecoder(opts_.max_frame_bytes);
      const bool quiet_window = dynamic_cast<const AttemptWindowExpired*>(&e) != nullptr;
      if (!net::retry_enabled() || now_seconds() >= deadline ||
          (!quiet_window && backoff.exhausted()))
        throw CommError(util::strf("rank_comm: rendezvous failed after %d attempt(s): %s",
                                   backoff.attempts() + 1, e.what()));
      rendezvous_retries_.fetch_add(1, std::memory_order_relaxed);
      // Hard faults pace under backoff; quiet windows are already paced by
      // the window itself and retry immediately.
      if (!quiet_window) backoff.sleep();
    }
  }

  reader_ = std::thread([this] { reader_body(); });
  if (opts_.heartbeat_interval_seconds > 0)
    heartbeat_ = std::thread([this] { heartbeat_body(); });
}

void RankComm::rendezvous_once(double deadline, double attempt_deadline) {
  // Connect with retry: sibling processes race the coordinator's bind.
  std::string err;
  for (;;) {
    fd_ = net::connect_tcp(opts_.host, opts_.port, err);
    if (fd_.valid()) break;
    if (opts_.fail_fast_refused)
      throw CommError(util::strf("rank_comm: cannot reach coordinator %s:%u: %s",
                                 opts_.host.c_str(), unsigned{opts_.port}, err.c_str()));
    if (now_seconds() >= deadline)
      throw CommError(util::strf("rank_comm: cannot reach coordinator %s:%u: %s",
                                 opts_.host.c_str(), unsigned{opts_.port}, err.c_str()));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  net::set_nodelay(fd_.get());

  // hello (or join), then block (deadline-bounded) until welcome — the
  // rendezvous. Runs on the caller's thread with the same decoder the
  // reader thread inherits afterwards, so bytes coalesced behind the
  // welcome frame are not lost. Sends go through write_all directly (NOT
  // send_frame_locked_throw): a transient send failure here must stay
  // retryable instead of poisoning the communicator via fail().
  {
    util::Json hs = opts_.reconnect
                        ? make_reconnect(opts_.reconnect_member, opts_.reconnect_epoch,
                                         opts_.hunt_key)
                        : (opts_.join ? make_join(opts_.hunt_key)
                                      : make_hello(opts_.rank, opts_.ranks));
    if (!opts_.failover_addr.empty()) hs["failover"] = opts_.failover_addr;
    const std::string frame = net::encode_frame(hs.dump(0));
    std::string send_err;
    if (!net::write_all(fd_.get(), frame, send_err))
      throw RendezvousRetry("hello send failed: " + send_err);
    frames_sent_.fetch_add(1, std::memory_order_relaxed);
    bytes_sent_.fetch_add(frame.size(), std::memory_order_relaxed);
  }
  bool welcomed = false;
  std::string payload;
  while (!welcomed) {
    for (bool more = true; more && !welcomed;) {
      switch (decoder_.next(payload)) {
        case net::FrameDecoder::Result::kFrame: {
          util::Json j;
          try {
            j = util::Json::parse(payload);
          } catch (const std::exception& e) {
            // A corrupted frame that still decodes as a frame: retryable.
            throw RendezvousRetry(util::strf("bad frame during rendezvous: %s", e.what()));
          }
          const std::string type = frame_type(j);
          if (type == "welcome") {
            welcomed = true;
            if (opts_.join || opts_.reconnect) {
              // The coordinator assigned (join) or echoed (reconnect) our
              // member id; the dense rank arrives with the first rebalance
              // frame.
              const util::Json* rj = j.find("rank");
              const util::Json* nj = j.find("ranks");
              if (rj == nullptr || nj == nullptr)
                throw CommError("rank_comm: malformed welcome for joiner");
              member_ = static_cast<int>(rj->as_int());
              ranks_.store(static_cast<int>(nj->as_int()), std::memory_order_release);
            }
          } else if (type == "abort") {
            // Deliberate refusal (version/rank/key mismatch, hunt over):
            // permanent, never retried.
            const util::Json* r = j.find("reason");
            throw CommError(r != nullptr && r->is_string() ? r->as_string()
                                                           : "rendezvous aborted");
          } else if (type == "msg") {
            mailbox_.post(parse_msg(j));  // early traffic; keep it
          } else {
            // The only frames the coordinator sends before our welcome are
            // welcome, abort, and replayed early traffic. Anything else is
            // a frame whose type a wire fault mangled — the bytes behind it
            // cannot be trusted; start over on a fresh connection.
            throw RendezvousRetry("unexpected '" + type + "' frame during rendezvous");
          }
          break;
        }
        case net::FrameDecoder::Result::kNeedMore:
          more = false;
          break;
        case net::FrameDecoder::Result::kError:
          throw RendezvousRetry("protocol error during rendezvous: " + decoder_.error());
      }
    }
    if (welcomed) break;
    const double remain = deadline - now_seconds();
    if (remain <= 0)
      throw CommError(util::strf("rank_comm: rendezvous timed out (rank %d of %d)", opts_.rank,
                                 opts_.ranks));
    const double attempt_remain = attempt_deadline - now_seconds();
    if (attempt_remain <= 0)
      // No welcome and no error either — a wedged stream (corrupted length
      // prefix, mangled frame) or a coordinator still waiting on
      // stragglers. Re-helloing is cheap and unwedges the former.
      throw AttemptWindowExpired("no welcome within the attempt window");
    pollfd pfd{fd_.get(), POLLIN, 0};
    const int rc =
        ::poll(&pfd, 1, static_cast<int>(std::min(remain, attempt_remain) * 1000) + 1);
    if (rc < 0 && errno != EINTR)
      throw RendezvousRetry(util::strf("poll: %s", std::strerror(errno)));
    if (rc <= 0) continue;
    char buf[16384];
    const ssize_t n = net::fault_recv(fd_.get(), buf, sizeof(buf), 0);
    if (n == 0) throw RendezvousRetry("coordinator closed during rendezvous");
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      throw RendezvousRetry(util::strf("recv: %s", std::strerror(errno)));
    }
    bytes_received_.fetch_add(static_cast<uint64_t>(n), std::memory_order_relaxed);
    decoder_.feed(buf, static_cast<size_t>(n));
  }
}

RankComm::~RankComm() { finalize(); }

void RankComm::send_frame_locked_throw(const util::Json& j) {
  const std::string frame = net::encode_frame(j.dump(0));
  std::string err;
  if (!net::write_all(fd_.get(), frame, err)) {
    fail("rank_comm: " + err);
    throw CommError(failure());
  }
  frames_sent_.fetch_add(1, std::memory_order_relaxed);
  bytes_sent_.fetch_add(frame.size(), std::memory_order_relaxed);
}

void RankComm::send(int dest, par::Message msg) {
  if (dest < 0 || dest >= size()) throw CommError("rank_comm: bad destination rank");
  if (failed()) throw CommError(failure());
  msg.source = rank();
  const util::Json frame = make_msg(dest, msg);
  std::scoped_lock lock(send_mu_);
  send_frame_locked_throw(frame);
}

void RankComm::broadcast_others(par::Message msg) {
  if (failed()) throw CommError(failure());
  msg.source = rank();
  const util::Json frame = make_msg(/*to=*/-1, msg);
  std::scoped_lock lock(send_mu_);
  send_frame_locked_throw(frame);
}

void RankComm::set_view(int rank, int ranks) {
  rank_.store(rank, std::memory_order_release);
  ranks_.store(ranks, std::memory_order_release);
}

void RankComm::send_control(const util::Json& frame) {
  if (failed()) throw CommError(failure());
  std::scoped_lock lock(send_mu_);
  send_frame_locked_throw(frame);
}

std::optional<util::Json> RankComm::take_control(double timeout_seconds) {
  std::unique_lock lock(control_mu_);
  const auto pred = [this] { return !control_.empty() || failed(); };
  if (timeout_seconds > 0) {
    control_cv_.wait_for(lock, std::chrono::duration<double>(timeout_seconds), pred);
  } else {
    control_cv_.wait(lock, pred);
  }
  if (!control_.empty()) {
    util::Json j = std::move(control_.front());
    control_.pop_front();
    return j;
  }
  if (failed()) throw CommError(failure());
  return std::nullopt;
}

void RankComm::hard_kill() {
  bool expected = false;
  if (!finalized_.compare_exchange_strong(expected, true)) return;
  stop_threads_.store(true, std::memory_order_release);
  hb_cv_.notify_all();
  if (fd_.valid()) ::shutdown(fd_.get(), SHUT_RDWR);  // FIN, no bye — looks killed
  if (reader_.joinable()) reader_.join();
  if (heartbeat_.joinable()) heartbeat_.join();
  fd_.reset();
  fail("rank_comm: hard-killed (fault injection)");
  control_cv_.notify_all();
}

void RankComm::inject_disconnect() {
  if (fd_.valid()) ::shutdown(fd_.get(), SHUT_RDWR);
}

par::Message RankComm::recv_collective(int tag, int64_t seq) {
  par::Mailbox::Deadline deadline;
  if (opts_.collective_timeout_seconds > 0)
    deadline = std::chrono::steady_clock::now() +
               std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(opts_.collective_timeout_seconds));
  const double t0 = now_seconds();
  auto m = mailbox_.take_collective(tag, seq, deadline);
  const double waited = now_seconds() - t0;
  {
    std::scoped_lock lock(latency_mu_);
    collective_wait_.add(waited);
  }
  collective_rounds_.fetch_add(1, std::memory_order_relaxed);
  if (!m) {
    if (failed()) throw CommError(failure());
    fail(util::strf("rank_comm: collective (tag %d, seq %lld) timed out after %.1fs — peer dead?",
                    tag, static_cast<long long>(seq), waited));
    throw CommError(failure());
  }
  return std::move(*m);
}

void RankComm::fail(const std::string& reason) {
  {
    std::scoped_lock lock(failure_mu_);
    if (failed_.load(std::memory_order_acquire)) return;
    failure_ = reason;
    failed_.store(true, std::memory_order_release);
  }
  remote_stop_.store(true, std::memory_order_release);
  mailbox_.close();
  control_cv_.notify_all();
  // Sever the transport too: a failed communicator that leaves its socket
  // open looks like a live-but-silent rank, and the coordinator would only
  // notice at the heartbeat deadline. EOF makes the death visible now.
  // (shutdown, not close — the reader thread still owns the fd.)
  if (fd_.valid()) ::shutdown(fd_.get(), SHUT_RDWR);
}

util::Json RankComm::latest_state_sync() const {
  std::scoped_lock lock(state_sync_mu_);
  return state_sync_;
}

std::string RankComm::failure() const {
  std::scoped_lock lock(failure_mu_);
  return failure_.empty() ? "rank_comm: communicator failed" : failure_;
}

/// Consume every complete frame currently buffered in the decoder. Returns
/// false when the communicator failed (the reader must exit).
bool RankComm::drain_decoder() {
  std::string payload;
  for (bool more = true; more;) {
    switch (decoder_.next(payload)) {
      case net::FrameDecoder::Result::kFrame: {
        frames_received_.fetch_add(1, std::memory_order_relaxed);
        util::Json j;
        try {
          j = util::Json::parse(payload);
        } catch (const std::exception& e) {
          fail(util::strf("rank_comm: bad frame from coordinator: %s", e.what()));
          return false;
        }
        const std::string type = frame_type(j);
        if (type == "msg") {
          par::Message m;
          try {
            m = parse_msg(j);
          } catch (const CommError& e) {
            fail(e.what());
            return false;
          }
          if (m.tag == par::kTagSolutionFound || m.tag == par::kTagTerminate)
            remote_stop_.store(true, std::memory_order_release);
          mailbox_.post(std::move(m));
        } else if (type == "abort") {
          const util::Json* r = j.find("reason");
          fail(r != nullptr && r->is_string() ? r->as_string() : "aborted by coordinator");
          return false;
        } else if (type == "rebalance") {
          {
            std::scoped_lock lock(control_mu_);
            control_.push_back(std::move(j));
          }
          control_cv_.notify_all();
        } else if (type == "state_sync") {
          // We are the elected standby: keep only the newest replicated
          // state — promotion reads it after the communicator fails.
          std::scoped_lock lock(state_sync_mu_);
          state_sync_ = std::move(j);
        }
        // welcome duplicates / unknown types: ignored.
        break;
      }
      case net::FrameDecoder::Result::kNeedMore:
        more = false;
        break;
      case net::FrameDecoder::Result::kError:
        fail("rank_comm: protocol error: " + decoder_.error());
        return false;
    }
  }
  return true;
}

void RankComm::reader_body() {
  // Drain first: the rendezvous may have left frames coalesced behind the
  // welcome sitting fully buffered in the decoder, and no further bytes
  // need ever arrive to complete them.
  if (!drain_decoder()) return;
  while (!stop_threads_.load(std::memory_order_acquire)) {
    pollfd pfd{fd_.get(), POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 200);
    if (rc < 0) {
      if (errno == EINTR) continue;
      fail(util::strf("rank_comm: poll: %s", std::strerror(errno)));
      return;
    }
    if (rc == 0) continue;
    char buf[16384];
    const ssize_t n = net::fault_recv(fd_.get(), buf, sizeof(buf), 0);
    if (n == 0) {
      if (!finalized_.load(std::memory_order_acquire))
        fail("rank_comm: coordinator closed the connection");
      return;
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      if (!finalized_.load(std::memory_order_acquire))
        fail(util::strf("rank_comm: recv: %s", std::strerror(errno)));
      return;
    }
    bytes_received_.fetch_add(static_cast<uint64_t>(n), std::memory_order_relaxed);
    decoder_.feed(buf, static_cast<size_t>(n));
    if (!drain_decoder()) return;
  }
}

void RankComm::heartbeat_body() {
  const auto interval = std::chrono::duration<double>(opts_.heartbeat_interval_seconds);
  std::unique_lock lock(hb_mu_);
  while (!stop_threads_.load(std::memory_order_acquire)) {
    hb_cv_.wait_for(lock, interval,
                    [this] { return stop_threads_.load(std::memory_order_acquire); });
    if (stop_threads_.load(std::memory_order_acquire)) return;
    if (failed()) return;
    const util::Json frame = make_hb(member_);
    std::scoped_lock send_lock(send_mu_);
    try {
      send_frame_locked_throw(frame);
    } catch (const CommError&) {
      return;  // fail() already ran
    }
  }
}

void RankComm::finalize() {
  bool expected = false;
  if (!finalized_.compare_exchange_strong(expected, true)) return;
  if (!failed() && fd_.valid()) {
    // Best-effort clean detach; the coordinator counts byes.
    std::scoped_lock lock(send_mu_);
    try {
      send_frame_locked_throw(make_bye(member_));
    } catch (const CommError&) {
    }
  }
  stop_threads_.store(true, std::memory_order_release);
  hb_cv_.notify_all();
  if (reader_.joinable()) reader_.join();
  if (heartbeat_.joinable()) heartbeat_.join();
  fd_.reset();
}

util::Json RankComm::stats_json() const {
  util::Json j = util::Json::object();
  j["rank"] = rank();
  j["ranks"] = size();
  j["member"] = member_;
  j["frames_sent"] = frames_sent_.load(std::memory_order_relaxed);
  j["bytes_sent"] = bytes_sent_.load(std::memory_order_relaxed);
  j["frames_received"] = frames_received_.load(std::memory_order_relaxed);
  j["bytes_received"] = bytes_received_.load(std::memory_order_relaxed);
  j["collective_rounds"] = collective_rounds_.load(std::memory_order_relaxed);
  j["rendezvous_retries"] = rendezvous_retries_.load(std::memory_order_relaxed);
  {
    std::scoped_lock lock(latency_mu_);
    util::Json lat = util::Json::object();
    lat["count"] = collective_wait_.count();
    lat["mean_ms"] = collective_wait_.mean() * 1e3;
    lat["p50_ms"] = collective_wait_.percentile(0.50) * 1e3;
    lat["p95_ms"] = collective_wait_.percentile(0.95) * 1e3;
    lat["p99_ms"] = collective_wait_.percentile(0.99) * 1e3;
    lat["max_ms"] = collective_wait_.max() * 1e3;
    j["collective_wait"] = std::move(lat);
  }
  return j;
}

}  // namespace cas::dist
