// Durable checkpoints for elastic distributed hunts.
//
// A checkpoint file is a one-line JSON header followed by a JSON payload:
//
//   {"bytes":<payload bytes>,"crc":"<fnv1a-64 hex>","v":1}\n
//   <payload JSON, exactly `bytes` bytes>
//
// The header makes truncation (bytes mismatch) and corruption (checksum
// mismatch) detectable before any payload field is trusted, and carries the
// format version for forward compatibility. Writes are atomic: the blob is
// written to a sibling `.tmp` file, fsync'd, then rename(2)'d into place —
// a reader never observes a half-written checkpoint, no matter where the
// writer was killed (the kill-during-write test pins this).
//
// The directory layout under --ckpt-dir:
//   walkers_m<member>_e<epoch>.ckpt   one per member per epoch: the mid-walk
//                                     snapshots of every walker that member
//                                     owned at epoch <epoch>
//   manifest.ckpt                     written by the coordinator host once
//                                     ALL active members have acknowledged
//                                     epoch E — the consistent cut a
//                                     --resume uses
//   manifest.prev.ckpt                the predecessor manifest, rotated
//                                     aside before each manifest write: if
//                                     the writer died mid-manifest (torn
//                                     file), --resume falls back to the
//                                     previous consistent cut, whose wave
//                                     files the pruner deliberately keeps
//
// All 64-bit counters are serialized as decimal strings because util::Json
// stores numbers as doubles (2^53 integer precision).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "runtime/problems.hpp"
#include "util/json.hpp"

namespace cas::dist {

/// Checkpoint codec/version errors (truncated, corrupted, checksum or
/// version mismatch, unwritable directory).
class CkptError : public std::runtime_error {
 public:
  explicit CkptError(const std::string& what) : std::runtime_error(what) {}
};

inline constexpr int kCkptVersion = 1;
inline constexpr const char* kManifestFile = "manifest.ckpt";
inline constexpr const char* kManifestPrevFile = "manifest.prev.ckpt";

/// FNV-1a 64-bit over the payload bytes — the header checksum.
[[nodiscard]] uint64_t fnv1a64(std::string_view bytes);

/// uint64 <-> decimal-string JSON spellings.
[[nodiscard]] util::Json u64_json(uint64_t v);
[[nodiscard]] uint64_t u64_from(const util::Json& v, const std::string& what);

/// Atomically write `payload` to `path` (tmp + fsync + rename). Returns the
/// total file size in bytes. Throws CkptError on I/O failure.
size_t write_ckpt_file(const std::string& path, const util::Json& payload);

/// Read and validate a checkpoint file. Throws CkptError when the file is
/// missing, truncated, corrupted, checksum-mismatched, or written by an
/// unsupported format version.
[[nodiscard]] util::Json read_ckpt_file(const std::string& path);

/// Write `dir`'s resume manifest, first rotating any existing manifest to
/// manifest.prev.ckpt so a torn write can never destroy the only good cut.
/// Throws CkptError on I/O failure (the rotated predecessor survives).
size_t write_manifest_file(const std::string& dir, const util::Json& payload);

/// Read `dir`'s resume manifest, falling back to the rotated predecessor
/// when manifest.ckpt is missing, truncated, or corrupt. Throws CkptError
/// when neither validates; a non-null `fell_back` reports which was used.
[[nodiscard]] util::Json read_manifest_file(const std::string& dir, bool* fell_back = nullptr);

/// Per-member wave file name: "walkers_m<member>_e<epoch>.ckpt".
[[nodiscard]] std::string walker_file_name(int member, uint64_t epoch);

/// A walker checkpoint file discovered in a checkpoint directory.
struct WalkerFileRef {
  std::string path;
  int member = -1;
  uint64_t epoch = 0;
};

/// Scan `dir` for walker checkpoint files (by name pattern; contents are
/// validated on read). Missing directory yields an empty list.
[[nodiscard]] std::vector<WalkerFileRef> list_walker_files(const std::string& dir);

/// Delete walker files of waves older than `keep_from_epoch` (retention:
/// the manifest wave and the wave before it are kept, older waves are
/// garbage). Best-effort; unlink errors are ignored.
void prune_walker_files(const std::string& dir, uint64_t keep_from_epoch);

/// Mid-walk snapshot codec (runtime::WalkSnapshot <-> JSON).
[[nodiscard]] util::Json walk_snapshot_to_json(const runtime::WalkSnapshot& s);
[[nodiscard]] runtime::WalkSnapshot walk_snapshot_from_json(const util::Json& j);

/// core::RunStats codec, reused by the snapshot codec and by the epoch
/// frames that carry solver stats coordinator-side.
[[nodiscard]] util::Json run_stats_to_json(const core::RunStats& st);
[[nodiscard]] core::RunStats run_stats_from_json(const util::Json& j);

}  // namespace cas::dist
