#include "dist/world.hpp"

#include <chrono>
#include <thread>

namespace cas::dist {

World::World(WorldOptions opts, const std::function<void(uint16_t)>& on_listening)
    : opts_(opts) {
  if (opts_.rank == 0 && !opts_.join) {
    CoordinatorOptions co;
    co.host = opts_.host;
    co.port = opts_.port;
    co.ranks = opts_.ranks;
    co.heartbeat_timeout_seconds = opts_.heartbeat_timeout_seconds;
    co.join_timeout_seconds = opts_.connect_timeout_seconds * 2;
    co.elastic = opts_.elastic;
    coordinator_ = std::make_unique<Coordinator>(co);
    port_ = coordinator_->port();
    if (on_listening) on_listening(port_);
  } else {
    port_ = opts_.port;
  }
  RankCommOptions rc;
  rc.host = opts_.host;
  rc.port = port_;
  rc.rank = opts_.rank;
  rc.ranks = opts_.ranks;
  rc.connect_timeout_seconds = opts_.connect_timeout_seconds;
  rc.heartbeat_interval_seconds = opts_.heartbeat_interval_seconds;
  rc.collective_timeout_seconds = opts_.collective_timeout_seconds;
  rc.join = opts_.join;
  rc.hunt_key = opts_.hunt_key;
  comm_ = std::make_unique<RankComm>(rc);
}

void World::set_hunt(const std::string& key, uint64_t seed, int walkers) {
  if (coordinator_ != nullptr) coordinator_->set_hunt(key, seed, walkers);
}

void World::rejoin(const std::string& hunt_key) {
  if (coordinator_ != nullptr)
    throw CommError("world: the coordinator-hosting member cannot rejoin its own world");
  if (comm_ != nullptr) comm_->finalize();  // joins threads; idempotent on a failed comm
  RankCommOptions rc;
  rc.host = opts_.host;
  rc.port = port_;
  rc.rank = -1;
  rc.ranks = 0;
  rc.connect_timeout_seconds = opts_.connect_timeout_seconds;
  rc.heartbeat_interval_seconds = opts_.heartbeat_interval_seconds;
  rc.collective_timeout_seconds = opts_.collective_timeout_seconds;
  rc.join = true;
  rc.hunt_key = hunt_key;
  comm_ = std::make_unique<RankComm>(rc);
  opts_.join = true;
  opts_.hunt_key = hunt_key;
  opts_.rank = -1;
}

void World::finalize() {
  if (comm_ != nullptr) comm_->finalize();
  if (coordinator_ != nullptr) {
    // Give the other ranks a moment to say bye so their detach is clean
    // rather than racing the router teardown.
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (!coordinator_->all_detached() && std::chrono::steady_clock::now() < deadline)
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    coordinator_->stop();
  }
}

util::Json World::stats_json() const {
  util::Json j = comm_ != nullptr ? comm_->stats_json() : util::Json::object();
  if (coordinator_ != nullptr) j["coordinator"] = coordinator_->stats().to_json();
  return j;
}

}  // namespace cas::dist
