#include "dist/world.hpp"

#include <chrono>
#include <cstdio>
#include <thread>
#include <utility>

#include "net/socket.hpp"

namespace cas::dist {

namespace {

// "host:port" → pair; throws CommError on anything unparseable.
std::pair<std::string, uint16_t> split_addr(const std::string& addr) {
  const size_t colon = addr.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= addr.size())
    throw CommError("world: malformed failover address '" + addr + "'");
  const std::string host = addr.substr(0, colon);
  unsigned long port = 0;
  try {
    port = std::stoul(addr.substr(colon + 1));
  } catch (const std::exception&) {
    throw CommError("world: malformed failover address '" + addr + "'");
  }
  if (port == 0 || port > 65535)
    throw CommError("world: malformed failover address '" + addr + "'");
  return {host, static_cast<uint16_t>(port)};
}

}  // namespace

World::World(WorldOptions opts, const std::function<void(uint16_t)>& on_listening)
    : opts_(std::move(opts)) {
  if (opts_.rank == 0 && !opts_.join) {
    CoordinatorOptions co;
    co.host = opts_.host;
    co.port = opts_.port;
    co.ranks = opts_.ranks;
    co.heartbeat_timeout_seconds = opts_.heartbeat_timeout_seconds;
    co.join_timeout_seconds = opts_.connect_timeout_seconds * 2;
    co.elastic = opts_.elastic;
    co.standby = opts_.standby;
    co.reconnect_grace_seconds = opts_.connect_timeout_seconds * 2;
    coordinator_ = std::make_unique<Coordinator>(co);
    port_ = coordinator_->port();
    if (on_listening) on_listening(port_);
  } else {
    port_ = opts_.port;
    if (opts_.standby) {
      // Pre-bind the promotion listener NOW, while everything is healthy:
      // its address rides in the hello/join frame, and survivors that race
      // a promotion park in this socket's backlog instead of being
      // refused. Best-effort — a bind failure just means this member is
      // not standby-eligible.
      std::string err;
      net::Fd lfd = net::listen_tcp(opts_.host, 0, /*backlog=*/16, err);
      if (lfd.valid()) {
        failover_addr_ = opts_.host + ":" + std::to_string(net::local_port(lfd.get()));
        failover_listen_ = std::move(lfd);
      } else {
        std::fprintf(stderr, "[world] standby listener bind failed (%s); not standby-eligible\n",
                     err.c_str());
      }
    }
  }
  RankCommOptions rc = base_comm_options();
  rc.rank = opts_.rank;
  rc.ranks = opts_.ranks;
  rc.join = opts_.join;
  rc.hunt_key = opts_.hunt_key;
  comm_ = std::make_unique<RankComm>(rc);
}

RankCommOptions World::base_comm_options() const {
  RankCommOptions rc;
  rc.host = opts_.host;
  rc.port = port_;
  rc.connect_timeout_seconds = opts_.connect_timeout_seconds;
  rc.heartbeat_interval_seconds = opts_.heartbeat_interval_seconds;
  rc.collective_timeout_seconds = opts_.collective_timeout_seconds;
  rc.failover_addr = failover_addr_;
  return rc;
}

void World::set_hunt(const std::string& key, uint64_t seed, int walkers) {
  if (coordinator_ != nullptr) coordinator_->set_hunt(key, seed, walkers);
}

void World::rejoin(const std::string& hunt_key) {
  if (coordinator_ != nullptr)
    throw CommError("world: the coordinator-hosting member cannot rejoin its own world");
  if (comm_ != nullptr) comm_->finalize();  // joins threads; idempotent on a failed comm
  RankCommOptions rc = base_comm_options();
  rc.rank = -1;
  rc.ranks = 0;
  rc.join = true;
  rc.hunt_key = hunt_key;
  comm_ = std::make_unique<RankComm>(rc);
  opts_.join = true;
  opts_.hunt_key = hunt_key;
  opts_.rank = -1;
}

bool World::coordinator_alive() const {
  std::string err;
  net::Fd probe = net::connect_tcp(opts_.host, port_, err);
  return probe.valid();
}

void World::promote() {
  if (coordinator_ != nullptr)
    throw CommError("world: already hosting the coordinator");
  if (!failover_listen_.valid())
    throw CommError("world: no pre-bound failover listener (standby disabled or bind failed)");
  const util::Json sync = comm_ != nullptr ? comm_->latest_state_sync() : util::Json();
  const util::Json* state = sync.is_object() ? sync.find("state") : nullptr;
  if (state == nullptr || !state->is_object())
    throw CommError(
        "world: no replicated coordinator state to promote from "
        "(the coordinator died before completing wave 0)");
  const int member = comm_->member();
  std::string key;
  if (const util::Json* kj = state->find("key"); kj != nullptr && kj->is_string())
    key = kj->as_string();
  comm_->finalize();

  CoordinatorOptions co;
  co.host = opts_.host;
  co.ranks = opts_.ranks;
  co.heartbeat_timeout_seconds = opts_.heartbeat_timeout_seconds;
  co.join_timeout_seconds = opts_.connect_timeout_seconds * 2;
  co.elastic = true;
  co.standby = opts_.standby;
  co.reconnect_grace_seconds = opts_.connect_timeout_seconds * 2;
  co.host_member = member;
  coordinator_ = std::make_unique<Coordinator>(co, std::move(failover_listen_), *state);
  port_ = coordinator_->port();
  opts_.port = port_;
  failover_addr_.clear();  // the host is never its own standby
  failover_member_ = -1;
  failover_addr_cache_.clear();

  // Re-rendezvous our own communicator against the coordinator we now
  // host, keeping the stable member id — same handshake the survivors use.
  RankCommOptions rc = base_comm_options();
  rc.rank = -1;
  rc.ranks = 0;
  rc.reconnect = true;
  rc.reconnect_member = member;
  rc.reconnect_epoch = frame_u64(sync, "epoch");
  rc.hunt_key = key;
  comm_ = std::make_unique<RankComm>(rc);
  opts_.rank = -1;
  opts_.hunt_key = key;
}

void World::reconnect(const std::string& addr, const std::string& hunt_key) {
  if (coordinator_ != nullptr)
    throw CommError("world: the coordinator-hosting member cannot reconnect elsewhere");
  const auto [host, port] = split_addr(addr);
  const int member = comm_ != nullptr ? comm_->member() : -1;
  if (member < 0) throw CommError("world: no stable member id to reconnect with");
  if (comm_ != nullptr) comm_->finalize();
  opts_.host = host;
  port_ = port;
  opts_.port = port;
  RankCommOptions rc = base_comm_options();
  rc.rank = -1;
  rc.ranks = 0;
  rc.reconnect = true;
  rc.reconnect_member = member;
  rc.reconnect_epoch = failover_epoch_;
  rc.hunt_key = hunt_key;
  // The standby's listener existed before the hunt started, so a refusal
  // proves the standby process is ALSO dead — double failure, abort now.
  rc.fail_fast_refused = true;
  comm_ = std::make_unique<RankComm>(rc);
  opts_.rank = -1;
  opts_.hunt_key = hunt_key;
}

void World::note_failover(int standby_member, const std::string& standby_addr, uint64_t epoch) {
  failover_member_ = standby_member;
  failover_addr_cache_ = standby_addr;
  failover_epoch_ = epoch;
}

int World::promoted_from() const {
  return coordinator_ != nullptr ? coordinator_->promoted_from() : -1;
}

void World::crash() {
  if (comm_ != nullptr) comm_->hard_kill();
  coordinator_.reset();  // listener + every peer fd closed: survivors see EOF
  failover_listen_.reset();
}

void World::finalize() {
  if (comm_ != nullptr) comm_->finalize();
  if (coordinator_ != nullptr) {
    // Give the other ranks a moment to say bye so their detach is clean
    // rather than racing the router teardown.
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (!coordinator_->all_detached() && std::chrono::steady_clock::now() < deadline)
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    coordinator_->stop();
  }
}

util::Json World::stats_json() const {
  util::Json j = comm_ != nullptr ? comm_->stats_json() : util::Json::object();
  if (coordinator_ != nullptr) j["coordinator"] = coordinator_->stats().to_json();
  return j;
}

}  // namespace cas::dist
