// RankComm: one process's endpoint of the distributed communicator. It
// speaks the same surface as the in-process par::RankCtx — send /
// broadcast_others / termination_pending plus the CollectiveEndpoint
// concept — so the collective algorithms in par/collectives.hpp run
// UNCHANGED over TCP: the same code path that synchronizes walker threads
// synchronizes processes, which is what makes the two backends
// trajectory-compatible by construction (the parity test pins it).
//
// Transport: a blocking connection to the rank-0 coordinator. A reader
// thread decodes incoming frames into the SAME par::Mailbox implementation
// the in-process backend uses (selective receive, tag matching, the
// termination fast-flag); a heartbeat thread keeps the coordinator's
// liveness policing fed. A received abort — or connection loss, or a
// collective outliving its deadline — fails the communicator: the mailbox
// closes, every blocked receive unwinds, and CommError propagates.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "dist/wire.hpp"
#include "net/frame.hpp"
#include "net/retry.hpp"
#include "net/socket.hpp"
#include "par/collectives.hpp"
#include "par/mailbox.hpp"
#include "util/histogram.hpp"
#include "util/json.hpp"

namespace cas::dist {

struct RankCommOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  int rank = 0;
  int ranks = 1;
  /// Window for connect + rendezvous (connect retries until the
  /// coordinator's socket exists — ranks race the rank-0 process's bind).
  double connect_timeout_seconds = 15.0;
  /// Heartbeat cadence; 0 disables the heartbeat thread.
  double heartbeat_interval_seconds = 1.0;
  /// A blocking collective receive outliving this deadline throws
  /// CommError (dead-peer detection from the waiting side). 0 = forever.
  double collective_timeout_seconds = 120.0;
  size_t max_frame_bytes = net::kDefaultMaxFrame;
  /// Late-join handshake (elastic worlds): send `join` instead of `hello`;
  /// the welcome then carries the coordinator-assigned member id, and the
  /// dense rank stays -1 until the first rebalance frame names one.
  bool join = false;
  /// The canonical request key carried in the join frame (the coordinator
  /// refuses joiners whose key does not match the hunt in progress).
  std::string hunt_key;
  /// Post-promotion re-rendezvous (wire v3): send `reconnect` instead of
  /// hello/join, carrying the stable member id this process held before
  /// the coordinator died and the last epoch it observed. The welcome
  /// echoes the member id; the dense rank arrives with the resume
  /// rebalance, exactly like a late join.
  bool reconnect = false;
  int reconnect_member = -1;
  uint64_t reconnect_epoch = 0;
  /// This process's pre-bound promotion listener, announced in the
  /// hello/join/reconnect frame so the coordinator can elect it standby.
  /// Empty = not standby-eligible.
  std::string failover_addr;
  /// Fail the rendezvous on the FIRST refused connect instead of pacing
  /// retries until the deadline. Used by the reconnect handshake: the
  /// standby's listener was bound before the hunt started, so a refusal
  /// proves the standby process is dead — the double-failure abort must be
  /// prompt, not a connect-timeout hang.
  bool fail_fast_refused = false;
  /// Pacing for rendezvous retries: a connect/hello/welcome attempt that
  /// dies on a wire fault (reset, refusal, corrupt frame) is retried under
  /// this schedule — bounded by connect_timeout_seconds overall and
  /// disabled entirely by CAS_FAULT_NO_RETRY. Deliberate refusals (abort
  /// frames: version/rank/key mismatch) are never retried.
  net::BackoffOptions rendezvous_backoff;
  /// Per-attempt patience for the welcome wait. Some wire faults leave the
  /// stream wedged instead of broken — a corrupted length prefix parks the
  /// decoder mid-frame, a corrupted frame type turns the welcome into an
  /// ignorable stranger — and the connection stays healthy-looking on both
  /// ends. An attempt that has not produced a welcome within this window
  /// abandons the connection and re-hellos (the coordinator replays the
  /// lost welcome). 0 = wait the whole connect timeout.
  double rendezvous_attempt_seconds = 2.0;
};

class RankComm {
 public:
  /// Connects, says hello (or join), and blocks until welcome. Throws
  /// CommError.
  explicit RankComm(RankCommOptions opts);
  ~RankComm();
  RankComm(const RankComm&) = delete;
  RankComm& operator=(const RankComm&) = delete;

  // --- CollectiveEndpoint + point-to-point surface ---
  [[nodiscard]] int rank() const { return rank_.load(std::memory_order_acquire); }
  [[nodiscard]] int size() const { return ranks_.load(std::memory_order_acquire); }
  void send(int dest, par::Message msg);
  [[nodiscard]] par::Message recv_collective(int tag, int64_t seq);
  [[nodiscard]] int64_t next_seq() { return static_cast<int64_t>(collective_seq_++); }
  void broadcast_others(par::Message msg);
  [[nodiscard]] std::optional<par::Message> try_recv() { return mailbox_.try_take(); }
  [[nodiscard]] bool termination_pending() const {
    return mailbox_.termination_pending() || failed();
  }

  /// Flipped by the reader thread on a remote SOLUTION_FOUND / TERMINATE
  /// or on communicator failure — wired into MultiWalkOptions::external_stop
  /// so local walkers unwind at their next probe.
  [[nodiscard]] std::atomic<bool>& remote_stop() { return remote_stop_; }

  /// Epoch boundary between successive requests on one long-lived world:
  /// re-arms the remote-stop latch and drains stray SOLUTION_FOUND
  /// broadcasts left over from the previous request (safe only after its
  /// final barrier — see the runner's epilogue).
  void begin_epoch() {
    remote_stop_.store(false, std::memory_order_release);
    mailbox_.drain();
  }

  // --- elastic surface ---

  /// The stable member id (== rank for initial members; coordinator-
  /// assigned for late joiners). Identity on the wire; the dense rank
  /// from rank() is what the collective surface uses.
  [[nodiscard]] int member() const { return member_; }

  /// Adopt the membership view a rebalance frame announced: the dense
  /// rank this member now holds (-1 = retired) and the active world size.
  void set_view(int rank, int ranks);

  /// Send a raw control frame (epoch / ckpt / leave) to the coordinator.
  void send_control(const util::Json& frame);

  /// Block until the coordinator's next control frame (rebalance) arrives.
  /// Returns nullopt on timeout; throws CommError once the communicator
  /// has failed.
  [[nodiscard]] std::optional<util::Json> take_control(double timeout_seconds);

  /// Fault injection: die like a SIGKILLed process — shut the socket down
  /// with no bye, join the threads, fail the communicator. The coordinator
  /// sees a connection lost, exactly as for a real kill.
  void hard_kill();

  /// Fault injection: sever just the TRANSPORT (shutdown, no bye), leaving
  /// the communicator object alive. The reader thread observes EOF and
  /// fails the comm — what a mid-epoch network partition looks like; the
  /// elastic runner's re-join path is the recovery under test.
  void inject_disconnect();

  /// Clean detach: bye to the coordinator, threads joined, socket closed.
  /// Idempotent; also run by the destructor.
  void finalize();

  [[nodiscard]] bool failed() const { return failed_.load(std::memory_order_acquire); }
  [[nodiscard]] std::string failure() const;

  /// The most recent state_sync frame the coordinator mirrored to this
  /// member ({"type","epoch","state"}), or null if none arrived — only the
  /// elected standby ever receives one. Thread-safe; survives failure and
  /// finalize, which is what promotion reads it after.
  [[nodiscard]] util::Json latest_state_sync() const;

  /// Comm counters + collective wait-latency percentiles for the report's
  /// dist provenance block.
  [[nodiscard]] util::Json stats_json() const;

 private:
  /// One connect + hello/join + await-welcome attempt. Throws
  /// RendezvousRetry (internal) on transient wire failures, CommError on
  /// deliberate refusals and deadline expiry.
  void rendezvous_once(double deadline, double attempt_deadline);
  void fail(const std::string& reason);
  bool drain_decoder();
  void reader_body();
  void heartbeat_body();
  void send_frame_locked_throw(const util::Json& j);

  RankCommOptions opts_;
  net::Fd fd_;
  /// Used by the constructor's rendezvous (caller thread), then handed to
  /// the reader thread — never both at once.
  net::FrameDecoder decoder_;
  par::Mailbox mailbox_;
  uint64_t collective_seq_ = 0;

  // The current membership view (dense rank + active world size); fixed
  // for classic worlds, updated by set_view at every rebalance in elastic
  // ones. member_ is written once during construction.
  std::atomic<int> rank_{0};
  std::atomic<int> ranks_{1};
  int member_ = 0;

  std::mutex control_mu_;
  std::condition_variable control_cv_;
  std::deque<util::Json> control_;

  mutable std::mutex state_sync_mu_;
  util::Json state_sync_;  // latest replicated coordinator state (standby)

  std::mutex send_mu_;
  std::atomic<bool> stop_threads_{false};
  std::atomic<bool> finalized_{false};
  std::atomic<bool> failed_{false};
  std::atomic<bool> remote_stop_{false};
  mutable std::mutex failure_mu_;
  std::string failure_;
  std::condition_variable hb_cv_;
  std::mutex hb_mu_;

  // Counters. frames/bytes sent are guarded by send_mu_; received ones are
  // reader-thread-only until the threads are joined; the histogram and
  // round counter are caller-thread-only. stats_json() is documented safe
  // after finalize() and best-effort live.
  std::atomic<uint64_t> frames_sent_{0};
  std::atomic<uint64_t> bytes_sent_{0};
  std::atomic<uint64_t> frames_received_{0};
  std::atomic<uint64_t> bytes_received_{0};
  std::atomic<uint64_t> collective_rounds_{0};
  std::atomic<uint64_t> rendezvous_retries_{0};
  mutable std::mutex latency_mu_;
  util::LogHistogram collective_wait_;

  std::thread reader_;
  std::thread heartbeat_;
};

static_assert(par::CollectiveEndpoint<RankComm>);

}  // namespace cas::dist
