// World: one process's membership in a multi-process communicator. Rank 0
// additionally hosts the Coordinator (rendezvous + router); every rank —
// rank 0 included, over loopback — participates through a RankComm, so
// the data path is identical on all ranks.
//
// Construction order matters for launchers: rank 0 binds the coordinator
// FIRST and reports the actual port through `on_listening` BEFORE blocking
// in the rendezvous, which is the hook cas_run's single-command loopback
// launcher uses to fork the sibling ranks with --coordinator=host:port.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "dist/coordinator.hpp"
#include "dist/rank_comm.hpp"
#include "util/json.hpp"

namespace cas::dist {

struct WorldOptions {
  int rank = 0;
  int ranks = 1;
  /// Rank 0: the bind address (port 0 = ephemeral). Ranks > 0: the
  /// coordinator's address as launched.
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  double connect_timeout_seconds = 15.0;
  double heartbeat_interval_seconds = 1.0;
  double heartbeat_timeout_seconds = 10.0;
  double collective_timeout_seconds = 120.0;
  /// Elastic membership: the rank-0 coordinator evicts dead members at
  /// epoch boundaries instead of aborting, and admits late joiners.
  bool elastic = false;
  /// Join an existing elastic world late (no rank claim; implies not
  /// hosting a coordinator). `hunt_key` authenticates the request.
  bool join = false;
  std::string hunt_key;
  /// Coordinator failover (wire v3). On the host: elect a standby and
  /// mirror the wave machine to it every completed wave. On everyone else:
  /// pre-bind an idle promotion listener and announce its address, so this
  /// member is standby-eligible and can promote itself if the coordinator
  /// dies. Off by default — without it, the host's death is world-fatal.
  bool standby = false;
};

class World {
 public:
  /// Joins (and on rank 0 first hosts) the world. `on_listening` runs on
  /// rank 0 after the coordinator is bound, before the blocking
  /// rendezvous — spawn the other ranks / write the port file there.
  /// Throws CommError when the rendezvous fails.
  explicit World(WorldOptions opts,
                 const std::function<void(uint16_t port)>& on_listening = nullptr);

  [[nodiscard]] int rank() const { return opts_.rank; }
  [[nodiscard]] int size() const { return opts_.ranks; }
  [[nodiscard]] RankComm& comm() { return *comm_; }
  /// Coordinator port (the rendezvous address all ranks dialed).
  [[nodiscard]] uint16_t port() const { return port_; }

  /// Rank 0 announces the hunt so the coordinator can validate and
  /// bootstrap late joiners. No-op on worlds without a coordinator.
  void set_hunt(const std::string& key, uint64_t seed, int walkers);

  /// Recovery path for an elastic member whose connection died mid-hunt:
  /// tear down the failed communicator and dial back in through the late-
  /// join handshake (`hunt_key` re-authenticates). The process comes back
  /// as a NEW member — its old identity is evicted at the wave boundary and
  /// its walkers flow back via the usual rebalance. Throws CommError on
  /// refusal (hunt complete, key mismatch) and on the coordinator-hosting
  /// member, which has nothing left to dial.
  void rejoin(const std::string& hunt_key);

  /// True while this process hosts the coordinator (rank 0 at launch; the
  /// promoted standby after a failover). The host writes the resume
  /// manifest and the merged final report.
  [[nodiscard]] bool is_host() const { return coordinator_ != nullptr; }

  /// Probe whether the coordinator this world last rendezvoused with still
  /// accepts connections — distinguishes "my connection broke" (rejoin the
  /// live world) from "the coordinator died" (fail over to the standby).
  [[nodiscard]] bool coordinator_alive() const;

  /// Standby promotion: adopt the pre-bound failover listener, import the
  /// last replicated state_sync this member's communicator captured, and
  /// re-rendezvous the local communicator against the freshly promoted
  /// coordinator. Throws CommError when no listener was pre-bound or no
  /// state was ever replicated (e.g. the coordinator died before wave 0
  /// completed).
  void promote();

  /// Survivor re-rendezvous: dial the promoted standby at `addr`
  /// ("host:port") with the epoch-stamped reconnect handshake, preserving
  /// this member's stable id (checkpoint files stay valid). A refused
  /// connect fails fast — the double-failure (coordinator then standby)
  /// abort must be prompt. Throws CommError on refusal.
  void reconnect(const std::string& addr, const std::string& hunt_key);

  /// The elastic runner caches the standby election and the latest wave
  /// each rebalance frame announced, so the recovery path in solve_elastic
  /// knows where to go when the communicator fails mid-epoch.
  void note_failover(int standby_member, const std::string& standby_addr, uint64_t epoch);
  [[nodiscard]] int failover_member() const { return failover_member_; }
  [[nodiscard]] const std::string& failover_addr() const { return failover_addr_cache_; }

  /// The member id of the dead host this world's coordinator replaced
  /// (-1 when never promoted).
  [[nodiscard]] int promoted_from() const;

  /// Fault injection for in-process failover tests: die like a SIGKILLed
  /// host — hard-kill the communicator AND tear down the hosted
  /// coordinator (listener closed, every peer sees EOF). No-op communicator
  /// afterwards; survivors' recovery is the behavior under test.
  void crash();

  /// Clean shutdown: detach the rank; rank 0 waits briefly for the other
  /// ranks' byes before stopping the router.
  void finalize();

  /// Per-rank comm counters (+ router counters on rank 0).
  [[nodiscard]] util::Json stats_json() const;

 private:
  [[nodiscard]] RankCommOptions base_comm_options() const;

  WorldOptions opts_;
  uint16_t port_ = 0;
  std::unique_ptr<Coordinator> coordinator_;  // the host only
  std::unique_ptr<RankComm> comm_;
  // Failover: the idle pre-bound promotion listener (consumed by
  // promote()), its announced address, and the election/epoch cache the
  // elastic runner keeps fresh from rebalance frames.
  net::Fd failover_listen_;
  std::string failover_addr_;
  int failover_member_ = -1;
  std::string failover_addr_cache_;
  uint64_t failover_epoch_ = 0;
};

}  // namespace cas::dist
