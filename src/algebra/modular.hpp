// Modular arithmetic on 64-bit integers. Foundation for primality testing,
// primitive-root search and the Welch construction of Costas arrays.
#pragma once

#include <cstdint>

// 128-bit intermediates are a GCC/Clang extension; suppress the -Wpedantic
// note where we deliberately use them.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpedantic"

namespace cas::algebra {

/// (a * b) mod m without overflow, for any m < 2^64.
constexpr uint64_t mulmod(uint64_t a, uint64_t b, uint64_t m) {
  return static_cast<uint64_t>((static_cast<unsigned __int128>(a) * b) % m);
}

/// (base ^ exp) mod m. pow(0,0) convention: returns 1 % m.
constexpr uint64_t powmod(uint64_t base, uint64_t exp, uint64_t m) {
  uint64_t result = 1 % m;
  base %= m;
  while (exp > 0) {
    if (exp & 1) result = mulmod(result, base, m);
    base = mulmod(base, base, m);
    exp >>= 1;
  }
  return result;
}

constexpr uint64_t gcd_u64(uint64_t a, uint64_t b) {
  while (b != 0) {
    const uint64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

/// Modular inverse of a mod m for prime m (Fermat). Requires a % m != 0.
constexpr uint64_t invmod_prime(uint64_t a, uint64_t p) { return powmod(a, p - 2, p); }

/// Modular inverse for general modulus via extended Euclid.
/// Requires gcd(a, m) == 1 and m >= 2.
constexpr uint64_t invmod(uint64_t a, uint64_t m) {
  // Iterative extended gcd on signed 128-bit accumulators (m < 2^63 in all
  // our uses; the Bezout coefficients stay within range).
  __int128 old_r = static_cast<__int128>(a % m), r = m;
  __int128 old_s = 1, s = 0;
  while (r != 0) {
    const __int128 q = old_r / r;
    const __int128 tmp_r = old_r - q * r;
    old_r = r;
    r = tmp_r;
    const __int128 tmp_s = old_s - q * s;
    old_s = s;
    s = tmp_s;
  }
  __int128 result = old_s % static_cast<__int128>(m);
  if (result < 0) result += m;
  return static_cast<uint64_t>(result);
}

}  // namespace cas::algebra

#pragma GCC diagnostic pop
