#include "algebra/gf.hpp"

#include <stdexcept>

#include "algebra/modular.hpp"
#include "algebra/primes.hpp"

namespace cas::algebra {

Gf::Gf(uint64_t q) {
  const auto pp = as_prime_power(q);
  if (!pp) throw std::invalid_argument("Gf: order is not a prime power");
  p_ = static_cast<uint32_t>(pp->first);
  k_ = pp->second;
  q_ = q;
  if (q_ > (1ull << 26)) throw std::invalid_argument("Gf: order too large for table-based field");
  modulus_ = find_irreducible(p_, k_);

  // Find a primitive element by brute force over nonzero codes: its order
  // must be exactly q-1. Order check uses the prime divisors of q-1.
  const auto qs = prime_divisors(q_ - 1);
  auto order_is_full = [&](uint32_t a) {
    for (uint64_t d : qs) {
      // pow via slow multiplication (tables not built yet)
      uint64_t e = (q_ - 1) / d;
      uint32_t acc = 1, base = a;
      while (e > 0) {
        if (e & 1) acc = mul_slow(acc, base);
        base = mul_slow(base, base);
        e >>= 1;
      }
      if (acc == 1) return false;
    }
    return true;
  };
  generator_ = 0;
  for (uint32_t a = 2; a < q_; ++a) {
    if (order_is_full(a)) {
      generator_ = a;
      break;
    }
  }
  if (generator_ == 0) {
    // q == 2 is the only field where the loop above finds nothing: GF(2)*
    // is trivial and 1 generates it.
    if (q_ == 2)
      generator_ = 1;
    else
      throw std::logic_error("Gf: no generator found (impossible)");
  }

  exp_table_.resize(q_ - 1);
  log_table_.assign(q_, 0);
  uint32_t acc = 1;
  for (uint64_t i = 0; i < q_ - 1; ++i) {
    exp_table_[i] = acc;
    log_table_[acc] = static_cast<uint32_t>(i);
    acc = mul_slow(acc, generator_);
  }
  if (acc != 1) throw std::logic_error("Gf: generator order mismatch (impossible)");
}

Poly Gf::decode(uint32_t code) const {
  Poly a;
  a.reserve(static_cast<size_t>(k_));
  uint32_t c = code;
  for (int i = 0; i < k_; ++i) {
    a.push_back(c % p_);
    c /= p_;
  }
  poly_normalize(a);
  return a;
}

uint32_t Gf::encode(const Poly& a) const {
  uint64_t code = 0;
  for (size_t i = a.size(); i-- > 0;) code = code * p_ + a[i];
  return static_cast<uint32_t>(code);
}

uint32_t Gf::mul_slow(uint32_t a, uint32_t b) const {
  return encode(poly_mod(poly_mul(decode(a), decode(b), p_), modulus_, p_));
}

uint32_t Gf::add(uint32_t a, uint32_t b) const {
  // Digit-wise addition mod p; for p == 2 this is XOR.
  if (p_ == 2) return a ^ b;
  uint32_t result = 0, mult = 1;
  for (int i = 0; i < k_; ++i) {
    const uint32_t da = a % p_, db = b % p_;
    result += ((da + db) % p_) * mult;
    a /= p_;
    b /= p_;
    mult *= p_;
  }
  return result;
}

uint32_t Gf::neg(uint32_t a) const {
  if (p_ == 2) return a;
  uint32_t result = 0, mult = 1;
  for (int i = 0; i < k_; ++i) {
    const uint32_t da = a % p_;
    result += ((p_ - da) % p_) * mult;
    a /= p_;
    mult *= p_;
  }
  return result;
}

uint32_t Gf::sub(uint32_t a, uint32_t b) const { return add(a, neg(b)); }

uint32_t Gf::mul(uint32_t a, uint32_t b) const {
  if (a == 0 || b == 0) return 0;
  const uint64_t s = static_cast<uint64_t>(log_table_[a]) + log_table_[b];
  return exp_table_[s % (q_ - 1)];
}

uint32_t Gf::inv(uint32_t a) const {
  if (a == 0) throw std::domain_error("Gf::inv(0)");
  const uint64_t l = log_table_[a];
  return exp_table_[(q_ - 1 - l) % (q_ - 1)];
}

uint32_t Gf::pow(uint32_t a, uint64_t e) const {
  if (a == 0) return e == 0 ? 1 : 0;
  const uint64_t l = log_table_[a];
  return exp_table_[mulmod(l, e % (q_ - 1), q_ - 1)];
}

uint32_t Gf::exp(uint64_t e) const { return exp_table_[e % (q_ - 1)]; }

uint32_t Gf::log(uint32_t a) const {
  if (a == 0) throw std::domain_error("Gf::log(0)");
  return log_table_[a];
}

uint64_t Gf::element_order(uint32_t a) const {
  if (a == 0) throw std::domain_error("Gf::element_order(0)");
  uint64_t order = q_ - 1;
  for (uint64_t d : prime_divisors(q_ - 1)) {
    while (order % d == 0 && pow(a, order / d) == 1) order /= d;
  }
  return order;
}

bool Gf::is_primitive(uint32_t a) const { return a != 0 && element_order(a) == q_ - 1; }

std::vector<uint32_t> Gf::primitive_elements() const {
  std::vector<uint32_t> out;
  for (uint32_t a = 1; a < q_; ++a) {
    if (is_primitive(a)) out.push_back(a);
  }
  return out;
}

}  // namespace cas::algebra
