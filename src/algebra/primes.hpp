// Primality, factorization, primitive roots and prime-power detection.
// Deterministic for the full 64-bit range (Miller-Rabin with fixed base set,
// Pollard's rho for factorization).
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

namespace cas::algebra {

/// Deterministic Miller-Rabin, valid for all n < 2^64.
bool is_prime(uint64_t n);

/// Prime factorization as (prime, exponent) pairs, primes ascending.
/// factorize(0) and factorize(1) return empty.
std::vector<std::pair<uint64_t, int>> factorize(uint64_t n);

/// Distinct prime divisors, ascending.
std::vector<uint64_t> prime_divisors(uint64_t n);

/// Smallest primitive root modulo prime p (p >= 2). Throws if p not prime.
uint64_t primitive_root(uint64_t p);

/// All primitive roots modulo prime p (expensive; intended for small p).
std::vector<uint64_t> all_primitive_roots(uint64_t p);

/// Multiplicative order of a modulo prime p (a % p != 0).
uint64_t element_order_mod_p(uint64_t a, uint64_t p);

/// If n = p^k for a prime p and k >= 1, return (p, k).
std::optional<std::pair<uint64_t, int>> as_prime_power(uint64_t n);

/// Primes in [2, limit] by sieve.
std::vector<uint32_t> primes_up_to(uint32_t limit);

}  // namespace cas::algebra
