#include "algebra/poly.hpp"

#include <stdexcept>

#include "algebra/modular.hpp"
#include "algebra/primes.hpp"

namespace cas::algebra {

int poly_deg(const Poly& a) { return static_cast<int>(a.size()) - 1; }

void poly_normalize(Poly& a) {
  while (!a.empty() && a.back() == 0) a.pop_back();
}

Poly poly_add(const Poly& a, const Poly& b, uint32_t p) {
  Poly r(std::max(a.size(), b.size()), 0);
  for (size_t i = 0; i < r.size(); ++i) {
    uint64_t v = (i < a.size() ? a[i] : 0u) + (i < b.size() ? b[i] : 0u);
    r[i] = static_cast<uint32_t>(v % p);
  }
  poly_normalize(r);
  return r;
}

Poly poly_sub(const Poly& a, const Poly& b, uint32_t p) {
  Poly r(std::max(a.size(), b.size()), 0);
  for (size_t i = 0; i < r.size(); ++i) {
    uint64_t av = i < a.size() ? a[i] : 0u;
    uint64_t bv = i < b.size() ? b[i] : 0u;
    r[i] = static_cast<uint32_t>((av + p - bv) % p);
  }
  poly_normalize(r);
  return r;
}

Poly poly_mul(const Poly& a, const Poly& b, uint32_t p) {
  if (a.empty() || b.empty()) return {};
  Poly r(a.size() + b.size() - 1, 0);
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] == 0) continue;
    for (size_t j = 0; j < b.size(); ++j) {
      r[i + j] = static_cast<uint32_t>((r[i + j] + static_cast<uint64_t>(a[i]) * b[j]) % p);
    }
  }
  poly_normalize(r);
  return r;
}

Poly poly_mod(const Poly& a, const Poly& b, uint32_t p) {
  if (b.empty()) throw std::invalid_argument("poly_mod: division by zero polynomial");
  Poly r = a;
  poly_normalize(r);
  const int db = poly_deg(b);
  const uint32_t lead_inv = static_cast<uint32_t>(invmod_prime(b.back(), p));
  while (poly_deg(r) >= db) {
    const int shift = poly_deg(r) - db;
    const uint32_t factor = static_cast<uint32_t>(mulmod(r.back(), lead_inv, p));
    for (int i = 0; i <= db; ++i) {
      const uint64_t sub = mulmod(factor, b[static_cast<size_t>(i)], p);
      uint32_t& c = r[static_cast<size_t>(i + shift)];
      c = static_cast<uint32_t>((c + p - sub) % p);
    }
    poly_normalize(r);
  }
  return r;
}

Poly poly_powmod(const Poly& base, uint64_t exp, const Poly& f, uint32_t p) {
  Poly result{1};
  Poly b = poly_mod(base, f, p);
  while (exp > 0) {
    if (exp & 1) result = poly_mod(poly_mul(result, b, p), f, p);
    b = poly_mod(poly_mul(b, b, p), f, p);
    exp >>= 1;
  }
  return result;
}

Poly poly_monic(const Poly& a, uint32_t p) {
  if (a.empty()) return a;
  const uint32_t inv = static_cast<uint32_t>(invmod_prime(a.back(), p));
  Poly r = a;
  for (auto& c : r) c = static_cast<uint32_t>(mulmod(c, inv, p));
  return r;
}

Poly poly_gcd(Poly a, Poly b, uint32_t p) {
  poly_normalize(a);
  poly_normalize(b);
  while (!b.empty()) {
    Poly r = poly_mod(a, b, p);
    a = std::move(b);
    b = std::move(r);
  }
  return poly_monic(a, p);
}

bool poly_is_irreducible(const Poly& f, uint32_t p) {
  const int k = poly_deg(f);
  if (k <= 0) return false;
  if (k == 1) return true;
  const Poly x{0, 1};
  // Rabin: f (deg k) is irreducible over Z_p iff
  //   x^(p^k) == x (mod f), and
  //   gcd(x^(p^(k/q)) - x, f) == 1 for every prime q | k.
  // p^k can exceed 64 bits only for fields far larger than any Costas order
  // we construct; guard anyway.
  auto pow_p_tower = [&](int e) {
    // Computes x^(p^e) mod f by e-fold repeated powering by p.
    Poly acc = x;
    for (int i = 0; i < e; ++i) acc = poly_powmod(acc, p, f, p);
    return acc;
  };
  Poly xpk = pow_p_tower(k);
  if (poly_sub(xpk, x, p) != Poly{}) return false;
  for (uint64_t q : prime_divisors(static_cast<uint64_t>(k))) {
    Poly xpe = pow_p_tower(static_cast<int>(k / static_cast<int>(q)));
    Poly g = poly_gcd(poly_sub(xpe, x, p), f, p);
    if (poly_deg(g) != 0) return false;
  }
  return true;
}

Poly find_irreducible(uint32_t p, int k) {
  if (k < 1) throw std::invalid_argument("find_irreducible: k must be >= 1");
  if (k == 1) return Poly{0, 1};  // x itself
  // Enumerate monic degree-k polynomials by their low-coefficient vector,
  // interpreted as a base-p counter. The constant term must be nonzero for
  // irreducibility (otherwise x divides f).
  Poly f(static_cast<size_t>(k) + 1, 0);
  f[static_cast<size_t>(k)] = 1;
  uint64_t limit = 1;
  for (int i = 0; i < k; ++i) limit *= p;
  for (uint64_t code = 1; code < limit; ++code) {
    uint64_t c = code;
    for (int i = 0; i < k; ++i) {
      f[static_cast<size_t>(i)] = static_cast<uint32_t>(c % p);
      c /= p;
    }
    if (f[0] == 0) continue;
    if (poly_is_irreducible(f, p)) return f;
  }
  throw std::logic_error("find_irreducible: exhausted search (impossible)");
}

}  // namespace cas::algebra
