#include "algebra/primes.hpp"

#include <algorithm>
#include <stdexcept>

#include "algebra/modular.hpp"

namespace cas::algebra {

namespace {

// Witness check: returns true if `a` proves n composite.
bool witness(uint64_t a, uint64_t n, uint64_t d, int r) {
  uint64_t x = powmod(a, d, n);
  if (x == 1 || x == n - 1) return false;
  for (int i = 1; i < r; ++i) {
    x = mulmod(x, x, n);
    if (x == n - 1) return false;
  }
  return true;
}

}  // namespace

bool is_prime(uint64_t n) {
  if (n < 2) return false;
  for (uint64_t p : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull, 23ull, 29ull, 31ull, 37ull}) {
    if (n % p == 0) return n == p;
  }
  uint64_t d = n - 1;
  int r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  // This base set is a proven deterministic witness set for n < 2^64.
  for (uint64_t a : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull, 23ull, 29ull, 31ull, 37ull}) {
    if (witness(a, n, d, r)) return false;
  }
  return true;
}

namespace {

// Pollard's rho (Brent variant) for composite odd n with no small factors.
uint64_t pollard_rho(uint64_t n) {
  if (n % 2 == 0) return 2;
  uint64_t x = 2, y = 2, c = 1;
  while (true) {
    x = 2;
    y = 2;
    uint64_t d = 1;
    while (d == 1) {
      x = (mulmod(x, x, n) + c) % n;
      y = (mulmod(y, y, n) + c) % n;
      y = (mulmod(y, y, n) + c) % n;
      d = gcd_u64(x > y ? x - y : y - x, n);
    }
    if (d != n) return d;
    ++c;  // cycle degenerated; retry with a different polynomial
  }
}

void factor_rec(uint64_t n, std::vector<uint64_t>& out) {
  if (n == 1) return;
  if (is_prime(n)) {
    out.push_back(n);
    return;
  }
  const uint64_t d = pollard_rho(n);
  factor_rec(d, out);
  factor_rec(n / d, out);
}

}  // namespace

std::vector<std::pair<uint64_t, int>> factorize(uint64_t n) {
  std::vector<std::pair<uint64_t, int>> result;
  if (n < 2) return result;
  std::vector<uint64_t> primes;
  // Strip small factors by trial division first; rho handles the remainder.
  for (uint64_t p = 2; p <= 997 && p * p <= n; p += (p == 2 ? 1 : 2)) {
    while (n % p == 0) {
      primes.push_back(p);
      n /= p;
    }
  }
  if (n > 1) factor_rec(n, primes);
  std::sort(primes.begin(), primes.end());
  for (uint64_t p : primes) {
    if (!result.empty() && result.back().first == p)
      ++result.back().second;
    else
      result.emplace_back(p, 1);
  }
  return result;
}

std::vector<uint64_t> prime_divisors(uint64_t n) {
  std::vector<uint64_t> out;
  for (const auto& [p, e] : factorize(n)) out.push_back(p);
  return out;
}

uint64_t element_order_mod_p(uint64_t a, uint64_t p) {
  if (!is_prime(p)) throw std::invalid_argument("element_order_mod_p: p not prime");
  a %= p;
  if (a == 0) throw std::invalid_argument("element_order_mod_p: a divisible by p");
  uint64_t order = p - 1;
  for (uint64_t q : prime_divisors(p - 1)) {
    while (order % q == 0 && powmod(a, order / q, p) == 1) order /= q;
  }
  return order;
}

namespace {

bool is_primitive_root(uint64_t g, uint64_t p, const std::vector<uint64_t>& qs) {
  for (uint64_t q : qs) {
    if (powmod(g, (p - 1) / q, p) == 1) return false;
  }
  return true;
}

}  // namespace

uint64_t primitive_root(uint64_t p) {
  if (!is_prime(p)) throw std::invalid_argument("primitive_root: p not prime");
  if (p == 2) return 1;
  const auto qs = prime_divisors(p - 1);
  for (uint64_t g = 2; g < p; ++g) {
    if (is_primitive_root(g, p, qs)) return g;
  }
  throw std::logic_error("primitive_root: none found (impossible for prime p)");
}

std::vector<uint64_t> all_primitive_roots(uint64_t p) {
  if (!is_prime(p)) throw std::invalid_argument("all_primitive_roots: p not prime");
  std::vector<uint64_t> out;
  if (p == 2) return {1};
  const auto qs = prime_divisors(p - 1);
  for (uint64_t g = 2; g < p; ++g) {
    if (is_primitive_root(g, p, qs)) out.push_back(g);
  }
  return out;
}

std::optional<std::pair<uint64_t, int>> as_prime_power(uint64_t n) {
  if (n < 2) return std::nullopt;
  const auto f = factorize(n);
  if (f.size() != 1) return std::nullopt;
  return std::make_pair(f[0].first, f[0].second);
}

std::vector<uint32_t> primes_up_to(uint32_t limit) {
  std::vector<uint32_t> out;
  if (limit < 2) return out;
  std::vector<bool> sieve(static_cast<size_t>(limit) + 1, true);
  sieve[0] = sieve[1] = false;
  for (uint64_t i = 2; i <= limit; ++i) {
    if (!sieve[i]) continue;
    out.push_back(static_cast<uint32_t>(i));
    for (uint64_t j = i * i; j <= limit; j += i) sieve[j] = false;
  }
  return out;
}

}  // namespace cas::algebra
