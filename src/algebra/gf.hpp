// GF(p^k): finite fields of small prime-power order with log/antilog-table
// multiplication. Elements are integer codes in [0, q): the code's base-p
// digits are the coefficients of the representative polynomial.
//
// Built for the Lempel-Golomb Costas array construction (orders q-2), so
// typical sizes are q <= a few thousand; tables are O(q).
#pragma once

#include <cstdint>
#include <vector>

#include "algebra/poly.hpp"

namespace cas::algebra {

class Gf {
 public:
  /// Construct GF(q) where q = p^k must be a prime power (k >= 1).
  /// Throws std::invalid_argument otherwise.
  explicit Gf(uint64_t q);

  [[nodiscard]] uint64_t order() const { return q_; }          // q = p^k
  [[nodiscard]] uint32_t characteristic() const { return p_; }  // p
  [[nodiscard]] int degree() const { return k_; }               // k

  [[nodiscard]] uint32_t zero() const { return 0; }
  [[nodiscard]] uint32_t one() const { return 1; }

  /// A fixed primitive element (generator of the multiplicative group).
  [[nodiscard]] uint32_t generator() const { return generator_; }

  [[nodiscard]] uint32_t add(uint32_t a, uint32_t b) const;
  [[nodiscard]] uint32_t sub(uint32_t a, uint32_t b) const;
  [[nodiscard]] uint32_t neg(uint32_t a) const;
  [[nodiscard]] uint32_t mul(uint32_t a, uint32_t b) const;
  [[nodiscard]] uint32_t inv(uint32_t a) const;  // throws on a == 0
  [[nodiscard]] uint32_t pow(uint32_t a, uint64_t e) const;

  /// generator()^e (e taken mod q-1).
  [[nodiscard]] uint32_t exp(uint64_t e) const;
  /// Discrete log base generator() of a != 0, in [0, q-1).
  [[nodiscard]] uint32_t log(uint32_t a) const;  // throws on a == 0

  /// Multiplicative order of a != 0.
  [[nodiscard]] uint64_t element_order(uint32_t a) const;
  [[nodiscard]] bool is_primitive(uint32_t a) const;
  /// All primitive elements (there are phi(q-1) of them).
  [[nodiscard]] std::vector<uint32_t> primitive_elements() const;

  /// The reduction polynomial used for this field (monic, irreducible).
  [[nodiscard]] const Poly& modulus() const { return modulus_; }

 private:
  [[nodiscard]] Poly decode(uint32_t code) const;
  [[nodiscard]] uint32_t encode(const Poly& a) const;
  [[nodiscard]] uint32_t mul_slow(uint32_t a, uint32_t b) const;

  uint64_t q_ = 0;
  uint32_t p_ = 0;
  int k_ = 0;
  Poly modulus_;
  uint32_t generator_ = 0;
  std::vector<uint32_t> exp_table_;  // exp_table_[i] = g^i, size q-1
  std::vector<uint32_t> log_table_;  // log_table_[a] = i with g^i = a; log[0] unused
};

}  // namespace cas::algebra
