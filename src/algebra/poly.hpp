// Dense polynomials over Z_p (p prime, p < 2^15 in practice). Coefficients
// are stored little-endian (coeffs[i] is the x^i coefficient) with no
// trailing zeros. Used to build GF(p^k) for the Lempel-Golomb Costas
// construction.
#pragma once

#include <cstdint>
#include <vector>

namespace cas::algebra {

using Poly = std::vector<uint32_t>;  // normalized: empty == zero polynomial

/// Degree; -1 for the zero polynomial.
int poly_deg(const Poly& a);

/// Remove trailing zero coefficients in place.
void poly_normalize(Poly& a);

Poly poly_add(const Poly& a, const Poly& b, uint32_t p);
Poly poly_sub(const Poly& a, const Poly& b, uint32_t p);
Poly poly_mul(const Poly& a, const Poly& b, uint32_t p);

/// Remainder of a modulo monic-normalizable b (b != 0).
Poly poly_mod(const Poly& a, const Poly& b, uint32_t p);

/// (base ^ exp) mod f over Z_p.
Poly poly_powmod(const Poly& base, uint64_t exp, const Poly& f, uint32_t p);

/// Monic gcd.
Poly poly_gcd(Poly a, Poly b, uint32_t p);

/// Scale so the leading coefficient is 1 (no-op for zero).
Poly poly_monic(const Poly& a, uint32_t p);

/// Rabin's irreducibility test for a degree-k polynomial over Z_p.
bool poly_is_irreducible(const Poly& f, uint32_t p);

/// Find a monic irreducible polynomial of degree k over Z_p by ordered
/// search (deterministic: same (p,k) always yields the same polynomial).
Poly find_irreducible(uint32_t p, int k);

}  // namespace cas::algebra
