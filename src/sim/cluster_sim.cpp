#include "sim/cluster_sim.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/ecdf.hpp"
#include "analysis/exponential_fit.hpp"
#include "analysis/order_stats.hpp"
#include "core/rng.hpp"

namespace cas::sim {

namespace {

bool use_empirical(ResampleMode mode, int cores, size_t bank_size) {
  switch (mode) {
    case ResampleMode::kEmpirical:
      return true;
    case ResampleMode::kFittedTail:
      return false;
    case ResampleMode::kHybrid:
      return static_cast<size_t>(cores) * 4 <= bank_size;
  }
  return true;
}

}  // namespace

const char* resample_mode_name(ResampleMode mode) {
  switch (mode) {
    case ResampleMode::kEmpirical:
      return "empirical";
    case ResampleMode::kFittedTail:
      return "fitted-tail";
    case ResampleMode::kHybrid:
      return "hybrid";
  }
  return "?";
}

std::vector<double> simulate_times(const SampleBank& bank, const Platform& platform, int cores,
                                   const SimOptions& opts) {
  analysis::Ecdf ecdf(bank.iterations);
  core::Rng rng(opts.seed ^ (static_cast<uint64_t>(cores) << 32) ^
                static_cast<uint64_t>(bank.n));
  std::vector<double> times;
  times.reserve(static_cast<size_t>(opts.runs));

  if (use_empirical(opts.mode, cores, ecdf.size())) {
    for (int r = 0; r < opts.runs; ++r) {
      const double iters = analysis::sample_min_of_k(ecdf, cores, rng);
      times.push_back(platform.seconds(iters, bank.n) + opts.startup_seconds);
    }
  } else {
    // Fitted tail: min of k i.i.d. shifted-exponential draws is itself
    // shifted exponential with scale lambda/k. Bias-corrected shift so the
    // bank's sampling noise does not floor large-k times (see
    // fit_shifted_exponential_bias_corrected).
    const auto fit = analysis::fit_shifted_exponential_bias_corrected(bank.iterations);
    const auto min_dist = fit.min_of(cores);
    for (int r = 0; r < opts.runs; ++r) {
      const double iters = min_dist.quantile(rng.uniform01());
      times.push_back(platform.seconds(std::max(iters, 1.0), bank.n) + opts.startup_seconds);
    }
  }
  return times;
}

CellResult simulate_cell(const SampleBank& bank, const Platform& platform, int cores,
                         const SimOptions& opts) {
  CellResult cell;
  cell.n = bank.n;
  cell.cores = cores;
  auto times = simulate_times(bank, platform, cores, opts);
  if (opts.walltime_cap_seconds > 0) {
    // Censor: the batch system kills runs at the cap; only survivors are
    // summarized (the paper's tables likewise only contain cells whose
    // runs fit the scheduler limits).
    std::vector<double> completed;
    completed.reserve(times.size());
    for (double t : times) {
      if (t <= opts.walltime_cap_seconds)
        completed.push_back(t);
      else
        ++cell.censored;
    }
    times = std::move(completed);
  }
  cell.completed = static_cast<int>(times.size());
  if (!times.empty()) cell.seconds = analysis::summarize(times);
  analysis::Ecdf ecdf(bank.iterations);
  cell.expected_seconds =
      platform.seconds(analysis::expected_min_of_k(ecdf, cores), bank.n) + opts.startup_seconds;
  return cell;
}

bool cell_feasible(const SampleBank& bank, const Platform& platform, int cores,
                   double walltime_cap_seconds) {
  if (walltime_cap_seconds <= 0) return true;
  analysis::Ecdf ecdf(bank.iterations);
  const double expected =
      platform.seconds(analysis::expected_min_of_k(ecdf, cores), bank.n);
  return expected <= walltime_cap_seconds;
}

std::vector<CellResult> simulate_row(const SampleBank& bank, const Platform& platform,
                                     const std::vector<int>& core_counts,
                                     const SimOptions& opts) {
  std::vector<CellResult> out;
  out.reserve(core_counts.size());
  for (int k : core_counts) out.push_back(simulate_cell(bank, platform, k, opts));
  return out;
}

}  // namespace cas::sim
