#include "sim/platform.hpp"

#include <limits>

#include "core/adaptive_search.hpp"
#include "costas/model.hpp"
#include "util/timer.hpp"

namespace cas::sim {

double Platform::seconds(double iterations, int n) const {
  return iterations * static_cast<double>(n) * static_cast<double>(n) / cellops_per_second;
}

double Platform::iterations_in(double secs, int n) const {
  return secs * cellops_per_second / (static_cast<double>(n) * static_cast<double>(n));
}

// Calibration notes (details in EXPERIMENTS.md):
//   Xeon W5580 : Table I n=18/19/20 gives it/s * n^2 = 36.7e6 / 33.0e6 /
//                32.8e6 cellops/s; we use 33e6.
//   HA8000     : Table III 1-core avg vs Table I avg: 3.49/6.76 (n=18),
//                29.46/54.54 (n=19), 250.68/367.24 (n=20) -> factor ~0.59
//                of Xeon -> 19.5e6.
//   Suno       : Table V: 5.28/49.5/372 s -> factor ~0.62 -> 20.5e6.
//   Helios     : Table V: 8.16/52/444 s -> factor ~0.50 -> 16.5e6.
//   JUGENE     : CAP21 @512 cores avg 43.66 s vs HA8000 @256 cores 16.01 s;
//                with exponential run times T_k ~ lambda/k, lambda_J =
//                43.66*512 = 22.4e3 s vs lambda_H = 4.1e3 s -> 5.46x slower
//                per core -> 3.6e6.

const Platform& xeon_w5580() {
  static const Platform p{"Xeon-W5580", "Intel Xeon W5580 3.20 GHz (paper Table I)", 33.0e6};
  return p;
}

const Platform& ha8000() {
  static const Platform p{"HA8000", "AMD Opteron 8356 2.3 GHz (paper Table III)", 19.5e6};
  return p;
}

const Platform& grid5000_suno() {
  static const Platform p{"Suno", "Dell PowerEdge R410 (GRID'5000 Sophia, Table V)", 20.5e6};
  return p;
}

const Platform& grid5000_helios() {
  static const Platform p{"Helios", "Sun Fire X4100 (GRID'5000 Sophia, Table V)", 16.5e6};
  return p;
}

const Platform& jugene() {
  static const Platform p{"JUGENE", "IBM PowerPC 450 850 MHz (Blue Gene/P, Table IV)", 3.6e6};
  return p;
}

double scheduler_walltime_cap(const Platform& platform, int cores) {
  if (platform.name == "HA8000") return 3600.0;  // one-hour normal service limit
  if (platform.name == "JUGENE" && cores <= 1024) return 1800.0;  // 30-min small-job cap
  return std::numeric_limits<double>::infinity();
}

Platform calibrate_local(int n, double budget_seconds) {
  // Run the real kernel for ~budget_seconds and count iterations.
  costas::CostasProblem problem(n);
  auto cfg = costas::recommended_config(n, /*seed=*/0xCA11B7A7Eull);
  util::WallTimer timer;
  uint64_t total_iters = 0;
  uint64_t seed = 1;
  while (timer.seconds() < budget_seconds) {
    cfg.seed = seed++;
    cfg.max_iterations = 200000;  // chunks, so we respect the budget
    core::AdaptiveSearch<costas::CostasProblem> engine(problem, cfg);
    const auto st = engine.solve();
    total_iters += st.iterations;
  }
  const double elapsed = timer.seconds();
  Platform p;
  p.name = "local";
  p.cpu = "this machine (measured)";
  p.cellops_per_second =
      static_cast<double>(total_iters) * n * n / (elapsed > 0 ? elapsed : 1e-9);
  return p;
}

const std::vector<Platform>& all_reference_platforms() {
  static const std::vector<Platform> v{xeon_w5580(), ha8000(), grid5000_suno(),
                                       grid5000_helios(), jugene()};
  return v;
}

}  // namespace cas::sim
