// Cluster-scale multi-walk simulator — the documented substitution for
// HA8000 / GRID'5000 / JUGENE (DESIGN.md §4).
//
// Premise (paper Sec. V-A + Verhoeven & Aarts): with independent multi-walk
// and terminate-on-first-solution, the wall-clock time of a k-core run is
// the minimum of k i.i.d. draws from the sequential run-time distribution;
// communication is a single end-of-run message. Given a recorded run-length
// bank and a platform speed profile, a "k-core run" is therefore simulated
// as min-of-k resampling — no 8192-core machine required.
//
// Two resampling modes:
//   * kEmpirical — exact bootstrap from the bank (faithful for k << bank
//     size; pinned to the bank minimum for very large k),
//   * kFittedTail — draws from the shifted-exponential fit of the bank
//     (the paper's own Fig. 4 shows this fit is excellent; appropriate for
//     k large relative to the bank),
//   * kHybrid (default) — empirical while k <= bank.size()/4, fitted above.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/summary.hpp"
#include "sim/platform.hpp"
#include "sim/sample_bank.hpp"

namespace cas::sim {

enum class ResampleMode { kEmpirical, kFittedTail, kHybrid };

struct SimOptions {
  int runs = 50;  // the paper reports 50 executions per table cell
  ResampleMode mode = ResampleMode::kHybrid;
  uint64_t seed = 7;
  // Per-walker startup overhead in seconds (process launch, first
  // configuration build). The paper calls deployment time negligible; keep
  // tiny but nonzero so huge k cannot produce exactly-zero times.
  double startup_seconds = 1e-4;
  // Scheduler walltime cap in seconds; runs exceeding it are *censored*
  // (killed by the batch system), exactly like the paper's HA8000 one-hour
  // and JUGENE 30-minute limits (Sec. V-B). 0 = no cap. Use
  // scheduler_walltime_cap() for the per-platform policy.
  double walltime_cap_seconds = 0;
};

struct CellResult {
  int n = 0;
  int cores = 0;
  analysis::Summary seconds;     // distribution over the *completed* runs
  double expected_seconds = 0;   // closed-form E[min-of-k] (empirical mode)
  int censored = 0;              // runs killed by the walltime cap
  int completed = 0;             // runs that finished under the cap
};

/// Simulate `opts.runs` independent k-core multi-walk executions on
/// `platform` and summarize the wall-clock times.
CellResult simulate_cell(const SampleBank& bank, const Platform& platform, int cores,
                         const SimOptions& opts);

/// Whole table row: one instance size across several core counts.
std::vector<CellResult> simulate_row(const SampleBank& bank, const Platform& platform,
                                     const std::vector<int>& core_counts,
                                     const SimOptions& opts);

/// Raw simulated times (used by the TTT figure). Ignores the walltime cap.
std::vector<double> simulate_times(const SampleBank& bank, const Platform& platform, int cores,
                                   const SimOptions& opts);

/// Whether a (bank, platform, cores) cell is runnable under a walltime cap:
/// the *expected* k-core time must fit (the criterion that reproduces which
/// cells the paper could measure at all — e.g. no 1-core CAP 21/22 rows on
/// HA8000 under its one-hour limit).
bool cell_feasible(const SampleBank& bank, const Platform& platform, int cores,
                   double walltime_cap_seconds);

const char* resample_mode_name(ResampleMode mode);

}  // namespace cas::sim
