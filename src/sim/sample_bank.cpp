#include "sim/sample_bank.hpp"

#include <atomic>
#include <cstdio>
#include <future>
#include <stdexcept>

#include "core/adaptive_search.hpp"
#include "core/chaotic_seed.hpp"
#include "costas/model.hpp"
#include "par/thread_pool.hpp"
#include "util/csv.hpp"

namespace cas::sim {

SampleBank collect_costas_bank(int n, const core::AsConfig& base, const BankOptions& opts) {
  SampleBank bank;
  bank.n = n;
  bank.master_seed = opts.master_seed;
  bank.iterations.resize(static_cast<size_t>(opts.num_samples));

  const auto seeds = core::ChaoticSeedSequence::generate(
      opts.master_seed, static_cast<size_t>(opts.num_samples) * 4);  // spares for re-draws
  std::atomic<size_t> next_spare{static_cast<size_t>(opts.num_samples)};
  std::atomic<int> censored{0};

  par::ThreadPool pool(opts.num_threads);
  std::vector<std::future<void>> futures;
  futures.reserve(static_cast<size_t>(opts.num_samples));
  for (int i = 0; i < opts.num_samples; ++i) {
    futures.push_back(pool.submit([&, i] {
      uint64_t seed = seeds[static_cast<size_t>(i)];
      while (true) {
        costas::CostasProblem problem(n);
        core::AsConfig cfg = base;
        cfg.seed = seed;
        cfg.max_iterations = opts.max_iterations_per_run;
        core::AdaptiveSearch<costas::CostasProblem> engine(problem, cfg);
        const auto st = engine.solve();
        if (st.solved) {
          bank.iterations[static_cast<size_t>(i)] = static_cast<double>(st.iterations);
          return;
        }
        // Censored by the safety cap: re-draw with a spare seed.
        censored.fetch_add(1, std::memory_order_relaxed);
        const size_t spare = next_spare.fetch_add(1, std::memory_order_relaxed);
        seed = spare < seeds.size() ? seeds[spare] : seed * 0x9e3779b97f4a7c15ull + 1;
      }
    }));
  }
  for (auto& f : futures) f.get();
  if (censored.load() > 0) {
    std::fprintf(stderr,
                 "[sample_bank] warning: %d run(s) hit the %llu-iteration cap and were "
                 "re-drawn; the bank slightly under-represents the extreme tail\n",
                 censored.load(),
                 static_cast<unsigned long long>(opts.max_iterations_per_run));
  }
  return bank;
}

void save_bank(const SampleBank& bank, const std::string& path) {
  std::vector<std::vector<double>> rows;
  rows.reserve(bank.iterations.size());
  for (double it : bank.iterations) {
    rows.push_back({static_cast<double>(bank.n), static_cast<double>(bank.master_seed), it});
  }
  util::write_csv(path, {"n", "master_seed", "iterations"}, rows);
}

SampleBank load_bank(const std::string& path) {
  const auto doc = util::read_csv(path);
  SampleBank bank;
  const int ci = doc.column("iterations");
  const int cn = doc.column("n");
  const int cs = doc.column("master_seed");
  if (ci < 0 || cn < 0 || cs < 0) throw std::runtime_error("load_bank: bad header in " + path);
  for (const auto& row : doc.rows) {
    bank.n = static_cast<int>(std::stod(row[static_cast<size_t>(cn)]));
    bank.master_seed = static_cast<uint64_t>(std::stod(row[static_cast<size_t>(cs)]));
    bank.iterations.push_back(std::stod(row[static_cast<size_t>(ci)]));
  }
  return bank;
}

SampleBank load_or_collect(int n, const core::AsConfig& base, const BankOptions& opts,
                           const std::string& cache_path) {
  if (!cache_path.empty() && util::file_exists(cache_path)) {
    try {
      SampleBank bank = load_bank(cache_path);
      if (bank.n == n && bank.master_seed == opts.master_seed &&
          bank.iterations.size() >= static_cast<size_t>(opts.num_samples)) {
        return bank;
      }
    } catch (const std::exception&) {
      // fall through to re-collect
    }
  }
  SampleBank bank = collect_costas_bank(n, base, opts);
  if (!cache_path.empty()) {
    try {
      save_bank(bank, cache_path);
    } catch (const std::exception&) {
      // cache write failure is non-fatal
    }
  }
  return bank;
}

}  // namespace cas::sim
