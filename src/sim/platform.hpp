// Platform profiles for the paper's four testbeds. The simulator replays
// run *lengths* (iterations, which are hardware-independent) and converts
// them to run *times* with a per-platform speed model.
//
// Speed model: one Adaptive Search iteration on CAP costs O(n^2) elementary
// triangle-cell operations (a move scan touches n-1 candidates x O(n) cells,
// plus the reset machinery), so a platform is characterized by a single
// "cell-operations per second" constant:
//
//     seconds(n, iterations) = iterations * n^2 / cellops_per_second
//
// Constants are calibrated from the paper's own published numbers (Table I
// for the Xeon reference, 1-core columns of Tables III/V for HA8000 and
// GRID'5000, and the Table IV / Table III cross-ratio for JUGENE's PPC450);
// the derivations are reproduced in DESIGN.md §4 and EXPERIMENTS.md.
#pragma once

#include <string>
#include <vector>

namespace cas::sim {

struct Platform {
  std::string name;
  std::string cpu;
  double cellops_per_second = 0;

  /// Wall-clock seconds this platform takes for `iterations` AS iterations
  /// on a CAP instance of size n.
  [[nodiscard]] double seconds(double iterations, int n) const;

  /// Inverse: iterations achievable in `secs`.
  [[nodiscard]] double iterations_in(double secs, int n) const;
};

/// Reference machine of the paper's Table I (Dell Precision T7500,
/// Intel Xeon W5580 3.2 GHz). Calibrated from Table I itself:
/// 20,536,809 iters in 250.68 s at n=20 -> ~3.3e7 cellops/s.
const Platform& xeon_w5580();

/// HA8000 node (AMD Opteron 8356, 2.3 GHz). Table III 1-core column is
/// ~0.55-0.68x the Xeon -> ~2.0e7 cellops/s.
const Platform& ha8000();

/// GRID'5000 Sophia "Suno" (Dell R410): 1-core column of Table V.
const Platform& grid5000_suno();

/// GRID'5000 Sophia "Helios" (Sun Fire X4100): 1-core column of Table V.
const Platform& grid5000_helios();

/// JUGENE Blue Gene/P node (PowerPC 450, 850 MHz). No 1-core data in the
/// paper; calibrated from the CAP21 Table IV vs Table III cross-ratio
/// (~5.5x slower per core than HA8000).
const Platform& jugene();

/// Scheduler walltime cap in seconds for a job of `cores` cores on this
/// platform, +infinity when unrestricted. The paper's Sec. V-B reports the
/// two policies that shaped its tables: HA8000 jobs are limited to one
/// hour ("the maximum resource utilization is currently limited to one
/// hour because of power savings" — why Table III has no 1-core column for
/// n = 21/22), and JUGENE forces a 30-minute timeout on any job using
/// fewer than 1025 cores (why Table IV starts at 512+ cores and n = 23
/// only appears from 2048 cores).
double scheduler_walltime_cap(const Platform& platform, int cores);

/// Calibrate a profile for the machine running this process by timing the
/// actual solver kernel (used when the harness reports "local" numbers).
Platform calibrate_local(int n = 14, double budget_seconds = 1.0);

const std::vector<Platform>& all_reference_platforms();

}  // namespace cas::sim
