// Run-length sample banks: many independent sequential Adaptive Search runs
// on one CAP instance, recorded as iteration counts. Iterations are
// hardware-independent, so one bank drives the time models of every
// platform profile (and of the local machine).
//
// Banks are collected in parallel on the host's cores (each run is fully
// independent — the same property the paper's parallel scheme exploits) and
// can be cached to CSV so repeated bench invocations are cheap.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"

namespace cas::sim {

struct SampleBank {
  int n = 0;                        // CAP instance size
  std::vector<double> iterations;   // one entry per successful run
  uint64_t master_seed = 0;

  [[nodiscard]] size_t size() const { return iterations.size(); }
};

struct BankOptions {
  int num_samples = 100;
  unsigned num_threads = 0;  // 0 = hardware concurrency
  uint64_t master_seed = 20120521;  // IPDPS-Workshops 2012 vintage
  // Safety valve for pathological runs; 0 disables. Censored runs are
  // re-drawn with a fresh seed (documented bias: negligible while the cap
  // is >> the distribution mean; the collector warns when it triggers).
  uint64_t max_iterations_per_run = 0;
};

/// Run `num_samples` independent sequential AS runs on CAP size n and
/// record their iteration counts. `base` supplies the engine parameters
/// (seed is overridden per run from the chaotic seed sequence).
SampleBank collect_costas_bank(int n, const core::AsConfig& base, const BankOptions& opts);

/// CSV cache (header: n,master_seed then one iterations value per row).
void save_bank(const SampleBank& bank, const std::string& path);
SampleBank load_bank(const std::string& path);

/// Load if a compatible cache exists, else collect and save. A cache is
/// compatible when n and master_seed match and it holds >= num_samples
/// entries (extra entries are kept).
SampleBank load_or_collect(int n, const core::AsConfig& base, const BankOptions& opts,
                           const std::string& cache_path);

}  // namespace cas::sim
