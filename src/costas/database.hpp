// Reference data on Costas arrays from the published enumerations the
// paper cites (Sec. II): total counts for every fully enumerated order
// (n <= 29, the order-28/29 results of Drakakis et al. [15], [16]), counts
// of equivalence classes under the dihedral symmetry group ("unique arrays
// up to rotation and reflection" — the paper quotes 164 total / 23 unique
// for n = 29), and existence status for larger orders, including the famous
// open cases n = 32 and 33 the paper highlights.
//
// Small-order values are cross-checked against this repository's own
// exhaustive enumerator in tests; larger values are literature data kept
// here so tests, examples and benches can assert against ground truth.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace cas::costas {

/// Largest order whose Costas arrays have all been enumerated in the
/// literature (as of the paper's publication window).
inline constexpr int kMaxEnumeratedOrder = 29;

/// Total number of Costas arrays of order n, for 1 <= n <= 29.
/// nullopt outside the enumerated range.
std::optional<int64_t> known_costas_count(int n);

/// Number of equivalence classes under the 8-element dihedral symmetry
/// group, for 1 <= n <= 29. nullopt outside the enumerated range.
std::optional<int64_t> known_class_count(int n);

/// C(n) / n!: the fraction of permutations that are Costas — the "density
/// of solutions in the search space" whose collapse with growing n is what
/// makes the CAP hard (Sec. II). nullopt outside the enumerated range.
std::optional<double> known_density(int n);

/// The enumerated order with the most Costas arrays (n = 16: the count
/// peaks there and decays for larger n even as n! explodes).
int peak_count_order();

/// How we know arrays of order n exist.
enum class ExistenceStatus {
  kEnumerated,     // n <= 29: full enumeration published
  kConstructible,  // this library can build one (Welch/Lempel-Golomb family)
  kUnknown,        // no construction covered here; includes the open cases
};

/// Status of order n under this library's construction coverage. Note the
/// literature knows a handful of sporadic arrays beyond our generators
/// (e.g. n = 30, 31 were settled by search), so kUnknown means "open or
/// outside this library's constructive reach", not "proved nonexistent".
ExistenceStatus existence_status(int n);

/// Human-readable status line for order n (used by the explorer example).
std::string describe_order(int n);

/// Orders in [1, limit] with status kUnknown. For limit = 33 this yields
/// {32, 33} — the open questions the paper quotes — plus any order beyond
/// 29 that our constructions miss.
std::vector<int> unknown_orders_up_to(int limit);

}  // namespace cas::costas
