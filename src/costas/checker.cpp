#include "costas/checker.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace cas::costas {

bool is_permutation(std::span<const int> perm) {
  const int n = static_cast<int>(perm.size());
  std::vector<bool> seen(static_cast<size_t>(n) + 1, false);
  for (int v : perm) {
    if (v < 1 || v > n || seen[static_cast<size_t>(v)]) return false;
    seen[static_cast<size_t>(v)] = true;
  }
  return true;
}

bool is_costas(std::span<const int> perm) {
  if (!is_permutation(perm)) return false;
  const int n = static_cast<int>(perm.size());
  // Vectors between marks: (j - i, perm[j] - perm[i]) for i < j. The grid is
  // Costas iff all are distinct; grouping by dx reduces this to "each
  // difference-triangle row has distinct entries".
  for (int d = 1; d < n; ++d) {
    for (int i = 0; i + d < n; ++i) {
      for (int j = i + 1; j + d < n; ++j) {
        if (perm[static_cast<size_t>(i + d)] - perm[static_cast<size_t>(i)] ==
            perm[static_cast<size_t>(j + d)] - perm[static_cast<size_t>(j)])
          return false;
      }
    }
  }
  return true;
}

std::string explain_violation(std::span<const int> perm) {
  const int n = static_cast<int>(perm.size());
  if (!is_permutation(perm)) return "not a permutation of 1..n";
  for (int d = 1; d < n; ++d) {
    for (int i = 0; i + d < n; ++i) {
      for (int j = i + 1; j + d < n; ++j) {
        const int di = perm[static_cast<size_t>(i + d)] - perm[static_cast<size_t>(i)];
        const int dj = perm[static_cast<size_t>(j + d)] - perm[static_cast<size_t>(j)];
        if (di == dj) {
          return util::strf(
              "row d=%d of the difference triangle repeats value %d at positions %d and %d", d,
              di, i, j);
        }
      }
    }
  }
  return "";
}

std::vector<std::vector<int>> difference_triangle(std::span<const int> perm) {
  const int n = static_cast<int>(perm.size());
  std::vector<std::vector<int>> tri;
  tri.reserve(static_cast<size_t>(std::max(0, n - 1)));
  for (int d = 1; d < n; ++d) {
    std::vector<int> row;
    row.reserve(static_cast<size_t>(n - d));
    for (int i = 0; i + d < n; ++i)
      row.push_back(perm[static_cast<size_t>(i + d)] - perm[static_cast<size_t>(i)]);
    tri.push_back(std::move(row));
  }
  return tri;
}

std::string render_grid(std::span<const int> perm) {
  const int n = static_cast<int>(perm.size());
  std::string out;
  // Row n at the top (matrix convention of the paper's figure: mark at
  // column i, row perm[i]).
  for (int r = n; r >= 1; --r) {
    for (int c = 0; c < n; ++c) {
      out += perm[static_cast<size_t>(c)] == r ? " X" : " .";
    }
    out += '\n';
  }
  return out;
}

std::string render_triangle(std::span<const int> perm) {
  std::string out;
  for (int v : perm) out += util::strf("%4d", v);
  out += '\n';
  const auto tri = difference_triangle(perm);
  for (size_t d = 0; d < tri.size(); ++d) {
    out += util::strf("d=%-2d", static_cast<int>(d + 1));
    for (int v : tri[d]) out += util::strf("%4d", v);
    out += '\n';
  }
  return out;
}

}  // namespace cas::costas
