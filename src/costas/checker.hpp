// Independent Costas-array validation. Deliberately written with the naive
// O(n^3) definition (all vectors between marks pairwise distinct) so it
// shares no code with the optimized incremental model it cross-checks.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace cas::costas {

/// True if `perm` is a permutation of {1..n} (n = perm.size()).
bool is_permutation(std::span<const int> perm);

/// True if `perm` encodes a Costas array: a permutation whose difference
/// triangle has no repeated value in any row. Checks ALL n-1 rows.
bool is_costas(std::span<const int> perm);

/// Human-readable reason why `perm` is not a Costas array ("" if it is).
std::string explain_violation(std::span<const int> perm);

/// The difference triangle: row d (1-based; triangle[d-1]) holds
/// perm[i+d] - perm[i] for i = 0..n-1-d. Matches the paper's Sec. IV-A
/// figure layout.
std::vector<std::vector<int>> difference_triangle(std::span<const int> perm);

/// Render the n x n grid with 'X' marks, as in the paper's Sec. II figure.
std::string render_grid(std::span<const int> perm);

/// Render the difference triangle under the permutation, as in Sec. IV-A.
std::string render_triangle(std::span<const int> perm);

}  // namespace cas::costas
