#include "costas/model.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "costas/checker.hpp"
#include "simd/costas_kernels.hpp"

namespace cas::costas {

namespace {

// The kernels' self-lane sentinel and the engines' exclusion sentinel must
// agree, or a fully-positive row could hand an engine the culprit itself.
static_assert(simd::kDeltaRowExcluded == core::kExcludedDelta);

}  // namespace

CostasProblem::CostasProblem(int n, CostasOptions opts) : n_(n), opts_(opts) {
  if (n < 2) throw std::invalid_argument("CostasProblem: n must be >= 2");
  depth_ = opts_.use_chang ? (n - 1) / 2 : n - 1;
  stride_ = static_cast<size_t>(2 * n - 1);
  perm_.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) perm_[static_cast<size_t>(i)] = i + 1;
  occ_.assign(static_cast<size_t>(std::max(depth_, 1)) * stride_, 0);
  pair_start_sum_.assign(occ_.size(), 0);
  errs_.assign(static_cast<size_t>(n), 0);
  errw_.assign(static_cast<size_t>(depth_) + 1, 0);
  // The family-3 erroneous-position list is bounded by n; reserving it here
  // keeps the whole reset path allocation-free from the first call (the
  // reset bench asserts this after warmup).
  scratch_.reserve(static_cast<size_t>(n));
  for (int d = 1; d <= depth_; ++d) {
    errw_[static_cast<size_t>(d)] =
        opts_.err == ErrFunction::kQuadratic
            ? static_cast<Cost>(n) * n - static_cast<Cost>(d) * d
            : 1;
  }
  rebuild();
}

void CostasProblem::rebuild() {
  std::fill(occ_.begin(), occ_.end(), 0);
  std::fill(pair_start_sum_.begin(), pair_start_sum_.end(), 0);
  std::fill(errs_.begin(), errs_.end(), Cost{0});
  cost_ = 0;
  // add_pair maintains cost_ and errs_ through every intermediate state, so
  // inserting the pairs one by one rebuilds both tables correctly.
  for (int d = 1; d <= depth_; ++d) {
    for (int i = 0; i + d < n_; ++i) add_pair(i, i + d);
  }
}

void CostasProblem::randomize(core::Rng& rng) {
  rng.shuffle(perm_);
  rebuild();
}

void CostasProblem::set_permutation(std::span<const int> perm) {
  if (static_cast<int>(perm.size()) != n_ || !is_permutation(perm))
    throw std::invalid_argument("CostasProblem::set_permutation: not a permutation of 1..n");
  std::copy(perm.begin(), perm.end(), perm_.begin());
  rebuild();
}

void CostasProblem::apply_swap(int i, int j) {
  for_each_affected_pair(i, j, [&](int a, int b) { remove_pair(a, b); });
  std::swap(perm_[static_cast<size_t>(i)], perm_[static_cast<size_t>(j)]);
  for_each_affected_pair(i, j, [&](int a, int b) { add_pair(a, b); });
}

Cost CostasProblem::delta_cost(int i, int j) const {
  if (i == j) return 0;
  if (i > j) std::swap(i, j);
  // Pure evaluation against the live occ_ counters, mirroring apply_swap's
  // remove-all-then-add-all order. Affected pairs can share buckets only
  // within one triangle row (a bucket encodes its row), and a row has at
  // most 4 affected pairs — so intra-move interactions are resolved with
  // tiny per-row stack ledgers of raw diff values. The new diffs follow
  // from the old ones by +/- (vj - vi), so each row costs a handful of
  // loads and register compares. Zero mutation, safe for concurrent
  // readers.
  const int* const perm = perm_.data();
  const int32_t* const occ = occ_.data();
  const Cost* const errw = errw_.data();
  const int n = n_;
  const int vi = perm[i], vj = perm[j];
  const int vd = vj - vi;
  Cost delta = 0;
  for (int d = 1; d <= depth_; ++d) {
    // Row pointer offset so it can be indexed directly by a (possibly
    // negative) difference value.
    const int32_t* const row =
        occ + static_cast<size_t>(d - 1) * stride_ + static_cast<size_t>(n - 1);
    int oldd[4], newd[4];
    int np = 0;
    if (i - d >= 0) {
      oldd[np] = vi - perm[i - d];
      newd[np] = oldd[np] + vd;
      ++np;
    }
    if (i + d < n) {
      if (i + d == j) {  // the (i, j) pair itself: both endpoints swap
        oldd[np] = vd;
        newd[np] = -vd;
      } else {
        oldd[np] = perm[i + d] - vi;
        newd[np] = oldd[np] - vd;
      }
      ++np;
    }
    if (j - d >= 0 && j - d != i) {
      oldd[np] = vj - perm[j - d];
      newd[np] = oldd[np] - vd;
      ++np;
    }
    if (j + d < n) {
      oldd[np] = perm[j + d] - vj;
      newd[np] = oldd[np] + vd;
      ++np;
    }
    const Cost w = errw[d];
    // Removals first (a pair leaving a bucket with >= 2 pairs takes one
    // collision with it), then additions against the adjusted counts.
    for (int t = 0; t < np; ++t) {
      int32_t c = row[oldd[t]];
      for (int u = 0; u < t; ++u) c -= static_cast<int32_t>(oldd[u] == oldd[t]);
      if (c >= 2) delta -= w;
    }
    for (int t = 0; t < np; ++t) {
      int32_t c = row[newd[t]];
      for (int u = 0; u < np; ++u) c -= static_cast<int32_t>(oldd[u] == newd[t]);
      for (int u = 0; u < t; ++u) c += static_cast<int32_t>(newd[u] == newd[t]);
      if (c >= 1) delta += w;
    }
  }
  return delta;
}

void CostasProblem::delta_costs_row(int i, std::span<Cost> out) const {
  const simd::CostasCtx ctx{perm_.data(), occ_.data(), errw_.data(), n_, depth_, stride_};
  simd::costas_delta_row(ctx, i, out.data());
}

void CostasProblem::compute_errors(std::span<Cost> errs) const {
  const simd::CostasCtx ctx{perm_.data(), occ_.data(), errw_.data(), n_, depth_, stride_};
  simd::costas_errors(ctx, errs.data());
}

Cost CostasProblem::evaluate(std::span<const int> perm) const {
  return evaluate_bounded(perm, std::numeric_limits<Cost>::max());
}

Cost CostasProblem::evaluate_bounded(std::span<const int> perm, Cost bound) const {
  // Stateless O(n * depth) evaluation with early abort once the partial cost
  // reaches `bound` (cost is a sum of non-negative row contributions, so it
  // can only grow). Uses a per-row seen[] scratch indexed like occ_ rows;
  // the scratch is kept all-zero BETWEEN calls (every exit path, including
  // the early abort, clears exactly the slots it touched), so the hot reset
  // loop never pays a full O(stride) wipe per candidate.
  Cost total = 0;
  thread_local std::vector<int32_t> seen;
  if (seen.size() < stride_) seen.assign(stride_, 0);
  for (int d = 1; d <= depth_; ++d) {
    const Cost w = errw_[static_cast<size_t>(d)];
    int processed = 0;
    bool aborted = false;
    for (int i = 0; i + d < n_; ++i) {
      const int diff = perm[static_cast<size_t>(i + d)] - perm[static_cast<size_t>(i)];
      int32_t& c = seen[static_cast<size_t>(diff + n_ - 1)];
      ++c;
      processed = i + 1;
      if (c >= 2) {
        total += w;
        if (total >= bound) {
          aborted = true;
          break;
        }
      }
    }
    // Clear only the slots this row actually touched.
    for (int i = 0; i < processed; ++i) {
      seen[static_cast<size_t>(perm[static_cast<size_t>(i + d)] - perm[static_cast<size_t>(i)] +
                               n_ - 1)] = 0;
    }
    if (aborted) return total;
  }
  return total;
}

void CostasProblem::append_rotated_candidate(core::CandidateBatch& batch, int lo, int hi,
                                             bool left) const {
  // A copy of the current permutation with only the [lo, hi] window
  // rewritten, shifted one cell left or right circularly.
  const int lane = batch.append(perm_);
  if (left) {
    for (int i = lo; i < hi; ++i)
      batch.set(lane, i, static_cast<int32_t>(perm_[static_cast<size_t>(i + 1)]));
    batch.set(lane, hi, static_cast<int32_t>(perm_[static_cast<size_t>(lo)]));
  } else {
    for (int i = lo + 1; i <= hi; ++i)
      batch.set(lane, i, static_cast<int32_t>(perm_[static_cast<size_t>(i - 1)]));
    batch.set(lane, lo, static_cast<int32_t>(perm_[static_cast<size_t>(hi)]));
  }
}

void CostasProblem::append_reset_families_1_2(int m, core::CandidateBatch& batch) const {
  // Family 1: circular shifts of the sub-arrays [m, e] (e > m) and
  // [s, m] (s < m) anchored at the most erroneous variable, one cell left
  // and one cell right each.
  for (int e = m + 1; e < n_; ++e) {
    append_rotated_candidate(batch, m, e, /*left=*/true);
    append_rotated_candidate(batch, m, e, /*left=*/false);
  }
  for (int s = 0; s < m; ++s) {
    append_rotated_candidate(batch, s, m, /*left=*/true);
    append_rotated_candidate(batch, s, m, /*left=*/false);
  }
  // Family 2: add a constant modulo n.
  const int consts[4] = {1, 2, n_ - 2, n_ - 3};
  for (int c : consts) {
    if (c <= 0 || c >= n_) continue;  // degenerate for tiny n
    const int lane = batch.append(perm_);
    for (int i = 0; i < n_; ++i)
      batch.set(lane, i,
                static_cast<int32_t>((perm_[static_cast<size_t>(i)] - 1 + c) % n_ + 1));
  }
}

void CostasProblem::evaluate_batch(const core::CandidateBatch& batch, Cost bound,
                                   std::span<Cost> out) const {
  if (batch.size() != n_)
    throw std::invalid_argument("CostasProblem::evaluate_batch: candidate size mismatch");
  const simd::CostasCtx ctx{perm_.data(), occ_.data(), errw_.data(), n_, depth_, stride_};
  simd::costas_evaluate_batch(ctx, batch.data(), batch.lane_stride(), batch.count(), bound,
                              out.data());
}

int CostasProblem::reset_candidate_count() const {
  // Family 1: 2 shift directions for each sub-array starting or ending at
  // Vm — (n-1) sub-arrays each way minus the duplicate full-range one gives
  // 2(n-1) candidates in the worst case (Vm interior); family 2: 4 modular
  // constants; family 3: up to 3 prefix shifts.
  return 2 * (n_ - 1) + 4 + 3;
}

bool CostasProblem::custom_reset(core::Rng& rng) {
  // Batched pipeline: the candidate families are generated straight into
  // the reusable SoA batch (no per-candidate vector copies) and scored
  // through the chunked kernel walk with a shared best-so-far bound. The
  // selection replicates the historical serial consider-loop exactly:
  //   * escape — the FIRST candidate strictly below the entry cost wins
  //     (the kernel stops after the chunk containing it; later candidates
  //     are never needed, and candidate generation draws no RNG);
  //   * otherwise — the first candidate achieving the batch minimum wins,
  //     which is exactly what the serial loop's strict-improvement update
  //     adopted. Pruned lanes report partials >= every bound that was in
  //     effect for them, so they can never falsely claim either role.
  const Cost entry_cost = cost_;
  const simd::CostasCtx ctx{perm_.data(), occ_.data(), errw_.data(), n_, depth_, stride_};
  // +kLaneBlock: family 3 is evaluated as a lane-offset slice, so the
  // kernel may read one full block past the last family-3 lane.
  reset_batch_.reset(n_, reset_candidate_count() + core::CandidateBatch::kLaneBlock);
  reset_costs_.resize(static_cast<size_t>(reset_candidate_count()));

  // Adopt candidate `lane` in place (index into the batch, no copy).
  auto adopt = [&](int lane) {
    for (int i = 0; i < n_; ++i)
      perm_[static_cast<size_t>(i)] = static_cast<int>(reset_batch_.get(lane, i));
    rebuild();
  };

  // The batch's own capacity guard admits kLaneBlock padding lanes beyond
  // reset_candidate_count(), so it cannot catch a generator drifting past
  // the cost row — check the invariant before every kernel write.
  auto check_cost_row_fits = [&] {
    if (static_cast<size_t>(reset_batch_.count()) > reset_costs_.size())
      throw std::logic_error(
          "CostasProblem::custom_reset: candidate families exceed reset_candidate_count()");
  };

  // Scan a just-evaluated slice [first_lane, first_lane + evaluated):
  // returns the first strict improvement over the entry cost (the escape
  // lane), or -1 after folding the slice into best_cost/best_lane with the
  // serial loop's strict-< update.
  Cost best_cost = std::numeric_limits<Cost>::max();
  int best_lane = -1;
  auto scan_for_escape = [&](int first_lane, int evaluated) {
    for (int c = 0; c < evaluated; ++c) {
      const Cost cost = reset_costs_[static_cast<size_t>(first_lane + c)];
      if (cost < entry_cost) return first_lane + c;  // first strict improvement
      if (cost < best_cost) {
        best_cost = cost;
        best_lane = first_lane + c;
      }
    }
    return -1;
  };

  // Most erroneous variable Vm (ties broken uniformly), read straight from
  // the incrementally maintained error table (no state is mutated before
  // adopt, so the span stays valid throughout).
  const std::span<const Cost> errs = errors();
  int m = 0;
  {
    Cost best_err = -1;
    int ties = 0;
    for (int i = 0; i < n_; ++i) {
      const Cost e = errs[static_cast<size_t>(i)];
      if (e > best_err) {
        best_err = e;
        m = i;
        ties = 1;
      } else if (e == best_err) {
        ++ties;
        if (rng.below(static_cast<uint64_t>(ties)) == 0) m = i;
      }
    }
  }

  // Families 1 + 2 (deterministic, shared with the reset micro bench).
  append_reset_families_1_2(m, reset_batch_);

  // One batched pass over families 1 + 2; the kernel stops early once a
  // completed chunk holds an escape.
  const int count12 = reset_batch_.count();
  check_cost_row_fits();
  int escaped12 = 0;
  const int evaluated12 =
      simd::costas_evaluate_batch(ctx, reset_batch_.data(), reset_batch_.lane_stride(),
                                  count12, std::numeric_limits<Cost>::max(),
                                  reset_costs_.data(), entry_cost, &escaped12);
  reset_evaluated_ = evaluated12;
  reset_escaped_chunks_ = escaped12;
  if (const int escape = scan_for_escape(0, evaluated12); escape >= 0) {
    adopt(escape);
    return true;
  }

  // --- Family 3: left-shift the prefix ending at a random erroneous
  // variable (not Vm); up to 3 attempts. Only reached when families 1/2
  // did not escape, so the RNG stream matches the serial procedure. ---
  {
    scratch_.clear();
    for (int i = 0; i < n_; ++i) {
      if (i != m && errs[static_cast<size_t>(i)] > 0) scratch_.push_back(i);
    }
    // Pick up to 3 distinct erroneous positions uniformly.
    int chosen[3];
    int num_chosen = 0;
    for (int t = 0; t < 3 && !scratch_.empty(); ++t) {
      const size_t idx = static_cast<size_t>(rng.below(scratch_.size()));
      chosen[num_chosen++] = scratch_[idx];
      scratch_[idx] = scratch_.back();
      scratch_.pop_back();
    }
    for (int t = 0; t < num_chosen; ++t) {
      const int e = chosen[t];
      if (e == 0) continue;  // prefix of length 1: no-op
      append_rotated_candidate(reset_batch_, 0, e, /*left=*/true);
    }
  }
  const int count3 = reset_batch_.count() - count12;
  if (count3 > 0) {
    // Lane-offset slice: same kernel, pruning against the families-1/2
    // best, escaping below the entry cost.
    check_cost_row_fits();
    int escaped3 = 0;
    const int evaluated3 = simd::costas_evaluate_batch(
        ctx, reset_batch_.data() + count12, reset_batch_.lane_stride(), count3, best_cost,
        reset_costs_.data() + count12, entry_cost, &escaped3);
    reset_evaluated_ += evaluated3;
    reset_escaped_chunks_ += escaped3;
    if (const int escape = scan_for_escape(count12, evaluated3); escape >= 0) {
      adopt(escape);
      return true;
    }
  }

  if (best_lane >= 0) adopt(best_lane);
  return false;
}

core::AsConfig recommended_config(int n, uint64_t seed) {
  core::AsConfig cfg;
  cfg.tabu_tenure = std::max(2, n / 10);
  cfg.plateau_probability = 0.93;
  cfg.reset_limit = 1;       // paper: RL = 1
  cfg.reset_fraction = 0.05;  // paper: RP = 5%
  cfg.use_custom_reset = true;
  cfg.probe_interval = 64;
  cfg.seed = seed;
  return cfg;
}

}  // namespace cas::costas
