#include "costas/model.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "costas/checker.hpp"
#include "simd/costas_kernels.hpp"

namespace cas::costas {

namespace {

// The kernels' self-lane sentinel and the engines' exclusion sentinel must
// agree, or a fully-positive row could hand an engine the culprit itself.
static_assert(simd::kDeltaRowExcluded == core::kExcludedDelta);

}  // namespace

CostasProblem::CostasProblem(int n, CostasOptions opts) : n_(n), opts_(opts) {
  if (n < 2) throw std::invalid_argument("CostasProblem: n must be >= 2");
  depth_ = opts_.use_chang ? (n - 1) / 2 : n - 1;
  stride_ = static_cast<size_t>(2 * n - 1);
  perm_.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) perm_[static_cast<size_t>(i)] = i + 1;
  occ_.assign(static_cast<size_t>(std::max(depth_, 1)) * stride_, 0);
  pair_start_sum_.assign(occ_.size(), 0);
  errs_.assign(static_cast<size_t>(n), 0);
  errw_.assign(static_cast<size_t>(depth_) + 1, 0);
  for (int d = 1; d <= depth_; ++d) {
    errw_[static_cast<size_t>(d)] =
        opts_.err == ErrFunction::kQuadratic
            ? static_cast<Cost>(n) * n - static_cast<Cost>(d) * d
            : 1;
  }
  rebuild();
}

void CostasProblem::rebuild() {
  std::fill(occ_.begin(), occ_.end(), 0);
  std::fill(pair_start_sum_.begin(), pair_start_sum_.end(), 0);
  std::fill(errs_.begin(), errs_.end(), Cost{0});
  cost_ = 0;
  // add_pair maintains cost_ and errs_ through every intermediate state, so
  // inserting the pairs one by one rebuilds both tables correctly.
  for (int d = 1; d <= depth_; ++d) {
    for (int i = 0; i + d < n_; ++i) add_pair(i, i + d);
  }
}

void CostasProblem::randomize(core::Rng& rng) {
  rng.shuffle(perm_);
  rebuild();
}

void CostasProblem::set_permutation(std::span<const int> perm) {
  if (static_cast<int>(perm.size()) != n_ || !is_permutation(perm))
    throw std::invalid_argument("CostasProblem::set_permutation: not a permutation of 1..n");
  std::copy(perm.begin(), perm.end(), perm_.begin());
  rebuild();
}

void CostasProblem::apply_swap(int i, int j) {
  for_each_affected_pair(i, j, [&](int a, int b) { remove_pair(a, b); });
  std::swap(perm_[static_cast<size_t>(i)], perm_[static_cast<size_t>(j)]);
  for_each_affected_pair(i, j, [&](int a, int b) { add_pair(a, b); });
}

Cost CostasProblem::delta_cost(int i, int j) const {
  if (i == j) return 0;
  if (i > j) std::swap(i, j);
  // Pure evaluation against the live occ_ counters, mirroring apply_swap's
  // remove-all-then-add-all order. Affected pairs can share buckets only
  // within one triangle row (a bucket encodes its row), and a row has at
  // most 4 affected pairs — so intra-move interactions are resolved with
  // tiny per-row stack ledgers of raw diff values. The new diffs follow
  // from the old ones by +/- (vj - vi), so each row costs a handful of
  // loads and register compares. Zero mutation, safe for concurrent
  // readers.
  const int* const perm = perm_.data();
  const int32_t* const occ = occ_.data();
  const Cost* const errw = errw_.data();
  const int n = n_;
  const int vi = perm[i], vj = perm[j];
  const int vd = vj - vi;
  Cost delta = 0;
  for (int d = 1; d <= depth_; ++d) {
    // Row pointer offset so it can be indexed directly by a (possibly
    // negative) difference value.
    const int32_t* const row =
        occ + static_cast<size_t>(d - 1) * stride_ + static_cast<size_t>(n - 1);
    int oldd[4], newd[4];
    int np = 0;
    if (i - d >= 0) {
      oldd[np] = vi - perm[i - d];
      newd[np] = oldd[np] + vd;
      ++np;
    }
    if (i + d < n) {
      if (i + d == j) {  // the (i, j) pair itself: both endpoints swap
        oldd[np] = vd;
        newd[np] = -vd;
      } else {
        oldd[np] = perm[i + d] - vi;
        newd[np] = oldd[np] - vd;
      }
      ++np;
    }
    if (j - d >= 0 && j - d != i) {
      oldd[np] = vj - perm[j - d];
      newd[np] = oldd[np] - vd;
      ++np;
    }
    if (j + d < n) {
      oldd[np] = perm[j + d] - vj;
      newd[np] = oldd[np] + vd;
      ++np;
    }
    const Cost w = errw[d];
    // Removals first (a pair leaving a bucket with >= 2 pairs takes one
    // collision with it), then additions against the adjusted counts.
    for (int t = 0; t < np; ++t) {
      int32_t c = row[oldd[t]];
      for (int u = 0; u < t; ++u) c -= static_cast<int32_t>(oldd[u] == oldd[t]);
      if (c >= 2) delta -= w;
    }
    for (int t = 0; t < np; ++t) {
      int32_t c = row[newd[t]];
      for (int u = 0; u < np; ++u) c -= static_cast<int32_t>(oldd[u] == newd[t]);
      for (int u = 0; u < t; ++u) c += static_cast<int32_t>(newd[u] == newd[t]);
      if (c >= 1) delta += w;
    }
  }
  return delta;
}

void CostasProblem::delta_costs_row(int i, std::span<Cost> out) const {
  const simd::CostasCtx ctx{perm_.data(), occ_.data(), errw_.data(), n_, depth_, stride_};
  simd::costas_delta_row(ctx, i, out.data());
}

void CostasProblem::compute_errors(std::span<Cost> errs) const {
  const simd::CostasCtx ctx{perm_.data(), occ_.data(), errw_.data(), n_, depth_, stride_};
  simd::costas_errors(ctx, errs.data());
}

Cost CostasProblem::evaluate(std::span<const int> perm) const {
  return evaluate_bounded(perm, std::numeric_limits<Cost>::max());
}

Cost CostasProblem::evaluate_bounded(std::span<const int> perm, Cost bound) const {
  // Stateless O(n * depth) evaluation with early abort once the partial cost
  // reaches `bound` (cost is a sum of non-negative row contributions, so it
  // can only grow). Uses a per-row seen[] scratch indexed like occ_ rows;
  // the scratch is kept all-zero BETWEEN calls (every exit path, including
  // the early abort, clears exactly the slots it touched), so the hot reset
  // loop never pays a full O(stride) wipe per candidate.
  Cost total = 0;
  thread_local std::vector<int32_t> seen;
  if (seen.size() < stride_) seen.assign(stride_, 0);
  for (int d = 1; d <= depth_; ++d) {
    const Cost w = errw_[static_cast<size_t>(d)];
    int processed = 0;
    bool aborted = false;
    for (int i = 0; i + d < n_; ++i) {
      const int diff = perm[static_cast<size_t>(i + d)] - perm[static_cast<size_t>(i)];
      int32_t& c = seen[static_cast<size_t>(diff + n_ - 1)];
      ++c;
      processed = i + 1;
      if (c >= 2) {
        total += w;
        if (total >= bound) {
          aborted = true;
          break;
        }
      }
    }
    // Clear only the slots this row actually touched.
    for (int i = 0; i < processed; ++i) {
      seen[static_cast<size_t>(perm[static_cast<size_t>(i + d)] - perm[static_cast<size_t>(i)] +
                               n_ - 1)] = 0;
    }
    if (aborted) return total;
  }
  return total;
}

int CostasProblem::reset_candidate_count() const {
  // Family 1: 2 shift directions for each sub-array starting or ending at
  // Vm — (n-1) sub-arrays each way minus the duplicate full-range one gives
  // 2(n-1) candidates in the worst case (Vm interior); family 2: 4 modular
  // constants; family 3: up to 3 prefix shifts.
  return 2 * (n_ - 1) + 4 + 3;
}

bool CostasProblem::custom_reset(core::Rng& rng) {
  const Cost entry_cost = cost_;
  Cost best_cost = std::numeric_limits<Cost>::max();
  best_perm_.clear();

  // Evaluates one candidate; returns true when the candidate strictly beats
  // the entry cost (early escape per the paper).
  auto consider = [&](const std::vector<int>& cand) {
    const Cost c = evaluate_bounded(cand, best_cost);
    if (c < best_cost) {
      best_cost = c;
      best_perm_ = cand;
    }
    return best_cost < entry_cost;
  };

  auto accept_best = [&](bool escaped) {
    if (!best_perm_.empty()) {
      perm_ = best_perm_;
      rebuild();
    }
    return escaped;
  };

  // Most erroneous variable Vm (ties broken uniformly), read straight from
  // the incrementally maintained error table (no state is mutated before
  // accept_best, so the span stays valid throughout).
  const std::span<const Cost> errs = errors();
  int m = 0;
  {
    Cost best_err = -1;
    int ties = 0;
    for (int i = 0; i < n_; ++i) {
      const Cost e = errs[static_cast<size_t>(i)];
      if (e > best_err) {
        best_err = e;
        m = i;
        ties = 1;
      } else if (e == best_err) {
        ++ties;
        if (rng.below(static_cast<uint64_t>(ties)) == 0) m = i;
      }
    }
  }

  // --- Family 1: circular shifts of sub-arrays anchored at Vm ---
  // Sub-arrays [m, e] (e > m) and [s, m] (s < m), shifted one cell left and
  // one cell right.
  auto try_rotated = [&](int lo, int hi, bool left) {
    scratch_ = perm_;
    auto first = scratch_.begin() + lo;
    auto last = scratch_.begin() + hi + 1;
    if (left)
      std::rotate(first, first + 1, last);
    else
      std::rotate(first, last - 1, last);
    return consider(scratch_);
  };
  for (int e = m + 1; e < n_; ++e) {
    if (try_rotated(m, e, /*left=*/true)) return accept_best(true);
    if (try_rotated(m, e, /*left=*/false)) return accept_best(true);
  }
  for (int s = 0; s < m; ++s) {
    if (try_rotated(s, m, /*left=*/true)) return accept_best(true);
    if (try_rotated(s, m, /*left=*/false)) return accept_best(true);
  }

  // --- Family 2: add a constant modulo n ---
  const int consts[4] = {1, 2, n_ - 2, n_ - 3};
  for (int c : consts) {
    if (c <= 0 || c >= n_) continue;  // degenerate for tiny n
    scratch_ = perm_;
    for (int& v : scratch_) v = (v - 1 + c) % n_ + 1;
    if (consider(scratch_)) return accept_best(true);
  }

  // --- Family 3: left-shift the prefix ending at a random erroneous
  // variable (not Vm); up to 3 attempts ---
  {
    scratch_.clear();
    for (int i = 0; i < n_; ++i) {
      if (i != m && errs[static_cast<size_t>(i)] > 0) scratch_.push_back(i);
    }
    // Pick up to 3 distinct erroneous positions uniformly.
    std::vector<int> chosen;
    for (int t = 0; t < 3 && !scratch_.empty(); ++t) {
      const size_t idx = static_cast<size_t>(rng.below(scratch_.size()));
      chosen.push_back(scratch_[idx]);
      scratch_[idx] = scratch_.back();
      scratch_.pop_back();
    }
    for (int e : chosen) {
      if (e == 0) continue;  // prefix of length 1: no-op
      std::vector<int> cand = perm_;
      std::rotate(cand.begin(), cand.begin() + 1, cand.begin() + e + 1);
      if (consider(cand)) return accept_best(true);
    }
  }

  return accept_best(false);
}

core::AsConfig recommended_config(int n, uint64_t seed) {
  core::AsConfig cfg;
  cfg.tabu_tenure = std::max(2, n / 10);
  cfg.plateau_probability = 0.93;
  cfg.reset_limit = 1;       // paper: RL = 1
  cfg.reset_fraction = 0.05;  // paper: RP = 5%
  cfg.use_custom_reset = true;
  cfg.probe_interval = 64;
  cfg.seed = seed;
  return cfg;
}

}  // namespace cas::costas
