#include "costas/enumerate.hpp"

#include <stdexcept>

namespace cas::costas {

namespace {

// Backtracking state: perm[0..level) placed; rows[d] is the bitmask of
// differences already present in difference-triangle row d (bit diff+n-1).
struct Search {
  int n;
  std::vector<int> perm;
  std::vector<uint64_t> rows;   // rows[d], d = 1..n-1
  std::vector<bool> used;       // value used (1-based)
  const std::function<bool(std::span<const int>)>& fn;
  bool stopped = false;

  Search(int n_in, const std::function<bool(std::span<const int>)>& fn_in)
      : n(n_in),
        perm(static_cast<size_t>(n_in)),
        rows(static_cast<size_t>(n_in), 0),
        used(static_cast<size_t>(n_in) + 1, false),
        fn(fn_in) {}

  // Try to place value v at position `level`; returns false on conflict.
  // On success the row masks are updated (caller must undo()).
  bool place(int level, int v) {
    for (int d = 1; d <= level; ++d) {
      const int diff = v - perm[static_cast<size_t>(level - d)];
      const uint64_t bit = 1ull << (diff + n - 1);
      if (rows[static_cast<size_t>(d)] & bit) {
        // Undo the rows already updated for this placement.
        for (int u = 1; u < d; ++u) {
          const int pdiff = v - perm[static_cast<size_t>(level - u)];
          rows[static_cast<size_t>(u)] &= ~(1ull << (pdiff + n - 1));
        }
        return false;
      }
      rows[static_cast<size_t>(d)] |= bit;
    }
    perm[static_cast<size_t>(level)] = v;
    used[static_cast<size_t>(v)] = true;
    return true;
  }

  void undo(int level, int v) {
    for (int d = 1; d <= level; ++d) {
      const int diff = v - perm[static_cast<size_t>(level - d)];
      rows[static_cast<size_t>(d)] &= ~(1ull << (diff + n - 1));
    }
    used[static_cast<size_t>(v)] = false;
  }

  void run(int level) {
    if (stopped) return;
    if (level == n) {
      if (!fn(std::span<const int>(perm.data(), perm.size()))) stopped = true;
      return;
    }
    for (int v = 1; v <= n; ++v) {
      if (used[static_cast<size_t>(v)]) continue;
      if (!place(level, v)) continue;
      run(level + 1);
      undo(level, v);
      if (stopped) return;
    }
  }
};

}  // namespace

void enumerate_costas(int n, const std::function<bool(std::span<const int>)>& fn) {
  if (n < 1 || n > 32)
    throw std::invalid_argument("enumerate_costas: n must be in [1, 32]");
  Search s(n, fn);
  s.run(0);
}

uint64_t count_costas(int n) {
  uint64_t count = 0;
  enumerate_costas(n, [&](std::span<const int>) {
    ++count;
    return true;
  });
  return count;
}

std::optional<std::vector<int>> first_costas(int n) {
  std::optional<std::vector<int>> result;
  enumerate_costas(n, [&](std::span<const int> p) {
    result.emplace(p.begin(), p.end());
    return false;
  });
  return result;
}

std::vector<std::vector<int>> all_costas(int n) {
  std::vector<std::vector<int>> out;
  enumerate_costas(n, [&](std::span<const int> p) {
    out.emplace_back(p.begin(), p.end());
    return true;
  });
  return out;
}

}  // namespace cas::costas
