#include "costas/symmetry.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace cas::costas {

namespace {

// Work in 0-based mark coordinates: the grid holds marks (x, y) with
// y = perm[x] - 1. Each transform maps (x, y) -> (x', y'); the result is
// read back as a permutation (requires exactly one mark per column, which
// every D4 image of a permutation grid satisfies).
struct Point {
  int x, y;
};

Point map_point(Point pt, int n, Transform t) {
  const int m = n - 1;
  switch (t) {
    case Transform::kIdentity:      return {pt.x, pt.y};
    case Transform::kRot90:         return {pt.y, m - pt.x};          // CCW
    case Transform::kRot180:        return {m - pt.x, m - pt.y};
    case Transform::kRot270:        return {m - pt.y, pt.x};
    case Transform::kFlipX:         return {m - pt.x, pt.y};
    case Transform::kFlipY:         return {pt.x, m - pt.y};
    case Transform::kTranspose:     return {pt.y, pt.x};
    case Transform::kAntiTranspose: return {m - pt.y, m - pt.x};
  }
  throw std::logic_error("map_point: bad transform");
}

}  // namespace

std::vector<int> apply_transform(std::span<const int> perm, Transform t) {
  const int n = static_cast<int>(perm.size());
  std::vector<int> out(static_cast<size_t>(n), 0);
  for (int x = 0; x < n; ++x) {
    const Point q = map_point({x, perm[static_cast<size_t>(x)] - 1}, n, t);
    out[static_cast<size_t>(q.x)] = q.y + 1;
  }
  return out;
}

Transform compose(Transform first, Transform second) {
  // Determine the composition by its action on two non-collinear probe
  // points of a large virtual grid (n = 5 suffices to distinguish all 8).
  const int n = 5;
  for (Transform t : kAllTransforms) {
    bool match = true;
    for (Point probe : {Point{0, 0}, Point{1, 0}, Point{0, 2}}) {
      const Point via = map_point(map_point(probe, n, first), n, second);
      const Point direct = map_point(probe, n, t);
      if (via.x != direct.x || via.y != direct.y) {
        match = false;
        break;
      }
    }
    if (match) return t;
  }
  throw std::logic_error("compose: composition not in group (impossible)");
}

Transform inverse(Transform t) {
  for (Transform u : kAllTransforms) {
    if (compose(t, u) == Transform::kIdentity) return u;
  }
  throw std::logic_error("inverse: no inverse found (impossible)");
}

std::vector<std::vector<int>> orbit(std::span<const int> perm) {
  std::vector<std::vector<int>> out;
  out.reserve(8);
  for (Transform t : kAllTransforms) out.push_back(apply_transform(perm, t));
  return out;
}

std::vector<int> canonical_form(std::span<const int> perm) {
  auto images = orbit(perm);
  return *std::min_element(images.begin(), images.end());
}

size_t count_symmetry_classes(const std::vector<std::vector<int>>& arrays) {
  std::set<std::vector<int>> canon;
  for (const auto& a : arrays) canon.insert(canonical_form(a));
  return canon.size();
}

std::vector<Transform> stabilizer(std::span<const int> perm) {
  std::vector<Transform> out;
  const std::vector<int> self(perm.begin(), perm.end());
  for (Transform t : kAllTransforms) {
    if (apply_transform(perm, t) == self) out.push_back(t);
  }
  return out;
}

size_t orbit_size(std::span<const int> perm) { return 8 / stabilizer(perm).size(); }

bool is_transpose_symmetric(std::span<const int> perm) {
  return apply_transform(perm, Transform::kTranspose) ==
         std::vector<int>(perm.begin(), perm.end());
}

OrbitBreakdown orbit_breakdown(const std::vector<std::vector<int>>& arrays) {
  // One representative per orbit: the canonical form. Sizes come from the
  // representative's stabilizer (constant across the orbit).
  std::set<std::vector<int>> canon;
  for (const auto& a : arrays) canon.insert(canonical_form(a));
  OrbitBreakdown bd;
  for (const auto& rep : canon) ++bd.orbits_of_size[orbit_size(rep)];
  return bd;
}

}  // namespace cas::costas
