#include "costas/cp_solver.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/timer.hpp"

namespace cas::costas {

namespace {
constexpr uint64_t full_domain(int n) {
  return n == 64 ? ~uint64_t{0} : (uint64_t{1} << n) - 1;  // bit v-1 == value v allowed
}
}  // namespace

CpSolver::CpSolver(int n, CpOptions opts) : n_(n), opts_(opts) {
  if (n < 1 || n > 32) throw std::invalid_argument("CpSolver: n must be in [1, 32]");
  depth_ = opts_.use_chang ? (n - 1) / 2 : n - 1;
  assignment_.assign(static_cast<size_t>(n), 0);
  frames_.resize(static_cast<size_t>(n) + 1);
  for (auto& f : frames_) {
    f.domains.assign(static_cast<size_t>(n), full_domain(n));
    // Row diff masks: diff in [-(n-1), n-1] -> bit diff + n - 1.
    f.row_used.assign(static_cast<size_t>(depth_) + 1, 0);
  }
}

bool CpSolver::assign_and_propagate(Frame& frame, int pos, int value, CpStats& stats) const {
  // 0. alldifferent consistency. With forward checking the parent domain
  //    already excludes used values; plain chronological backtracking must
  //    check explicitly.
  if (!opts_.forward_check) {
    for (int q = 0; q < pos; ++q) {
      if (assignment_[static_cast<size_t>(q)] == value) return false;
    }
  }
  // 1. Difference-triangle constraints for the newly completed pairs
  //    (pos - d, pos): record each new difference; fail on a duplicate.
  for (int d = 1; d <= depth_ && d <= pos; ++d) {
    const int diff = value - assignment_[static_cast<size_t>(pos - d)];
    const uint64_t bit = uint64_t{1} << (diff + n_ - 1);
    if (frame.row_used[static_cast<size_t>(d)] & bit) return false;
    frame.row_used[static_cast<size_t>(d)] |= bit;
  }
  if (!opts_.forward_check) return true;

  // 2. alldifferent: remove `value` from every future domain.
  const uint64_t vbit = uint64_t{1} << (value - 1);
  for (int f = pos + 1; f < n_; ++f) {
    uint64_t& dom = frame.domains[static_cast<size_t>(f)];
    if (dom & vbit) {
      dom &= ~vbit;
      ++stats.prunings;
      if (dom == 0) return false;
    }
  }

  // 3. Forward-check the difference rows.
  auto prune = [&](int future, int forbidden_value) -> bool {
    if (forbidden_value < 1 || forbidden_value > n_) return true;
    uint64_t& dom = frame.domains[static_cast<size_t>(future)];
    const uint64_t fbit = uint64_t{1} << (forbidden_value - 1);
    if (dom & fbit) {
      dom &= ~fbit;
      ++stats.prunings;
      if (dom == 0) return false;
    }
    return true;
  };
  for (int d = 1; d <= depth_; ++d) {
    // (a) Each difference newly used by the pair (pos - d, pos) also
    //     forbids values in the pending pairs (q, q + d) with q <= pos
    //     already assigned and q + d still open.
    if (d <= pos) {
      const int diff = value - assignment_[static_cast<size_t>(pos - d)];
      for (int q = std::max(0, pos - d + 1); q <= pos; ++q) {
        const int f = q + d;
        if (f >= n_ || f <= pos) continue;
        const int base = q == pos ? value : assignment_[static_cast<size_t>(q)];
        if (!prune(f, base + diff)) return false;
      }
    }
    // (b) The pair (pos, pos + d) now has its left endpoint fixed: every
    //     difference already used in row d forbids one value there.
    const int f = pos + d;
    if (f < n_) {
      uint64_t used = frame.row_used[static_cast<size_t>(d)];
      while (used != 0) {
        const int bit_index = __builtin_ctzll(used);
        used &= used - 1;
        const int diff = bit_index - (n_ - 1);
        if (!prune(f, value + diff)) return false;
      }
    }
  }
  return true;
}

void CpSolver::search(int pos, CpStats& stats,
                      const std::function<bool(std::span<const int>)>& on_solution, bool& stop,
                      double deadline) {
  if (stop) return;
  if (pos == n_) {
    ++stats.solutions;
    if (!on_solution(std::span<const int>(assignment_.data(), assignment_.size())) ||
        (opts_.solution_limit != 0 && stats.solutions >= opts_.solution_limit)) {
      stats.status = CpStatus::kSolutionLimit;
      stop = true;
    }
    return;
  }
  const Frame& parent = frames_[static_cast<size_t>(pos)];
  uint64_t candidates = parent.domains[static_cast<size_t>(pos)];
  while (candidates != 0) {
    if (stop) return;
    if (opts_.node_limit != 0 && stats.nodes >= opts_.node_limit) {
      stats.status = CpStatus::kNodeLimit;
      stop = true;
      return;
    }
    if (deadline > 0 && (stats.nodes & 0xFFF) == 0 && timer_.seconds() > deadline) {
      stats.status = CpStatus::kTimeLimit;
      stop = true;
      return;
    }
    const int value = __builtin_ctzll(candidates) + 1;
    candidates &= candidates - 1;
    ++stats.nodes;

    Frame& child = frames_[static_cast<size_t>(pos) + 1];
    child = parent;  // copy-on-descend: trivially correct undo
    assignment_[static_cast<size_t>(pos)] = value;
    if (assign_and_propagate(child, pos, value, stats)) {
      search(pos + 1, stats, on_solution, stop, deadline);
    } else {
      ++stats.backtracks;
    }
  }
}

CpStats CpSolver::solve(const std::function<bool(std::span<const int>)>& on_solution) {
  CpStats stats;
  timer_.reset();
  bool stop = false;
  search(0, stats, on_solution, stop, opts_.time_limit_seconds);
  stats.wall_seconds = timer_.seconds();
  return stats;
}

std::optional<std::vector<int>> CpSolver::first_solution() {
  std::optional<std::vector<int>> out;
  opts_.solution_limit = 1;
  solve([&](std::span<const int> sol) {
    out.emplace(sol.begin(), sol.end());
    return false;
  });
  return out;
}

uint64_t CpSolver::count_solutions() {
  const auto stats = solve([](std::span<const int>) { return true; });
  return stats.solutions;
}

}  // namespace cas::costas
