#include "costas/database.hpp"

#include <array>
#include <stdexcept>

#include "costas/construction.hpp"
#include "util/strings.hpp"

namespace cas::costas {

namespace {

// Published enumeration totals C(n), n = 1..29. Sources: Drakakis, "A review
// of Costas arrays" (2006) for n <= 27; Drakakis-Iorio-Rickard (2011) for
// n = 28; Drakakis-Iorio-Rickard-Walsh (2011) for n = 29 (the paper's
// Sec. II quotes the n = 29 result: 164 arrays among 29! permutations).
constexpr std::array<int64_t, 30> kCounts = {
    0,  // index 0 unused
    1,     2,     4,     12,    40,    116,   200,   444,   760,   2160,
    4368,  7852,  12828, 17252, 19612, 21104, 18276, 15096, 10240, 6464,
    3536,  2052,  872,   200,   88,    56,    204,   712,   164,
};

// Equivalence classes under the dihedral group D4 ("unique up to rotation
// and reflection"), same sources. The paper quotes 23 for n = 29.
constexpr std::array<int64_t, 30> kClasses = {
    0,  // index 0 unused
    1,    1,    1,    2,    6,    17,   30,   60,   100,  277,
    555,  990,  1616, 2168, 2467, 2648, 2294, 1892, 1283, 810,
    446,  259,  114,  25,   12,   8,    29,   89,   23,
};

static_assert(kCounts.size() == static_cast<size_t>(kMaxEnumeratedOrder) + 1);
static_assert(kClasses.size() == static_cast<size_t>(kMaxEnumeratedOrder) + 1);

}  // namespace

std::optional<int64_t> known_costas_count(int n) {
  if (n < 1 || n > kMaxEnumeratedOrder) return std::nullopt;
  return kCounts[static_cast<size_t>(n)];
}

std::optional<int64_t> known_class_count(int n) {
  if (n < 1 || n > kMaxEnumeratedOrder) return std::nullopt;
  return kClasses[static_cast<size_t>(n)];
}

std::optional<double> known_density(int n) {
  const auto count = known_costas_count(n);
  if (!count) return std::nullopt;
  double fact = 1.0;
  for (int k = 2; k <= n; ++k) fact *= static_cast<double>(k);
  return static_cast<double>(*count) / fact;
}

int peak_count_order() {
  int best = 1;
  for (int n = 2; n <= kMaxEnumeratedOrder; ++n)
    if (kCounts[static_cast<size_t>(n)] > kCounts[static_cast<size_t>(best)]) best = n;
  return best;
}

ExistenceStatus existence_status(int n) {
  if (n < 1) throw std::invalid_argument("existence_status: order must be >= 1");
  if (n <= kMaxEnumeratedOrder) return ExistenceStatus::kEnumerated;
  if (construct_any(n)) return ExistenceStatus::kConstructible;
  return ExistenceStatus::kUnknown;
}

std::string describe_order(int n) {
  switch (existence_status(n)) {
    case ExistenceStatus::kEnumerated:
      return util::strf("order %d: fully enumerated, %lld arrays in %lld symmetry classes",
                        n, static_cast<long long>(*known_costas_count(n)),
                        static_cast<long long>(*known_class_count(n)));
    case ExistenceStatus::kConstructible: {
      const auto methods = available_constructions(n);
      std::string how = methods.empty() ? "algebraic construction" : methods.front();
      return util::strf("order %d: arrays exist (%s)", n, how.c_str());
    }
    case ExistenceStatus::kUnknown:
      return util::strf("order %d: no construction covered here; existence %s", n,
                        (n == 32 || n == 33) ? "is a famous open problem" : "unresolved by this library");
  }
  return {};
}

std::vector<int> unknown_orders_up_to(int limit) {
  std::vector<int> out;
  for (int n = 1; n <= limit; ++n)
    if (existence_status(n) == ExistenceStatus::kUnknown) out.push_back(n);
  return out;
}

}  // namespace cas::costas
