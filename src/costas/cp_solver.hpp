// Complete constraint-programming solver for the Costas Array Problem:
// depth-first search with forward-checking propagation over bitset domains.
//
// Why it exists: the paper (Sec. II, IV-C) argues CAP "is clearly too
// difficult for propagation-based solvers, even for medium size instances
// (n around 18-20)" and measures a CP model (Comet, from O'Sullivan's
// MiniZinc model) at ~400x slower than Adaptive Search on CAP19. This
// solver is the reproduction's stand-in for that comparator: a complete
// solver with the standard model (permutation variables, alldifferent, and
// the difference-triangle alldifferent rows), so bench_cp_vs_ls can measure
// the same complete-vs-local-search gap.
//
// It doubles as a second ground-truth enumerator: its solution counts must
// equal the bitmask backtracker's and the literature's (tested).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "util/timer.hpp"

namespace cas::costas {

struct CpOptions {
  // Check only rows d <= floor((n-1)/2) (Chang's remark; sound and
  // complete). Off = the naive full-triangle model.
  bool use_chang = true;
  // Forward checking: prune future domains after each assignment. Off =
  // chronological backtracking with consistency checks only (the weakest
  // complete method, for the ablation).
  bool forward_check = true;
  // Stop after this many search nodes (0 = unlimited).
  uint64_t node_limit = 0;
  // Stop after this many seconds (0 = unlimited).
  double time_limit_seconds = 0;
  // Stop after this many solutions (0 = all; 1 = first solution).
  uint64_t solution_limit = 0;
};

enum class CpStatus {
  kExhausted,      // search space fully explored
  kSolutionLimit,  // stopped at solution_limit
  kNodeLimit,
  kTimeLimit,
};

struct CpStats {
  uint64_t nodes = 0;        // assignments tried
  uint64_t backtracks = 0;   // failed assignments (dead ends)
  uint64_t prunings = 0;     // domain value removals by propagation
  uint64_t solutions = 0;
  double wall_seconds = 0;
  CpStatus status = CpStatus::kExhausted;
};

class CpSolver {
 public:
  explicit CpSolver(int n, CpOptions opts = {});

  /// Run the search, invoking `on_solution` for each Costas array found
  /// (in lexicographic order). Return aggregate statistics.
  CpStats solve(const std::function<bool(std::span<const int>)>& on_solution);

  /// First solution, if any (solution_limit forced to 1).
  std::optional<std::vector<int>> first_solution();

  /// Count all Costas arrays of the given order.
  uint64_t count_solutions();

 private:
  struct Frame {
    std::vector<uint64_t> domains;   // bitmask of allowed values per position
    std::vector<uint64_t> row_used;  // used difference bitmask per row d
  };

  bool assign_and_propagate(Frame& frame, int pos, int value, CpStats& stats) const;
  void search(int pos, CpStats& stats,
              const std::function<bool(std::span<const int>)>& on_solution, bool& stop,
              double deadline);

  int n_;
  int depth_;  // number of difference-triangle rows enforced
  CpOptions opts_;
  std::vector<int> assignment_;
  std::vector<Frame> frames_;  // one per search level (copy-on-descend)
  util::WallTimer timer_;
};

}  // namespace cas::costas
