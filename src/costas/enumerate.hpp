// Exhaustive backtracking enumeration of Costas arrays. Ground truth for
// the stochastic solvers and for the known-count tests (the paper's Sec. II
// discusses enumeration results up to n = 29).
//
// Column-by-column search with one 64-bit "seen differences" bitmask per
// difference-triangle row; practical up to n ~ 14 on a laptop.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

namespace cas::costas {

/// Invoke `fn` for every Costas array of order n (in lexicographic order of
/// the permutation). `fn` returns false to stop the enumeration early.
/// Supports n in [1, 32] (row bitmasks are 64-bit).
void enumerate_costas(int n, const std::function<bool(std::span<const int>)>& fn);

/// Number of Costas arrays of order n (full count, no symmetry reduction).
uint64_t count_costas(int n);

/// First Costas array in lexicographic order, if any exists.
std::optional<std::vector<int>> first_costas(int n);

/// All Costas arrays of order n (use only for small n; counts grow fast).
std::vector<std::vector<int>> all_costas(int n);

/// Known counts from the literature (OEIS A008404): kKnownCostasCounts[n]
/// for n = 0..29 (index 0 unused, set to 0).
inline constexpr uint64_t kKnownCostasCounts[30] = {
    0,     1,     2,     4,     12,    40,    116,   200,   444,   760,
    2160,  4368,  7852,  12828, 17252, 19612, 21104, 18276, 15096, 10240,
    6464,  3536,  2052,  872,   200,   88,    56,    204,   712,   164};

}  // namespace cas::costas
