// Algebraic Costas array constructions cited by the paper (Sec. II):
// the Welch construction [Golomb 1984] for orders p-1 (p prime) and the
// Lempel-Golomb construction for orders q-2 (q a prime power), plus the
// classical corner-removal corollaries. These provide certified Costas
// arrays of arbitrary constructible order for tests, examples, and seeding
// experiments — the paper notes such methods exist for most (not all)
// orders, which is exactly why the search problem is interesting.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace cas::costas {

/// Exponential Welch construction W1: for prime p and primitive root g,
/// A[i] = g^(i + shift) mod p for i = 0..p-2 is a Costas array of order
/// p - 1. `shift` in [0, p-2] gives the p-1 circular variants.
/// Throws std::invalid_argument if p is not prime or g not primitive.
std::vector<int> welch(uint64_t p, uint64_t g, int shift = 0);

/// welch() with the smallest primitive root.
std::vector<int> welch(uint64_t p);

/// Lempel-Golomb construction G2: for a prime power q and primitive
/// elements a, b of GF(q), the permutation A with a^i + b^A[i] = 1
/// (exponents 1..q-2) is a Costas array of order q - 2.
/// a == b gives the Lempel (L2) construction, which is symmetric.
std::vector<int> lempel_golomb(uint64_t q, uint32_t alpha, uint32_t beta);

/// lempel_golomb() choosing the field's reference generator for both
/// elements (Lempel construction).
std::vector<int> lempel(uint64_t q);

/// lempel_golomb() over the first pair of (possibly distinct) primitive
/// elements.
std::vector<int> golomb(uint64_t q);

/// Corner removal: if perm[0] == 1, dropping column 0 (and renumbering)
/// yields a Costas array of order n-1 (corollary G3/L3 when applied to
/// Golomb/Lempel arrays with alpha + beta = 1). Returns nullopt when the
/// corner mark is absent.
std::optional<std::vector<int>> remove_corner(const std::vector<int>& perm);

/// Corner addition (the inverse of remove_corner, in the spirit of Taylor's
/// corner constructions): prepend a mark at (0, 1), shifting every existing
/// value up by one. The result is order n+1 but is a Costas array only when
/// the new corner vectors avoid all existing ones, so it is verified and
/// nullopt is returned on failure.
std::optional<std::vector<int>> add_corner(const std::vector<int>& perm);

/// All p-1 circular shifts of the exponential Welch construction for
/// primitive root g: W1 arrays are singly periodic — every circular shift
/// of the exponent is again Costas (and this is essentially unique to the
/// Welch family).
std::vector<std::vector<int>> welch_all_shifts(uint64_t p, uint64_t g);

/// Welch W3: order p - 3 for primes p where 2 is a primitive root. The
/// g = 2, shift = 0 array begins [1, 2, ...], so two successive corner
/// removals apply. Throws if 2 is not primitive mod p.
std::vector<int> welch_minus_two(uint64_t p);

/// Golomb G4: order q - 4 for q = 2^m >= 8. In characteristic 2 a primitive
/// pair with alpha + beta = 1 satisfies alpha^2 + beta^2 = 1 as well, so the
/// G2 array begins [1, 2, ...] and two corner removals apply. Returns
/// nullopt if no primitive pair with alpha + beta = 1 exists (it always
/// does for the q covered here) or q is not a power of two.
std::optional<std::vector<int>> golomb_minus_two(uint64_t q);

/// One constructible Costas array of order n via any known construction,
/// if this library can build one (Welch, Lempel-Golomb, or corner
/// removals). Returns nullopt for orders with no covered construction
/// (e.g. n = 32, which is the paper's famous open case).
std::optional<std::vector<int>> construct_any(int n);

/// Human-readable list of which constructions cover order n (empty if none).
std::vector<std::string> available_constructions(int n);

/// Orders in [1, limit] for which construct_any succeeds.
std::vector<int> constructible_orders_up_to(int limit);

}  // namespace cas::costas
