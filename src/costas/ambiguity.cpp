#include "costas/ambiguity.hpp"

#include <algorithm>
#include <stdexcept>

#include "costas/checker.hpp"

namespace cas::costas {

AmbiguityMatrix::AmbiguityMatrix(int n) : n_(n) {
  if (n < 1) throw std::invalid_argument("AmbiguityMatrix: order must be >= 1");
  const size_t s = static_cast<size_t>(side());
  hits_.assign(s * s, 0);
}

size_t AmbiguityMatrix::index(int u, int v) const {
  if (u <= -n_ || u >= n_ || v <= -n_ || v >= n_)
    throw std::out_of_range("AmbiguityMatrix: (u, v) outside [-(n-1), n-1]");
  const size_t row = static_cast<size_t>(u + n_ - 1);
  const size_t col = static_cast<size_t>(v + n_ - 1);
  return row * static_cast<size_t>(side()) + col;
}

int AmbiguityMatrix::max_sidelobe() const {
  const size_t origin = index(0, 0);
  int best = 0;
  for (size_t k = 0; k < hits_.size(); ++k) {
    if (k == origin) continue;
    best = std::max(best, static_cast<int>(hits_[k]));
  }
  return best;
}

int AmbiguityMatrix::max_anywhere() const {
  int best = 0;
  for (int32_t h : hits_) best = std::max(best, static_cast<int>(h));
  return best;
}

int64_t AmbiguityMatrix::total_sidelobe_hits() const {
  const size_t origin = index(0, 0);
  int64_t total = 0;
  for (size_t k = 0; k < hits_.size(); ++k) {
    if (k == origin) continue;
    total += hits_[k];
  }
  return total;
}

std::vector<int64_t> AmbiguityMatrix::sidelobe_histogram() const {
  std::vector<int64_t> histo(static_cast<size_t>(max_sidelobe()) + 1, 0);
  const size_t origin = index(0, 0);
  for (size_t k = 0; k < hits_.size(); ++k) {
    if (k == origin) continue;
    ++histo[static_cast<size_t>(hits_[k])];
  }
  return histo;
}

int64_t AmbiguityMatrix::occupied_cells() const {
  const size_t origin = index(0, 0);
  int64_t occupied = 0;
  for (size_t k = 0; k < hits_.size(); ++k) {
    if (k == origin) continue;
    if (hits_[k] > 0) ++occupied;
  }
  return occupied;
}

namespace {

void require_permutation(std::span<const int> perm, const char* who) {
  if (perm.empty() || !is_permutation(perm))
    throw std::invalid_argument(std::string(who) + ": input is not a permutation of 1..n");
}

}  // namespace

AmbiguityMatrix auto_ambiguity(std::span<const int> perm) {
  require_permutation(perm, "auto_ambiguity");
  return cross_ambiguity(perm, perm);
}

AmbiguityMatrix cross_ambiguity(std::span<const int> a, std::span<const int> b) {
  require_permutation(a, "cross_ambiguity");
  require_permutation(b, "cross_ambiguity");
  if (a.size() != b.size())
    throw std::invalid_argument("cross_ambiguity: orders differ");
  const int n = static_cast<int>(a.size());
  AmbiguityMatrix m(n);
  for (int u = -(n - 1); u <= n - 1; ++u) {
    const int lo = std::max(0, -u);
    const int hi = std::min(n, n - u);  // i in [lo, hi)
    for (int i = lo; i < hi; ++i) {
      const int v = b[static_cast<size_t>(i + u)] - a[static_cast<size_t>(i)];
      m.increment(u, v);
    }
  }
  return m;
}

bool is_costas_by_ambiguity(std::span<const int> perm) {
  if (!is_permutation(perm)) return false;
  return auto_ambiguity(perm).max_sidelobe() <= 1;
}

SidelobeStats sidelobe_stats(const AmbiguityMatrix& m) {
  SidelobeStats st;
  st.max_sidelobe = m.max_sidelobe();
  st.occupied_cells = m.occupied_cells();
  st.total_hits = m.total_sidelobe_hits();
  st.mean_nonzero =
      st.occupied_cells == 0 ? 0.0
                             : static_cast<double>(st.total_hits) /
                                   static_cast<double>(st.occupied_cells);
  st.thumbtack_ratio = st.max_sidelobe == 0
                           ? static_cast<double>(m.order())
                           : static_cast<double>(m.order()) / st.max_sidelobe;
  return st;
}

std::string render_ambiguity(const AmbiguityMatrix& m) {
  const int n = m.order();
  std::string out;
  out.reserve(static_cast<size_t>(m.side()) * static_cast<size_t>(2 * m.side() + 1));
  for (int v = n - 1; v >= -(n - 1); --v) {
    for (int u = -(n - 1); u <= n - 1; ++u) {
      const int h = m.at(u, v);
      out += ' ';
      if (h == 0)
        out += '.';
      else if (h <= 9)
        out += static_cast<char>('0' + h);
      else
        out += '#';
    }
    out += '\n';
  }
  return out;
}

}  // namespace cas::costas
