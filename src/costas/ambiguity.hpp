// The discrete radar ambiguity function of permutation-coded frequency-hop
// waveforms — the application that motivated Costas arrays (Costas 1984,
// cited as [11] by the paper: "detection waveforms having nearly ideal
// range-doppler ambiguity properties"; see also Beard et al. [3]).
//
// A permutation A of {1..n} encodes a waveform hopping to frequency A[i]
// in time slot i. The discrete auto-ambiguity function counts time/frequency
// coincidences between the waveform and a copy shifted by u time slots and
// v frequency bins:
//
//   amb(u, v) = #{ i : A[i + u] - A[i] = v },   (u, v) != (0, 0).
//
// A is a Costas array *iff* every off-origin cell holds at most one hit —
// the ideal "thumbtack" shape: any mismatched (delay, Doppler) hypothesis
// lines up at most one pulse out of n. This module computes the full
// (2n-1) x (2n-1) hit matrix, the cross-ambiguity between two waveforms
// (multi-user radar), and the sidelobe metrics used by the examples and
// benches to contrast Costas arrays with naive waveforms.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace cas::costas {

/// Hit-count matrix over delay u in [-(n-1), n-1] and Doppler shift
/// v in [-(n-1), n-1]. Value semantics; cells addressed by signed (u, v).
class AmbiguityMatrix {
 public:
  /// Zero matrix for order n (n >= 1).
  explicit AmbiguityMatrix(int n);

  [[nodiscard]] int order() const { return n_; }
  /// Side length of the square matrix: 2n - 1.
  [[nodiscard]] int side() const { return 2 * n_ - 1; }

  /// Hit count at (delay u, Doppler v); both in [-(n-1), n-1].
  [[nodiscard]] int at(int u, int v) const { return hits_[index(u, v)]; }
  void increment(int u, int v) { ++hits_[index(u, v)]; }

  /// Largest count over all cells except the origin (0, 0).
  /// Equals <= 1 exactly when the underlying array is Costas.
  [[nodiscard]] int max_sidelobe() const;

  /// Largest count over *all* cells including the origin (used for
  /// cross-ambiguity, where the origin is not special).
  [[nodiscard]] int max_anywhere() const;

  /// Sum of all off-origin hit counts. For an auto-ambiguity matrix of a
  /// permutation this is always n(n-1): each ordered pair of distinct time
  /// slots lands exactly one hit somewhere.
  [[nodiscard]] int64_t total_sidelobe_hits() const;

  /// histogram[k] = number of off-origin cells holding exactly k hits,
  /// for k = 0 .. max_sidelobe().
  [[nodiscard]] std::vector<int64_t> sidelobe_histogram() const;

  /// Number of off-origin cells with at least one hit.
  [[nodiscard]] int64_t occupied_cells() const;

  /// Raw row-major storage (v varies fastest); for tests and plotting.
  [[nodiscard]] std::span<const int32_t> data() const { return hits_; }

 private:
  [[nodiscard]] size_t index(int u, int v) const;

  int n_;
  std::vector<int32_t> hits_;
};

/// Auto-ambiguity matrix of a permutation of {1..n} (validated; throws
/// std::invalid_argument otherwise). amb(0, 0) = n by construction.
AmbiguityMatrix auto_ambiguity(std::span<const int> perm);

/// Cross-ambiguity between two same-order permutations:
/// amb(u, v) = #{ i : b[i + u] - a[i] = v }. Used to assess mutual
/// interference of two hop patterns sharing a band.
AmbiguityMatrix cross_ambiguity(std::span<const int> a, std::span<const int> b);

/// Costas test via the ambiguity characterization (max sidelobe <= 1).
/// Agrees with checker.hpp's is_costas on every permutation; kept separate
/// because it exercises an independent definition (used in cross-checks).
bool is_costas_by_ambiguity(std::span<const int> perm);

/// Summary statistics of a waveform's ambiguity behaviour.
struct SidelobeStats {
  int max_sidelobe = 0;         // worst off-origin coincidence count
  double mean_nonzero = 0.0;    // mean count over occupied off-origin cells
  int64_t occupied_cells = 0;   // off-origin cells with >= 1 hit
  int64_t total_hits = 0;       // always n(n-1) for auto-ambiguity
  double thumbtack_ratio = 0.0; // mainlobe / max sidelobe = n / max_sidelobe
};

SidelobeStats sidelobe_stats(const AmbiguityMatrix& m);

/// Render the hit matrix as ASCII (origin at the center, '.' for empty,
/// digits for counts, '#' for counts > 9). Rows are Doppler bins from
/// +(n-1) down to -(n-1); columns are delays left to right.
std::string render_ambiguity(const AmbiguityMatrix& m);

}  // namespace cas::costas
