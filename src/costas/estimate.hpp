// Knuth's Monte-Carlo tree-size estimator applied to counting Costas
// arrays — the tool for studying the paper's motivating phenomenon (the
// collapse of solution density, Sec. II) at orders where exhaustive
// enumeration is no longer affordable.
//
// One probe walks the backtracking tree from the root, at each level
// listing the feasible next values, picking one uniformly, and multiplying
// the running weight by the branch count; a probe that reaches depth n
// contributes its weight, a probe that dies contributes 0. Knuth (1975):
// the probe weight is an unbiased estimator of the number of leaves, i.e.
// of C(n). Averaging many probes gives the estimate plus a standard error.
//
// Variance grows with tree imbalance, so confidence intervals widen with
// n; the probe hit rate (probability of reaching depth n) also collapses —
// from ~7% at n = 8 to ~2e-5 at n = 16 — which bounds the estimator's
// practical reach at n <= ~16 with a few hundred thousand probes. (That is
// still well past where full enumeration stops being interactive, and the
// hit-rate collapse is itself a quantitative view of the paper's Sec. II
// density story.) The tests validate unbiasedness against the exact counts
// on enumerable orders.
#pragma once

#include <cstdint>

#include "core/rng.hpp"

namespace cas::costas {

struct CountEstimate {
  double mean = 0;         // estimated C(n)
  double std_error = 0;    // standard error of the mean
  double hit_rate = 0;     // fraction of probes reaching a full solution
  uint64_t probes = 0;

  /// Normal-approximation confidence bounds (clamped at 0).
  [[nodiscard]] double lower(double z = 1.96) const;
  [[nodiscard]] double upper(double z = 1.96) const;
};

/// Estimate the number of Costas arrays of order n with `probes` Knuth
/// probes. Deterministic for fixed (n, probes, seed). Throws for n < 1 or
/// n > 32 (the row-mask width) or probes < 1.
CountEstimate estimate_costas_count(int n, uint64_t probes, uint64_t seed = 1975);

/// Estimated solution density C(n)/n! from an estimate.
double estimated_density(int n, const CountEstimate& est);

}  // namespace cas::costas
