#include "costas/estimate.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace cas::costas {

double CountEstimate::lower(double z) const { return std::max(0.0, mean - z * std_error); }
double CountEstimate::upper(double z) const { return mean + z * std_error; }

namespace {

/// One probe: walk the Costas backtracking tree choosing a uniformly
/// random feasible child at each level. Returns the Knuth weight (product
/// of branch counts) if a leaf at depth n is reached, 0 otherwise.
/// State mirrors the exact enumerator: per-row difference bitmasks.
double probe(int n, core::Rng& rng, std::vector<int>& perm, std::vector<uint64_t>& rows,
             std::vector<bool>& used, std::vector<int>& feasible) {
  std::fill(rows.begin(), rows.end(), 0);
  std::fill(used.begin(), used.end(), false);
  double weight = 1;

  for (int level = 0; level < n; ++level) {
    feasible.clear();
    for (int v = 1; v <= n; ++v) {
      if (used[static_cast<size_t>(v)]) continue;
      bool ok = true;
      for (int d = 1; d <= level; ++d) {
        const int diff = v - perm[static_cast<size_t>(level - d)];
        if (rows[static_cast<size_t>(d)] & (1ull << (diff + n - 1))) {
          ok = false;
          break;
        }
      }
      if (ok) feasible.push_back(v);
    }
    if (feasible.empty()) return 0;  // dead probe

    weight *= static_cast<double>(feasible.size());
    const int v = feasible[rng.below(feasible.size())];
    for (int d = 1; d <= level; ++d) {
      const int diff = v - perm[static_cast<size_t>(level - d)];
      rows[static_cast<size_t>(d)] |= 1ull << (diff + n - 1);
    }
    perm[static_cast<size_t>(level)] = v;
    used[static_cast<size_t>(v)] = true;
  }
  return weight;
}

}  // namespace

CountEstimate estimate_costas_count(int n, uint64_t probes, uint64_t seed) {
  if (n < 1 || n > 32)
    throw std::invalid_argument("estimate_costas_count: n must be in [1, 32]");
  if (probes < 1) throw std::invalid_argument("estimate_costas_count: need >= 1 probe");

  core::Rng rng(seed);
  std::vector<int> perm(static_cast<size_t>(n));
  std::vector<uint64_t> rows(static_cast<size_t>(n), 0);
  std::vector<bool> used(static_cast<size_t>(n) + 1, false);
  std::vector<int> feasible;
  feasible.reserve(static_cast<size_t>(n));

  // Welford accumulation: probe weights span many orders of magnitude, so
  // a numerically stable running mean/variance matters.
  double mean = 0, m2 = 0;
  uint64_t hits = 0;
  for (uint64_t k = 1; k <= probes; ++k) {
    const double w = probe(n, rng, perm, rows, used, feasible);
    if (w > 0) ++hits;
    const double delta = w - mean;
    mean += delta / static_cast<double>(k);
    m2 += delta * (w - mean);
  }

  CountEstimate est;
  est.mean = mean;
  est.probes = probes;
  est.hit_rate = static_cast<double>(hits) / static_cast<double>(probes);
  if (probes > 1) {
    const double var = m2 / static_cast<double>(probes - 1);
    est.std_error = std::sqrt(var / static_cast<double>(probes));
  }
  return est;
}

double estimated_density(int n, const CountEstimate& est) {
  double fact = 1;
  for (int k = 2; k <= n; ++k) fact *= static_cast<double>(k);
  return est.mean / fact;
}

}  // namespace cas::costas
