// The dihedral symmetry group of the square acting on Costas arrays.
// Rotating or reflecting the n x n grid of a Costas array yields another
// Costas array, so the set of arrays of order n splits into orbits of size
// dividing 8 — the paper's Sec. II quotes 164 arrays / 23 classes for
// n = 29.
#pragma once

#include <array>
#include <span>
#include <vector>

namespace cas::costas {

/// The 8 elements of the dihedral group D4, as grid transforms.
enum class Transform {
  kIdentity,
  kRot90,      // 90 degrees counter-clockwise
  kRot180,
  kRot270,
  kFlipX,      // mirror columns (left-right)
  kFlipY,      // mirror rows (up-down)
  kTranspose,  // main diagonal: the inverse permutation
  kAntiTranspose,
};

inline constexpr std::array<Transform, 8> kAllTransforms = {
    Transform::kIdentity, Transform::kRot90,  Transform::kRot180,
    Transform::kRot270,   Transform::kFlipX,  Transform::kFlipY,
    Transform::kTranspose, Transform::kAntiTranspose};

/// Apply a grid transform to a permutation (mark at (col i, row perm[i]),
/// both 1-based in value, 0-based in index).
std::vector<int> apply_transform(std::span<const int> perm, Transform t);

/// Compose: apply `second` after `first`.
Transform compose(Transform first, Transform second);

/// Group inverse.
Transform inverse(Transform t);

/// All 8 images of `perm` (with duplicates when the array is symmetric).
std::vector<std::vector<int>> orbit(std::span<const int> perm);

/// Lexicographically smallest element of the orbit; equal for two arrays
/// iff they are in the same symmetry class.
std::vector<int> canonical_form(std::span<const int> perm);

/// Number of symmetry classes among the given arrays (e.g. the full
/// enumeration of some order).
size_t count_symmetry_classes(const std::vector<std::vector<int>>& arrays);

/// The transforms that map `perm` to itself (always contains kIdentity);
/// a subgroup of D4, so its size divides 8.
std::vector<Transform> stabilizer(std::span<const int> perm);

/// Size of the orbit of `perm` under D4: 8 / |stabilizer| (1, 2, 4 or 8).
size_t orbit_size(std::span<const int> perm);

/// Fixed by the main-diagonal transpose, i.e. the permutation is its own
/// inverse. Lempel arrays (the alpha = beta Lempel-Golomb construction)
/// have this property by construction.
bool is_transpose_symmetric(std::span<const int> perm);

/// Histogram of orbit sizes over a set of arrays: breakdown[s] = number of
/// *orbits* of size s (s in {1, 2, 4, 8}). Invariants: sum over s of
/// s * breakdown[s] == arrays in the set (when the set is closed under the
/// group action), and the sum of breakdown values equals
/// count_symmetry_classes.
struct OrbitBreakdown {
  size_t orbits_of_size[9] = {};  // indexed by orbit size; only 1,2,4,8 used

  [[nodiscard]] size_t total_orbits() const {
    return orbits_of_size[1] + orbits_of_size[2] + orbits_of_size[4] + orbits_of_size[8];
  }
  [[nodiscard]] size_t total_arrays() const {
    return orbits_of_size[1] + 2 * orbits_of_size[2] + 4 * orbits_of_size[4] +
           8 * orbits_of_size[8];
  }
};

OrbitBreakdown orbit_breakdown(const std::vector<std::vector<int>>& arrays);

}  // namespace cas::costas
