#include "costas/construction.hpp"

#include <stdexcept>

#include "algebra/gf.hpp"
#include "algebra/modular.hpp"
#include "algebra/primes.hpp"
#include "costas/checker.hpp"
#include "costas/enumerate.hpp"
#include "costas/symmetry.hpp"
#include "util/strings.hpp"

namespace cas::costas {

using algebra::Gf;

std::vector<int> welch(uint64_t p, uint64_t g, int shift) {
  if (!algebra::is_prime(p) || p < 3)
    throw std::invalid_argument("welch: p must be an odd prime");
  if (algebra::element_order_mod_p(g, p) != p - 1)
    throw std::invalid_argument("welch: g is not a primitive root mod p");
  const int n = static_cast<int>(p - 1);
  if (shift < 0 || shift >= n) throw std::invalid_argument("welch: shift out of range");
  std::vector<int> perm(static_cast<size_t>(n));
  uint64_t v = algebra::powmod(g, static_cast<uint64_t>(shift), p);
  for (int i = 0; i < n; ++i) {
    perm[static_cast<size_t>(i)] = static_cast<int>(v);
    v = algebra::mulmod(v, g, p);
  }
  return perm;
}

std::vector<int> welch(uint64_t p) { return welch(p, algebra::primitive_root(p), 0); }

std::vector<int> lempel_golomb(uint64_t q, uint32_t alpha, uint32_t beta) {
  if (q < 4)
    throw std::invalid_argument("lempel_golomb: q must be a prime power >= 4");
  const Gf field(q);
  if (!field.is_primitive(alpha) || !field.is_primitive(beta))
    throw std::invalid_argument("lempel_golomb: elements must be primitive");
  const int n = static_cast<int>(q - 2);
  // Discrete logs base beta from logs base the field generator:
  // log_beta(y) = log_g(y) * log_g(beta)^-1 mod (q-1).
  const uint64_t lb_inv = algebra::invmod(field.log(beta), q - 1);
  std::vector<int> perm(static_cast<size_t>(n), 0);
  for (int i = 1; i <= n; ++i) {
    const uint32_t ai = field.pow(alpha, static_cast<uint64_t>(i));
    const uint32_t y = field.sub(field.one(), ai);  // 1 - alpha^i, never 0 for i in 1..q-2
    const uint64_t j = algebra::mulmod(field.log(y), lb_inv, q - 1);
    perm[static_cast<size_t>(i - 1)] = static_cast<int>(j);
  }
  return perm;
}

std::vector<int> lempel(uint64_t q) {
  const Gf field(q);
  const uint32_t g = field.generator();
  return lempel_golomb(q, g, g);
}

std::vector<int> golomb(uint64_t q) {
  const Gf field(q);
  const auto prim = field.primitive_elements();
  const uint32_t alpha = prim.front();
  const uint32_t beta = prim.size() > 1 ? prim[1] : prim.front();
  return lempel_golomb(q, alpha, beta);
}

std::optional<std::vector<int>> remove_corner(const std::vector<int>& perm) {
  if (perm.empty() || perm.front() != 1) return std::nullopt;
  std::vector<int> out;
  out.reserve(perm.size() - 1);
  for (size_t i = 1; i < perm.size(); ++i) out.push_back(perm[i] - 1);
  return out;
}

std::optional<std::vector<int>> add_corner(const std::vector<int>& perm) {
  std::vector<int> out;
  out.reserve(perm.size() + 1);
  out.push_back(1);
  for (int v : perm) out.push_back(v + 1);
  if (!is_costas(out)) return std::nullopt;
  return out;
}

std::vector<std::vector<int>> welch_all_shifts(uint64_t p, uint64_t g) {
  const int n = static_cast<int>(p - 1);
  std::vector<std::vector<int>> out;
  out.reserve(static_cast<size_t>(n));
  for (int s = 0; s < n; ++s) out.push_back(welch(p, g, s));
  return out;
}

std::vector<int> welch_minus_two(uint64_t p) {
  if (algebra::element_order_mod_p(2, p) != p - 1)
    throw std::invalid_argument("welch_minus_two: 2 is not a primitive root mod p");
  // g = 2, shift = 0: A = [1, 2, 4, ...]. First removal leaves [1, 3, ...],
  // so a second removal applies.
  auto a = welch(p, 2, 0);
  auto b = remove_corner(a);
  if (!b) throw std::logic_error("welch_minus_two: first corner missing (impossible)");
  auto c = remove_corner(*b);
  if (!c) throw std::logic_error("welch_minus_two: second corner missing (impossible)");
  return *c;
}


namespace {

/// Try to remove any of the four corner marks by first mapping it to the
/// bottom-left via a symmetry transform (symmetries preserve the Costas
/// property, so the result is a genuine Costas array of order n-1).
std::optional<std::vector<int>> remove_any_corner(const std::vector<int>& perm) {
  for (Transform t : kAllTransforms) {
    auto image = apply_transform(perm, t);
    if (auto r = remove_corner(image)) return r;
  }
  return std::nullopt;
}

/// Golomb pair with alpha + beta = 1 (both primitive): gives A[0] == 1, so
/// a corner removal yields order q-3 (the G3 corollary).
std::optional<std::vector<int>> golomb_alpha_plus_beta_one(uint64_t q) {
  const Gf field(q);
  for (uint32_t alpha = 2; alpha < q; ++alpha) {
    if (!field.is_primitive(alpha)) continue;
    const uint32_t beta = field.sub(field.one(), alpha);
    if (beta != 0 && field.is_primitive(beta)) return lempel_golomb(q, alpha, beta);
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::vector<int>> golomb_minus_two(uint64_t q) {
  // Characteristic 2 only: (alpha + beta)^2 = alpha^2 + beta^2 there.
  if (q < 8 || (q & (q - 1)) != 0) return std::nullopt;
  auto g = golomb_alpha_plus_beta_one(q);
  if (!g) return std::nullopt;
  // alpha + beta = 1 gives A[1] = 1; squaring gives A[2] = 2: the array
  // begins [1, 2, ...] and two corner removals apply.
  auto b = remove_corner(*g);
  if (!b || b->front() != 1) return std::nullopt;
  return remove_corner(*b);
}

std::optional<std::vector<int>> construct_any(int n) {
  if (n < 1) return std::nullopt;
  if (n <= 9) return first_costas(n);  // exhaustive search is instant here
  const uint64_t un = static_cast<uint64_t>(n);
  // Welch: order p - 1.
  if (algebra::is_prime(un + 1)) return welch(un + 1);
  // Lempel-Golomb: order q - 2.
  if (algebra::as_prime_power(un + 2)) return golomb(un + 2);
  // Welch corner removal: order p - 2 (shift 0 puts the mark g^0 = 1 first).
  if (algebra::is_prime(un + 2)) {
    if (auto r = remove_corner(welch(un + 2))) return r;
  }
  // Golomb G3 corner removal: order q - 3.
  if (algebra::as_prime_power(un + 3)) {
    if (auto g = golomb_alpha_plus_beta_one(un + 3)) {
      if (auto r = remove_any_corner(*g)) return r;
    }
  }
  // Welch W3 double corner removal: order p - 3 when 2 is primitive mod p.
  if (algebra::is_prime(un + 3) &&
      algebra::element_order_mod_p(2, un + 3) == un + 2) {
    return welch_minus_two(un + 3);
  }
  // Golomb G4 double corner removal: order q - 4 for q = 2^m.
  if (algebra::as_prime_power(un + 4)) {
    if (auto r = golomb_minus_two(un + 4)) return r;
  }
  return std::nullopt;
}

std::vector<std::string> available_constructions(int n) {
  std::vector<std::string> out;
  if (n < 1) return out;
  const uint64_t un = static_cast<uint64_t>(n);
  if (n <= 9) out.push_back("exhaustive enumeration");
  if (algebra::is_prime(un + 1)) out.push_back(util::strf("Welch W1 (p = %d)", n + 1));
  if (algebra::as_prime_power(un + 2))
    out.push_back(util::strf("Lempel-Golomb G2/L2 (q = %d)", n + 2));
  if (algebra::is_prime(un + 2))
    out.push_back(util::strf("Welch W1 + corner removal (p = %d)", n + 2));
  if (algebra::as_prime_power(un + 3))
    out.push_back(util::strf("Golomb G3 corner removal (q = %d), if a primitive pair with "
                             "alpha+beta=1 exists",
                             n + 3));
  if (algebra::is_prime(un + 3) && algebra::element_order_mod_p(2, un + 3) == un + 2)
    out.push_back(util::strf("Welch W3 double corner removal (p = %d, 2 primitive)", n + 3));
  if (un + 4 >= 8 && ((un + 4) & (un + 3)) == 0)
    out.push_back(util::strf("Golomb G4 double corner removal (q = %d = 2^m)", n + 4));
  return out;
}

std::vector<int> constructible_orders_up_to(int limit) {
  std::vector<int> out;
  for (int n = 1; n <= limit; ++n)
    if (construct_any(n)) out.push_back(n);
  return out;
}

}  // namespace cas::costas
