// The Costas Array Problem modeled for Adaptive Search — the paper's
// Sec. IV with all three published optimizations:
//
//   * error weight ERR(d) = n^2 - d^2 penalizing collisions in the long
//     (small-d) rows of the difference triangle (Sec. IV-B, ~17% faster
//     than ERR(d) = 1),
//   * Chang's remark: only rows d <= floor((n-1)/2) need checking
//     (Sec. IV-B, ~30% faster) — a collision in a longer-distance row
//     always implies one in a shorter-distance row,
//   * the custom reset procedure with three perturbation families
//     (Sec. IV-B, ~3.7x speedup over the generic percentage reset).
//
// Incremental evaluation: per difference-triangle row d we keep occurrence
// counts occ[d][diff]. A swap of two positions touches at most 4*D triangle
// cells (D = number of checked rows), so delta_cost/apply_swap are O(D):
//
//   * delta_cost(i, j) is PURE — it walks the affected triangle cells of
//     both the old and the new permutation against the live occ[] counters
//     plus a small scratch ledger for intra-move interactions, without
//     touching any state (no do/undo),
//   * apply_swap additionally maintains the per-variable error table errs_
//     in place: each occ[] bucket also tracks the sum of the start indices
//     of the pairs it holds, so when a bucket crosses the collision
//     threshold (count 1 <-> 2) the formerly/newly lone pair is recovered
//     in O(1) and its endpoints' errors adjusted. errors() is therefore
//     always fresh at zero per-iteration cost for the engines.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/config.hpp"
#include "core/problem.hpp"
#include "core/rng.hpp"

namespace cas::costas {

using core::Cost;

enum class ErrFunction {
  kUnit,       // ERR(d) = 1 (the paper's "basic model")
  kQuadratic,  // ERR(d) = n^2 - d^2 (the paper's tuned model)
};

struct CostasOptions {
  ErrFunction err = ErrFunction::kQuadratic;
  bool use_chang = true;  // check only rows d <= floor((n-1)/2)
};

class CostasProblem {
 public:
  explicit CostasProblem(int n, CostasOptions opts = {});

  // --- LocalSearchProblem interface ---
  [[nodiscard]] int size() const { return n_; }
  [[nodiscard]] Cost cost() const { return cost_; }
  [[nodiscard]] int value(int i) const { return perm_[static_cast<size_t>(i)]; }
  void randomize(core::Rng& rng);
  [[nodiscard]] Cost delta_cost(int i, int j) const;
  /// Batched move evaluation: out[j] = delta_cost(i, j) for every j != i
  /// (out[i] = core::kExcludedDelta), walking each difference-triangle row
  /// ONCE and filling all j lanes of it — vectorized (AVX2 gathers over
  /// the occ rows) when a SIMD backend is active, an amortized scalar
  /// batch otherwise. Exactly equal to n - 1 scalar delta_cost calls; the
  /// parity fuzz suite pins that lane by lane.
  void delta_costs_row(int i, std::span<Cost> out) const;
  [[nodiscard]] Cost cost_if_swap(int i, int j) const { return cost_ + delta_cost(i, j); }
  void apply_swap(int i, int j);
  [[nodiscard]] std::span<const Cost> errors() const { return {errs_.data(), errs_.size()}; }
  void compute_errors(std::span<Cost> errs) const;

  /// Batched candidate evaluation (the HasBatchEval member): score every
  /// candidate permutation in `batch` in fixed 8-lane chunks that walk each
  /// difference-triangle row once for all lanes (vectorized under an active
  /// SIMD backend, bit-identical scalar batch otherwise), sharing one
  /// best-so-far bound across candidates for pruning. out[c] follows the
  /// core::HasBatchEval contract: exact for every candidate that could
  /// still win, a partial sum >= the tightest bound for pruned ones.
  void evaluate_batch(const core::CandidateBatch& batch, Cost bound,
                      std::span<Cost> out) const;

  /// The paper's dedicated reset (Sec. IV-B). Tries, in order:
  ///  1. circular shifts (left and right) of every sub-array starting or
  ///     ending at the most erroneous variable,
  ///  2. adding a constant in {1, 2, n-2, n-3} to all values, modulo n,
  ///  3. left-shifting the prefix that ends at a randomly chosen erroneous
  ///     variable (up to 3 candidates).
  /// Accepts the first perturbation that strictly improves on the entry
  /// cost (returns true: "escaped"); otherwise evaluates all and adopts the
  /// best one (returns false). The candidate families are generated
  /// straight into a reusable CandidateBatch (no per-candidate vector
  /// copies) and scored through evaluate_batch in one pass — same
  /// first-found / strict-improvement semantics as the historical serial
  /// loop, bit-identical trajectories, allocation-free after warmup.
  bool custom_reset(core::Rng& rng);

  // --- model introspection / utilities ---
  [[nodiscard]] const std::vector<int>& permutation() const { return perm_; }
  void set_permutation(std::span<const int> perm);  // validates; rebuilds state
  [[nodiscard]] int checked_rows() const { return depth_; }
  [[nodiscard]] const CostasOptions& options() const { return opts_; }

  /// Stateless cost of an arbitrary permutation under these options.
  [[nodiscard]] Cost evaluate(std::span<const int> perm) const;

  /// Stateless evaluation with early abort once the partial cost reaches
  /// `bound` (row contributions are non-negative, so the total only
  /// grows). The serial reference the batched reset pipeline is measured
  /// and fuzzed against.
  [[nodiscard]] Cost evaluate_bounded(std::span<const int> perm, Cost bound) const;

  /// Worst-case number of candidate configurations one custom reset can
  /// examine (used by tests and the reset ablation bench).
  [[nodiscard]] int reset_candidate_count() const;

  /// Append the deterministic reset candidate families for anchor variable
  /// m to `batch` (family 1: sub-array rotations anchored at m; family 2:
  /// modular constant shifts) — the exact set custom_reset scores before
  /// its RNG-dependent family 3. Shared with the reset micro bench so the
  /// measured candidate shape can never drift from the real one.
  void append_reset_families_1_2(int m, core::CandidateBatch& batch) const;

  /// Candidates the LAST custom_reset actually evaluated — smaller than
  /// reset_candidate_count() when the batched walk stopped at an escaping
  /// chunk or tiny-n degeneracies dropped family members. Feeds the
  /// engines' reset_candidates stat.
  [[nodiscard]] int reset_candidates_evaluated() const { return reset_evaluated_; }

  /// Kernel chunks the LAST custom_reset aborted early because every lane
  /// had reached the shared best-so-far bound — how much dead work the
  /// batched walk pruned. ISA-independent; feeds the engines'
  /// reset_escape_chunks stat (and, via the report, the cost model's
  /// future per-instance diversification pricing).
  [[nodiscard]] int reset_chunks_escaped() const { return reset_escaped_chunks_; }

 private:
  void rebuild();
  void append_rotated_candidate(core::CandidateBatch& batch, int lo, int hi, bool left) const;

  [[nodiscard]] size_t bucket(int d, int diff) const {
    // diff in [-(n-1), n-1] -> [0, 2n-2]
    return static_cast<size_t>(d - 1) * stride_ + static_cast<size_t>(diff + n_ - 1);
  }

  // add_pair/remove_pair maintain cost_ AND the per-variable error table
  // errs_ (a pair contributes errw_[d] to both endpoints iff its bucket
  // holds >= 2 pairs). pair_start_sum_[bucket] tracks the sum of the start
  // indices of the pairs in the bucket, so when a removal leaves exactly
  // one pair (or an addition joins exactly one), that lone pair's start is
  // recovered in O(1) and its endpoints' errors adjusted.
  void add_pair(int a, int b) {  // pair (a, b) under the current perm_
    const int d = b - a;
    const size_t bk = bucket(d, perm_[static_cast<size_t>(b)] - perm_[static_cast<size_t>(a)]);
    int32_t& c = occ_[bk];
    if (c >= 1) {
      const Cost w = errw_[static_cast<size_t>(d)];
      cost_ += w;
      errs_[static_cast<size_t>(a)] += w;
      errs_[static_cast<size_t>(b)] += w;
      if (c == 1) {  // the formerly lone pair starts colliding too
        const int s = pair_start_sum_[bk];
        errs_[static_cast<size_t>(s)] += w;
        errs_[static_cast<size_t>(s + d)] += w;
      }
    }
    ++c;
    pair_start_sum_[bk] += a;
  }
  void remove_pair(int a, int b) {
    const int d = b - a;
    const size_t bk = bucket(d, perm_[static_cast<size_t>(b)] - perm_[static_cast<size_t>(a)]);
    int32_t& c = occ_[bk];
    --c;
    pair_start_sum_[bk] -= a;
    if (c >= 1) {
      const Cost w = errw_[static_cast<size_t>(d)];
      cost_ -= w;
      errs_[static_cast<size_t>(a)] -= w;
      errs_[static_cast<size_t>(b)] -= w;
      if (c == 1) {  // the now-lone survivor stops colliding
        const int s = pair_start_sum_[bk];
        errs_[static_cast<size_t>(s)] -= w;
        errs_[static_cast<size_t>(s + d)] -= w;
      }
    }
  }

  /// Invoke fn(a, b) for every checked triangle pair (a, b), b - a <= depth,
  /// that has an endpoint in {i, j}; each affected pair exactly once.
  template <typename Fn>
  void for_each_affected_pair(int i, int j, Fn&& fn) const {
    if (i > j) std::swap(i, j);
    for (int d = 1; d <= depth_; ++d) {
      if (i - d >= 0) fn(i - d, i);
      if (i + d < n_) fn(i, i + d);
      if (j - d >= 0 && j - d != i) fn(j - d, j);
      if (j + d < n_) fn(j, j + d);
    }
  }

  int n_;
  CostasOptions opts_;
  int depth_;      // number of difference-triangle rows checked
  size_t stride_;  // 2n-1 diff slots per row
  std::vector<int> perm_;
  std::vector<int32_t> occ_;
  std::vector<int32_t> pair_start_sum_;  // per bucket: sum of pair start indices
  std::vector<Cost> errw_;  // errw_[d], d = 1..depth (index 0 unused)
  std::vector<Cost> errs_;  // per-variable errors, maintained by add/remove_pair
  Cost cost_ = 0;

  // custom_reset scratch (reused to keep resets allocation-free after
  // warmup): the SoA candidate buffer, its per-candidate cost row, and the
  // erroneous-position list for family 3.
  core::CandidateBatch reset_batch_;
  std::vector<Cost> reset_costs_;
  std::vector<int> scratch_;
  int reset_evaluated_ = 0;
  int reset_escaped_chunks_ = 0;
};

/// Engine configuration tuned for CAP (paper Sec. IV-B: RL=1, RP=5%,
/// custom reset on).
core::AsConfig recommended_config(int n, uint64_t seed = 42);

}  // namespace cas::costas
