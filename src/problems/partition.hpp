// Number partitioning (CSPLib prob049) — the "partit" benchmark of Diaz's
// reference Adaptive Search library: split {1, ..., N} into two groups of
// N/2 numbers such that both groups have the same sum AND the same sum of
// squares. Nontrivial solutions exist for N = 8, 12, 16, ... (N must be a
// multiple of 4, and N = 4 itself is infeasible).
//
// Permutation model (exactly the reference library's): a permutation of
// {1..N} whose first half is group A. The cost combines the absolute
// deviations of group A's sum and sum of squares from their targets; a
// swap across the halves changes both in O(1).
#pragma once

#include <algorithm>
#include <cstdlib>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/problem.hpp"

namespace cas::problems {

using core::Cost;

class PartitionProblem {
 public:
  explicit PartitionProblem(int n) : n_(n) {
    if (n < 4 || n % 4 != 0)
      throw std::invalid_argument("PartitionProblem: n must be a positive multiple of 4");
    const int64_t total = static_cast<int64_t>(n) * (n + 1) / 2;
    const int64_t total_sq = static_cast<int64_t>(n) * (n + 1) * (2 * n + 1) / 6;
    target_sum_ = total / 2;
    target_sq_ = total_sq / 2;
    if (total % 2 != 0 || total_sq % 2 != 0)
      throw std::invalid_argument("PartitionProblem: totals not even (infeasible n)");
    perm_.resize(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) perm_[static_cast<size_t>(i)] = i + 1;
    rebuild();
  }

  [[nodiscard]] int size() const { return n_; }
  [[nodiscard]] Cost cost() const { return cost_; }
  [[nodiscard]] int value(int i) const { return perm_[static_cast<size_t>(i)]; }

  void randomize(core::Rng& rng) {
    rng.shuffle(perm_);
    rebuild();
  }

  /// Pure swap delta: a cross-half swap shifts group A's sum and sum of
  /// squares by a closed-form amount; same-half swaps are free. O(1).
  [[nodiscard]] Cost delta_cost(int i, int j) const {
    const auto [ds, dq] = swap_delta(i, j);
    return cost_of(sum_a_ + ds, sq_a_ + dq) - cost_;
  }

  [[nodiscard]] Cost cost_if_swap(int i, int j) const { return cost_ + delta_cost(i, j); }

  void apply_swap(int i, int j) {
    const auto [ds, dq] = swap_delta(i, j);
    std::swap(perm_[static_cast<size_t>(i)], perm_[static_cast<size_t>(j)]);
    sum_a_ += ds;
    sq_a_ += dq;
    cost_ = cost_of(sum_a_, sq_a_);
    lazy_errors_.invalidate();
  }

  [[nodiscard]] std::span<const Cost> errors() const { return lazy_errors_.get(*this); }

  void compute_errors(std::span<Cost> errs) const {
    // Every variable participates in the same two global constraints; the
    // reference model biases the repair toward values whose move would
    // reduce the deviation most, approximated by the value magnitude on
    // the heavier side.
    const Cost dev = cost_;
    std::fill(errs.begin(), errs.end(), Cost{0});
    if (dev == 0) return;
    const bool a_heavy =
        (sum_a_ - target_sum_) + (sq_a_ - target_sq_) > 0;
    for (int i = 0; i < n_; ++i) {
      const bool in_a = i < n_ / 2;
      if (in_a == a_heavy) errs[static_cast<size_t>(i)] = perm_[static_cast<size_t>(i)];
    }
  }

  [[nodiscard]] std::vector<int> group_a() const {
    return {perm_.begin(), perm_.begin() + n_ / 2};
  }
  [[nodiscard]] std::vector<int> group_b() const {
    return {perm_.begin() + n_ / 2, perm_.end()};
  }

  /// Independent validity check: equal cardinality (by construction),
  /// equal sums, equal sums of squares.
  [[nodiscard]] bool valid() const {
    int64_t s = 0, q = 0;
    for (int i = 0; i < n_ / 2; ++i) {
      const int64_t v = perm_[static_cast<size_t>(i)];
      s += v;
      q += v * v;
    }
    return s == target_sum_ && q == target_sq_;
  }

  [[nodiscard]] int64_t target_sum() const { return target_sum_; }
  [[nodiscard]] int64_t target_sum_of_squares() const { return target_sq_; }

 private:
  [[nodiscard]] Cost cost_of(int64_t sum_a, int64_t sq_a) const {
    return std::abs(sum_a - target_sum_) + std::abs(sq_a - target_sq_);
  }

  /// (delta sum_A, delta sq_A) of swapping slots i and j.
  [[nodiscard]] std::pair<int64_t, int64_t> swap_delta(int i, int j) const {
    const bool ia = i < n_ / 2, ja = j < n_ / 2;
    if (ia == ja) return {0, 0};
    const int64_t vi = perm_[static_cast<size_t>(i)];
    const int64_t vj = perm_[static_cast<size_t>(j)];
    // The value moving INTO group A minus the one leaving it.
    const int64_t in = ia ? vj : vi;
    const int64_t out = ia ? vi : vj;
    return {in - out, in * in - out * out};
  }

  void rebuild() {
    sum_a_ = 0;
    sq_a_ = 0;
    for (int i = 0; i < n_ / 2; ++i) {
      const int64_t v = perm_[static_cast<size_t>(i)];
      sum_a_ += v;
      sq_a_ += v * v;
    }
    cost_ = cost_of(sum_a_, sq_a_);
    lazy_errors_.invalidate();
  }

  int n_;
  int64_t target_sum_ = 0, target_sq_ = 0;
  std::vector<int> perm_;
  int64_t sum_a_ = 0, sq_a_ = 0;
  Cost cost_ = 0;
  core::LazyErrors lazy_errors_;
};

}  // namespace cas::problems
