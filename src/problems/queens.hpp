// N-Queens as a permutation problem for the Adaptive Search engine.
// perm[i] = row of the queen in column i; rows are all-different by
// construction, so only the two diagonal families constrain the search.
// The paper (Sec. III-A) cites N-Queens as a classic Adaptive Search
// showcase (AS ~40x faster than Comet for N = 10000..50000).
//
// Incremental state: occupancy counters for the 2n-1 "up" diagonals
// (i + perm[i]) and 2n-1 "down" diagonals (i - perm[i]).
#pragma once

#include <algorithm>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/problem.hpp"

namespace cas::problems {

using core::Cost;

class QueensProblem {
 public:
  explicit QueensProblem(int n) : n_(n) {
    if (n < 1) throw std::invalid_argument("QueensProblem: n must be >= 1");
    perm_.resize(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) perm_[static_cast<size_t>(i)] = i + 1;
    up_.assign(static_cast<size_t>(2 * n), 0);
    down_.assign(static_cast<size_t>(2 * n), 0);
    rebuild();
  }

  [[nodiscard]] int size() const { return n_; }
  [[nodiscard]] Cost cost() const { return cost_; }
  [[nodiscard]] int value(int i) const { return perm_[static_cast<size_t>(i)]; }

  void randomize(core::Rng& rng) {
    rng.shuffle(perm_);
    rebuild();
  }

  void apply_swap(int i, int j) {
    remove_queen(i);
    remove_queen(j);
    std::swap(perm_[static_cast<size_t>(i)], perm_[static_cast<size_t>(j)]);
    add_queen(i);
    add_queen(j);
    lazy_errors_.invalidate();
  }

  /// Pure swap delta: simulates the eight diagonal-counter updates of
  /// apply_swap on a tiny ledger, so coinciding diagonals among the four
  /// (column, row) endpoints are handled exactly. O(1), no mutation.
  [[nodiscard]] Cost delta_cost(int i, int j) const {
    if (i == j) return 0;
    using Ledger = core::ScratchCounterLedger<4>;
    Ledger up, down;
    Cost delta = 0;
    const auto remove_from = [&](Ledger& led, const std::vector<int32_t>& arr, size_t k) {
      if (arr[k] + led.pending(k) >= 2) --delta;
      led.bump(k, -1);
    };
    const auto add_to = [&](Ledger& led, const std::vector<int32_t>& arr, size_t k) {
      if (arr[k] + led.pending(k) >= 1) ++delta;
      led.bump(k, +1);
    };
    remove_from(up, up_, up_index(i));
    remove_from(down, down_, down_index(i));
    remove_from(up, up_, up_index(j));
    remove_from(down, down_, down_index(j));
    const int vi = perm_[static_cast<size_t>(i)], vj = perm_[static_cast<size_t>(j)];
    add_to(up, up_, static_cast<size_t>(i + vj));
    add_to(down, down_, static_cast<size_t>(i - vj + n_));
    add_to(up, up_, static_cast<size_t>(j + vi));
    add_to(down, down_, static_cast<size_t>(j - vi + n_));
    return delta;
  }

  [[nodiscard]] Cost cost_if_swap(int i, int j) const { return cost_ + delta_cost(i, j); }

  [[nodiscard]] std::span<const Cost> errors() const { return lazy_errors_.get(*this); }

  void compute_errors(std::span<Cost> errs) const {
    for (int i = 0; i < n_; ++i) {
      Cost e = 0;
      if (up_[up_index(i)] >= 2) e += up_[up_index(i)] - 1;
      if (down_[down_index(i)] >= 2) e += down_[down_index(i)] - 1;
      errs[static_cast<size_t>(i)] = e;
    }
  }

  [[nodiscard]] const std::vector<int>& permutation() const { return perm_; }

  /// True if the configuration is a valid N-Queens placement.
  [[nodiscard]] bool valid() const { return cost_ == 0; }

 private:
  [[nodiscard]] size_t up_index(int i) const {
    return static_cast<size_t>(i + perm_[static_cast<size_t>(i)]);  // in [1, 2n-1]
  }
  [[nodiscard]] size_t down_index(int i) const {
    return static_cast<size_t>(i - perm_[static_cast<size_t>(i)] + n_);  // in [0, 2n-2]
  }

  // Row-occupancy is constant (permutation); each diagonal with k queens
  // contributes k-1 conflicts.
  void add_queen(int i) {
    if (++up_[up_index(i)] >= 2) ++cost_;
    if (++down_[down_index(i)] >= 2) ++cost_;
  }
  void remove_queen(int i) {
    if (up_[up_index(i)]-- >= 2) --cost_;
    if (down_[down_index(i)]-- >= 2) --cost_;
  }

  void rebuild() {
    std::fill(up_.begin(), up_.end(), 0);
    std::fill(down_.begin(), down_.end(), 0);
    cost_ = 0;
    for (int i = 0; i < n_; ++i) add_queen(i);
    lazy_errors_.invalidate();
  }

  int n_;
  std::vector<int> perm_;
  std::vector<int32_t> up_, down_;
  Cost cost_ = 0;
  core::LazyErrors lazy_errors_;
};

}  // namespace cas::problems
