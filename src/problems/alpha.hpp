// The "alpha cipher" puzzle — the alpha.c benchmark of Diaz's reference
// Adaptive Search library (originally from rec.puzzles): assign the
// numbers 1..26 to the letters A..Z (a bijection) so that twenty
// word-sum equations hold simultaneously, e.g. B+A+L+L+E+T = 45. A linear
// system over a permutation — exactly the kind of symbolic+arithmetic mix
// Adaptive Search was designed for.
//
// Incremental model: each equation's current sum is cached; a swap of two
// letters' values changes equation e by (coef_e[i] - coef_e[j]) * (vj - vi),
// so move evaluation is O(#equations). The per-variable error projects each
// equation's absolute deviation onto its letters, weighted by multiplicity.
#pragma once

#include <array>
#include <cstdlib>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/config.hpp"
#include "core/problem.hpp"

namespace cas::problems {

using core::Cost;

class AlphaProblem {
 public:
  static constexpr int kLetters = 26;

  struct Equation {
    std::string word;
    int target = 0;
  };

  /// The classic twenty-equation instance.
  static const std::vector<Equation>& default_equations();

  AlphaProblem() : AlphaProblem(default_equations()) {}
  explicit AlphaProblem(std::vector<Equation> equations);

  [[nodiscard]] int size() const { return kLetters; }
  [[nodiscard]] Cost cost() const { return cost_; }
  [[nodiscard]] int value(int i) const { return val_[static_cast<size_t>(i)]; }

  void randomize(core::Rng& rng);
  /// Pure swap delta: only equations where the two letters' multiplicities
  /// differ move; O(#equations) with an early skip for untouched ones.
  [[nodiscard]] Cost delta_cost(int i, int j) const;
  [[nodiscard]] Cost cost_if_swap(int i, int j) const { return cost_ + delta_cost(i, j); }
  void apply_swap(int i, int j);
  [[nodiscard]] std::span<const Cost> errors() const { return lazy_errors_.get(*this); }
  void compute_errors(std::span<Cost> errs) const;

  /// Value currently assigned to a letter ('A'..'Z' or 'a'..'z').
  [[nodiscard]] int value_of(char letter) const;

  /// Sum of a word under the current assignment.
  [[nodiscard]] int word_sum(std::string_view word) const;

  [[nodiscard]] const std::vector<Equation>& equations() const { return eqs_; }

  /// Independent validity check: every equation satisfied and the values
  /// form a permutation of 1..26.
  [[nodiscard]] bool valid() const;

  /// Engine parameters tuned for this benchmark (the reference AS library
  /// also ships per-benchmark settings): longer tabu tenure and a high
  /// reset threshold work much better than the CAP values here.
  static core::AsConfig recommended_config(uint64_t seed = 42);

 private:
  void rebuild();

  std::vector<Equation> eqs_;
  std::vector<std::array<int8_t, kLetters>> coef_;  // per-equation letter counts
  std::vector<int> targets_;
  std::vector<int> val_;       // letter index -> assigned number
  std::vector<int64_t> sums_;  // cached equation sums
  Cost cost_ = 0;
  core::LazyErrors lazy_errors_;
};

}  // namespace cas::problems
