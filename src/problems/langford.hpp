// Langford's number problem L(2, n) (CSPLib prob024) — one of the
// permutation benchmarks shipped with Diaz's reference Adaptive Search
// library (langford.c), modeled here on the same engine the paper uses for
// the CAP.
//
// Arrange the multiset {1, 1, 2, 2, ..., n, n} in a row of 2n slots so
// that the two copies of k are exactly k + 1 slots apart (k numbers sit
// between them). Configurations are permutations of 2n *items*: items 2k
// and 2k+1 are the two copies of value k + 1. The error of value k is
// | |pos(first copy) - pos(second copy)| - (k + 1) |, projected onto the
// two slots holding the copies. Solutions exist iff n = 0 or 3 (mod 4).
#pragma once

#include <algorithm>
#include <cstdlib>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/problem.hpp"

namespace cas::problems {

using core::Cost;

class LangfordProblem {
 public:
  explicit LangfordProblem(int n) : n_(n) {
    if (n < 1) throw std::invalid_argument("LangfordProblem: n must be >= 1");
    perm_.resize(static_cast<size_t>(2 * n));
    pos_.resize(static_cast<size_t>(2 * n));
    for (int i = 0; i < 2 * n; ++i) perm_[static_cast<size_t>(i)] = i;
    rebuild();
  }

  /// Whether L(2, n) has solutions at all (n = 0 or 3 mod 4); useful for
  /// examples and tests choosing instances.
  [[nodiscard]] static bool solvable(int n) { return n % 4 == 0 || n % 4 == 3; }

  [[nodiscard]] int size() const { return 2 * n_; }
  [[nodiscard]] Cost cost() const { return cost_; }
  /// Presented value: the number (1..n) whose copy occupies slot i.
  [[nodiscard]] int value(int i) const { return perm_[static_cast<size_t>(i)] / 2 + 1; }

  void randomize(core::Rng& rng) {
    rng.shuffle(perm_);
    rebuild();
  }

  /// Pure swap delta: only the values owning the two swapped items change
  /// their separation error; re-derive it under the hypothetical positions.
  [[nodiscard]] Cost delta_cost(int i, int j) const {
    if (i == j) return 0;
    const int a = perm_[static_cast<size_t>(i)];
    const int b = perm_[static_cast<size_t>(j)];
    const auto pos_after = [&](int item) {
      return item == a ? j : item == b ? i : pos_[static_cast<size_t>(item)];
    };
    const auto error_after = [&](int k) {
      const int d = std::abs(pos_after(2 * k) - pos_after(2 * k + 1));
      return static_cast<Cost>(std::abs(d - (k + 2)));
    };
    Cost delta = error_after(a / 2) - value_error(a / 2);
    if (b / 2 != a / 2) delta += error_after(b / 2) - value_error(b / 2);
    return delta;
  }

  [[nodiscard]] Cost cost_if_swap(int i, int j) const { return cost_ + delta_cost(i, j); }

  void apply_swap(int i, int j) {
    const int a = perm_[static_cast<size_t>(i)];
    const int b = perm_[static_cast<size_t>(j)];
    cost_ -= value_error(a / 2) + (b / 2 != a / 2 ? value_error(b / 2) : 0);
    std::swap(perm_[static_cast<size_t>(i)], perm_[static_cast<size_t>(j)]);
    pos_[static_cast<size_t>(a)] = j;
    pos_[static_cast<size_t>(b)] = i;
    cost_ += value_error(a / 2) + (b / 2 != a / 2 ? value_error(b / 2) : 0);
    lazy_errors_.invalidate();
  }

  [[nodiscard]] std::span<const Cost> errors() const { return lazy_errors_.get(*this); }

  void compute_errors(std::span<Cost> errs) const {
    std::fill(errs.begin(), errs.end(), Cost{0});
    for (int k = 0; k < n_; ++k) {
      const Cost e = value_error(k);
      if (e == 0) continue;
      errs[static_cast<size_t>(pos_[static_cast<size_t>(2 * k)])] += e;
      errs[static_cast<size_t>(pos_[static_cast<size_t>(2 * k + 1)])] += e;
    }
  }

  /// The row as the numbers it displays, e.g. {2,3,1,2,1,3} for n = 3.
  [[nodiscard]] std::vector<int> sequence() const {
    std::vector<int> out(static_cast<size_t>(2 * n_));
    for (int i = 0; i < 2 * n_; ++i) out[static_cast<size_t>(i)] = value(i);
    return out;
  }

  /// Independent validity check against the Langford property.
  [[nodiscard]] bool valid() const {
    for (int k = 0; k < n_; ++k)
      if (value_error(k) != 0) return false;
    return true;
  }

  /// Static checker for an arbitrary displayed sequence.
  static bool is_langford(std::span<const int> seq) {
    const int len = static_cast<int>(seq.size());
    if (len % 2 != 0) return false;
    const int n = len / 2;
    std::vector<int> first(static_cast<size_t>(n) + 1, -1);
    std::vector<int> count(static_cast<size_t>(n) + 1, 0);
    for (int i = 0; i < len; ++i) {
      const int v = seq[static_cast<size_t>(i)];
      if (v < 1 || v > n) return false;
      ++count[static_cast<size_t>(v)];
      if (first[static_cast<size_t>(v)] < 0) {
        first[static_cast<size_t>(v)] = i;
      } else if (i - first[static_cast<size_t>(v)] != v + 1) {
        return false;
      }
    }
    for (int v = 1; v <= n; ++v)
      if (count[static_cast<size_t>(v)] != 2) return false;
    return true;
  }

 private:
  /// | separation(copies of value k+1) - (k+2) | ... with the convention
  /// that value v = k + 1 requires |pos difference| == v + 1.
  [[nodiscard]] Cost value_error(int k) const {
    const int d = std::abs(pos_[static_cast<size_t>(2 * k)] - pos_[static_cast<size_t>(2 * k + 1)]);
    return std::abs(d - (k + 2));
  }

  void rebuild() {
    for (int i = 0; i < 2 * n_; ++i) pos_[static_cast<size_t>(perm_[static_cast<size_t>(i)])] = i;
    cost_ = 0;
    for (int k = 0; k < n_; ++k) cost_ += value_error(k);
    lazy_errors_.invalidate();
  }

  int n_;
  std::vector<int> perm_;  // slot -> item (items 2k, 2k+1 are copies of k+1)
  std::vector<int> pos_;   // item -> slot
  Cost cost_ = 0;
  core::LazyErrors lazy_errors_;
};

}  // namespace cas::problems
