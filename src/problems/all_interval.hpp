// All-Interval Series (CSPLib prob007), cited by the paper's introduction
// as one of the classic CSPs conceptually related to Costas arrays.
//
// Find a permutation s of {0..n-1} such that the absolute differences
// |s[i+1] - s[i]| are a permutation of {1..n-1}. Cost counts duplicated
// difference values; a swap touches at most 4 adjacent differences.
#pragma once

#include <algorithm>
#include <cstdlib>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/problem.hpp"

namespace cas::problems {

using core::Cost;

class AllIntervalProblem {
 public:
  explicit AllIntervalProblem(int n) : n_(n) {
    if (n < 2) throw std::invalid_argument("AllIntervalProblem: n must be >= 2");
    perm_.resize(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) perm_[static_cast<size_t>(i)] = i;
    occ_.assign(static_cast<size_t>(n), 0);  // interval values 1..n-1
    rebuild();
  }

  [[nodiscard]] int size() const { return n_; }
  [[nodiscard]] Cost cost() const { return cost_; }
  [[nodiscard]] int value(int i) const { return perm_[static_cast<size_t>(i)]; }

  void randomize(core::Rng& rng) {
    rng.shuffle(perm_);
    rebuild();
  }

  void apply_swap(int i, int j) {
    for_each_affected_interval(i, j, [&](int k) { remove_interval(k); });
    std::swap(perm_[static_cast<size_t>(i)], perm_[static_cast<size_t>(j)]);
    for_each_affected_interval(i, j, [&](int k) { add_interval(k); });
    lazy_errors_.invalidate();
  }

  /// Pure swap delta: at most 4 adjacent intervals change value; stage the
  /// occupancy adjustments on a tiny ledger (affected intervals can land in
  /// the same occupancy slot) and read collisions off it. No mutation.
  [[nodiscard]] Cost delta_cost(int i, int j) const {
    if (i == j) return 0;
    core::ScratchCounterLedger<8> led;
    Cost delta = 0;
    for_each_affected_interval(i, j, [&](int k) {
      const size_t v = static_cast<size_t>(interval(k));
      if (occ_[v] + led.pending(v) >= 2) --delta;
      led.bump(v, -1);
    });
    const auto val = [&](int x) {
      return x == i   ? perm_[static_cast<size_t>(j)]
             : x == j ? perm_[static_cast<size_t>(i)]
                      : perm_[static_cast<size_t>(x)];
    };
    for_each_affected_interval(i, j, [&](int k) {
      const size_t v = static_cast<size_t>(std::abs(val(k + 1) - val(k)));
      if (occ_[v] + led.pending(v) >= 1) ++delta;
      led.bump(v, +1);
    });
    return delta;
  }

  [[nodiscard]] Cost cost_if_swap(int i, int j) const { return cost_ + delta_cost(i, j); }

  [[nodiscard]] std::span<const Cost> errors() const { return lazy_errors_.get(*this); }

  void compute_errors(std::span<Cost> errs) const {
    std::fill(errs.begin(), errs.end(), Cost{0});
    for (int k = 0; k + 1 < n_; ++k) {
      if (occ_[static_cast<size_t>(interval(k))] >= 2) {
        ++errs[static_cast<size_t>(k)];
        ++errs[static_cast<size_t>(k + 1)];
      }
    }
  }

  [[nodiscard]] const std::vector<int>& series() const { return perm_; }

  /// Independent validity check (no incremental state).
  [[nodiscard]] bool valid() const {
    std::vector<bool> seen(static_cast<size_t>(n_), false);
    for (int k = 0; k + 1 < n_; ++k) {
      const int d = interval(k);
      if (d < 1 || d >= n_ || seen[static_cast<size_t>(d)]) return false;
      seen[static_cast<size_t>(d)] = true;
    }
    return true;
  }

 private:
  [[nodiscard]] int interval(int k) const {
    return std::abs(perm_[static_cast<size_t>(k + 1)] - perm_[static_cast<size_t>(k)]);
  }

  /// Intervals adjacent to positions i or j, deduplicated.
  template <typename Fn>
  void for_each_affected_interval(int i, int j, Fn&& fn) const {
    if (i > j) std::swap(i, j);
    if (i - 1 >= 0) fn(i - 1);
    if (i + 1 < n_) fn(i);
    if (j - 1 >= 0 && j - 1 != i && j - 1 != i - 1) fn(j - 1);
    if (j + 1 < n_ && j != i) fn(j);
  }

  void add_interval(int k) {
    if (++occ_[static_cast<size_t>(interval(k))] >= 2) ++cost_;
  }
  void remove_interval(int k) {
    if (occ_[static_cast<size_t>(interval(k))]-- >= 2) --cost_;
  }

  void rebuild() {
    std::fill(occ_.begin(), occ_.end(), 0);
    cost_ = 0;
    for (int k = 0; k + 1 < n_; ++k) add_interval(k);
    lazy_errors_.invalidate();
  }

  int n_;
  std::vector<int> perm_;
  std::vector<int32_t> occ_;
  Cost cost_ = 0;
  core::LazyErrors lazy_errors_;
};

}  // namespace cas::problems
