#include "problems/alpha.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace cas::problems {

const std::vector<AlphaProblem::Equation>& AlphaProblem::default_equations() {
  // The rec.puzzles instance shipped with the reference AS library.
  static const std::vector<Equation> eqs{
      {"BALLET", 45},  {"CELLO", 43},   {"CONCERT", 74}, {"FLUTE", 30},
      {"FUGUE", 50},   {"GLEE", 66},    {"JAZZ", 58},    {"LYRE", 47},
      {"OBOE", 53},    {"OPERA", 65},   {"POLKA", 59},   {"QUARTET", 50},
      {"SAXOPHONE", 134}, {"SCALE", 51}, {"SOLO", 37},   {"SONG", 61},
      {"SOPRANO", 82}, {"THEME", 72},   {"VIOLIN", 100}, {"WALTZ", 34},
  };
  return eqs;
}

AlphaProblem::AlphaProblem(std::vector<Equation> equations) : eqs_(std::move(equations)) {
  if (eqs_.empty()) throw std::invalid_argument("AlphaProblem: need at least one equation");
  coef_.reserve(eqs_.size());
  targets_.reserve(eqs_.size());
  for (const auto& eq : eqs_) {
    std::array<int8_t, kLetters> c{};
    for (char ch : eq.word) {
      const unsigned char u = static_cast<unsigned char>(ch);
      if (!std::isalpha(u))
        throw std::invalid_argument("AlphaProblem: word contains a non-letter: " + eq.word);
      ++c[static_cast<size_t>(std::toupper(u) - 'A')];
    }
    coef_.push_back(c);
    targets_.push_back(eq.target);
  }
  val_.resize(kLetters);
  for (int i = 0; i < kLetters; ++i) val_[static_cast<size_t>(i)] = i + 1;
  sums_.assign(eqs_.size(), 0);
  rebuild();
}

void AlphaProblem::randomize(core::Rng& rng) {
  rng.shuffle(val_);
  rebuild();
}

Cost AlphaProblem::delta_cost(int i, int j) const {
  if (i == j) return 0;
  const int64_t di = val_[static_cast<size_t>(j)] - val_[static_cast<size_t>(i)];
  Cost delta = 0;
  for (size_t e = 0; e < eqs_.size(); ++e) {
    const int coef_diff = coef_[e][static_cast<size_t>(i)] - coef_[e][static_cast<size_t>(j)];
    if (coef_diff == 0) continue;  // equation untouched by this swap
    const int64_t dev = sums_[e] - targets_[e];
    delta += std::abs(dev + coef_diff * di) - std::abs(dev);
  }
  return delta;
}

void AlphaProblem::apply_swap(int i, int j) {
  const int64_t di = val_[static_cast<size_t>(j)] - val_[static_cast<size_t>(i)];
  cost_ = 0;
  for (size_t e = 0; e < eqs_.size(); ++e) {
    const int coef_diff = coef_[e][static_cast<size_t>(i)] - coef_[e][static_cast<size_t>(j)];
    sums_[e] += coef_diff * di;
    cost_ += std::abs(sums_[e] - targets_[e]);
  }
  std::swap(val_[static_cast<size_t>(i)], val_[static_cast<size_t>(j)]);
  lazy_errors_.invalidate();
}

void AlphaProblem::compute_errors(std::span<Cost> errs) const {
  std::fill(errs.begin(), errs.end(), Cost{0});
  for (size_t e = 0; e < eqs_.size(); ++e) {
    const Cost dev = std::abs(sums_[e] - targets_[e]);
    if (dev == 0) continue;
    for (int i = 0; i < kLetters; ++i) {
      if (coef_[e][static_cast<size_t>(i)] != 0)
        errs[static_cast<size_t>(i)] += dev * coef_[e][static_cast<size_t>(i)];
    }
  }
}

int AlphaProblem::value_of(char letter) const {
  const unsigned char u = static_cast<unsigned char>(letter);
  if (!std::isalpha(u)) throw std::invalid_argument("AlphaProblem::value_of: not a letter");
  return val_[static_cast<size_t>(std::toupper(u) - 'A')];
}

int AlphaProblem::word_sum(std::string_view word) const {
  int s = 0;
  for (char ch : word) s += value_of(ch);
  return s;
}

bool AlphaProblem::valid() const {
  std::array<bool, kLetters + 1> seen{};
  for (int v : val_) {
    if (v < 1 || v > kLetters || seen[static_cast<size_t>(v)]) return false;
    seen[static_cast<size_t>(v)] = true;
  }
  for (size_t e = 0; e < eqs_.size(); ++e) {
    if (word_sum(eqs_[e].word) != targets_[e]) return false;
  }
  return true;
}

core::AsConfig AlphaProblem::recommended_config(uint64_t seed) {
  core::AsConfig cfg;
  cfg.seed = seed;
  cfg.tabu_tenure = 10;
  cfg.plateau_probability = 0.5;
  cfg.reset_limit = 10;
  cfg.reset_fraction = 0.1;
  return cfg;
}

void AlphaProblem::rebuild() {
  lazy_errors_.invalidate();
  cost_ = 0;
  for (size_t e = 0; e < eqs_.size(); ++e) {
    int64_t s = 0;
    for (int i = 0; i < kLetters; ++i)
      s += static_cast<int64_t>(coef_[e][static_cast<size_t>(i)]) * val_[static_cast<size_t>(i)];
    sums_[e] = s;
    cost_ += std::abs(s - targets_[e]);
  }
}

}  // namespace cas::problems
