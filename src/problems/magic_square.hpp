// Magic Square (CSPLib prob019) on the Adaptive Search engine. The paper
// (Sec. III) uses Magic Square as the showcase for plateau tuning (an order
// of magnitude gain) and for the AS-vs-Dialectic-Search comparison.
//
// Configuration: the numbers 1..N^2 on an N x N grid (a permutation over
// N^2 variables). Constraint errors are |line_sum - magic_constant| for
// every row, column and the two main diagonals; a variable's error is the
// sum of the errors of the lines through its cell.
#pragma once

#include <algorithm>
#include <array>
#include <cstdlib>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/problem.hpp"

namespace cas::problems {

using core::Cost;

class MagicSquareProblem {
 public:
  explicit MagicSquareProblem(int order) : order_(order), n_(order * order) {
    if (order < 3) throw std::invalid_argument("MagicSquareProblem: order must be >= 3");
    magic_ = static_cast<Cost>(order_) * (static_cast<Cost>(n_) + 1) / 2;
    perm_.resize(static_cast<size_t>(n_));
    for (int i = 0; i < n_; ++i) perm_[static_cast<size_t>(i)] = i + 1;
    row_sum_.assign(static_cast<size_t>(order_), 0);
    col_sum_.assign(static_cast<size_t>(order_), 0);
    rebuild();
  }

  [[nodiscard]] int size() const { return n_; }
  [[nodiscard]] int order() const { return order_; }
  [[nodiscard]] Cost cost() const { return cost_; }
  [[nodiscard]] int value(int i) const { return perm_[static_cast<size_t>(i)]; }
  [[nodiscard]] Cost magic_constant() const { return magic_; }

  void randomize(core::Rng& rng) {
    rng.shuffle(perm_);
    rebuild();
  }

  void apply_swap(int i, int j) {
    const Cost delta =
        perm_[static_cast<size_t>(j)] - perm_[static_cast<size_t>(i)];  // change at cell i
    adjust_cell(i, delta);
    adjust_cell(j, -delta);
    std::swap(perm_[static_cast<size_t>(i)], perm_[static_cast<size_t>(j)]);
    lazy_errors_.invalidate();
  }

  /// Pure swap delta: collect the net sum change of every line through the
  /// two cells (merging shared lines, whose net change is then zero) and
  /// compare |sum' - magic| against |sum - magic| per line. No mutation.
  [[nodiscard]] Cost delta_cost(int i, int j) const {
    if (i == j) return 0;
    struct Ledger {
      std::array<const Cost*, 6> line{};
      std::array<Cost, 6> d{};
      int n = 0;
      void bump(const Cost* s, Cost dd) {
        for (int t = 0; t < n; ++t)
          if (line[t] == s) {
            d[t] += dd;
            return;
          }
        line[static_cast<size_t>(n)] = s;
        d[static_cast<size_t>(n)] = dd;
        ++n;
      }
    };
    Ledger led;
    const auto collect = [&](int cell_idx, Cost dd) {
      const int r = cell_idx / order_, c = cell_idx % order_;
      led.bump(&row_sum_[static_cast<size_t>(r)], dd);
      led.bump(&col_sum_[static_cast<size_t>(c)], dd);
      if (r == c) led.bump(&diag_sum_, dd);
      if (r + c == order_ - 1) led.bump(&anti_sum_, dd);
    };
    const Cost dv = perm_[static_cast<size_t>(j)] - perm_[static_cast<size_t>(i)];
    collect(i, dv);
    collect(j, -dv);
    Cost delta = 0;
    for (int t = 0; t < led.n; ++t)
      delta += std::abs(*led.line[t] + led.d[t] - magic_) - std::abs(*led.line[t] - magic_);
    return delta;
  }

  [[nodiscard]] Cost cost_if_swap(int i, int j) const { return cost_ + delta_cost(i, j); }

  [[nodiscard]] std::span<const Cost> errors() const { return lazy_errors_.get(*this); }

  void compute_errors(std::span<Cost> errs) const {
    for (int i = 0; i < n_; ++i) {
      const int r = i / order_, c = i % order_;
      Cost e = std::abs(row_sum_[static_cast<size_t>(r)] - magic_) +
               std::abs(col_sum_[static_cast<size_t>(c)] - magic_);
      if (r == c) e += std::abs(diag_sum_ - magic_);
      if (r + c == order_ - 1) e += std::abs(anti_sum_ - magic_);
      errs[static_cast<size_t>(i)] = e;
    }
  }

  /// Independent validity check.
  [[nodiscard]] bool valid() const {
    for (int r = 0; r < order_; ++r) {
      Cost s = 0;
      for (int c = 0; c < order_; ++c) s += perm_[cell(r, c)];
      if (s != magic_) return false;
    }
    for (int c = 0; c < order_; ++c) {
      Cost s = 0;
      for (int r = 0; r < order_; ++r) s += perm_[cell(r, c)];
      if (s != magic_) return false;
    }
    Cost d1 = 0, d2 = 0;
    for (int r = 0; r < order_; ++r) {
      d1 += perm_[cell(r, r)];
      d2 += perm_[cell(r, order_ - 1 - r)];
    }
    return d1 == magic_ && d2 == magic_;
  }

 private:
  [[nodiscard]] size_t cell(int r, int c) const {
    return static_cast<size_t>(r) * static_cast<size_t>(order_) + static_cast<size_t>(c);
  }

  /// Apply a value change at cell i to the sums of its lines, updating the
  /// cached cost (cost = sum over lines of |line_sum - magic|).
  void adjust_cell(int i, Cost delta) {
    const int r = i / order_, c = i % order_;
    adjust_line(row_sum_[static_cast<size_t>(r)], delta);
    adjust_line(col_sum_[static_cast<size_t>(c)], delta);
    if (r == c) adjust_line(diag_sum_, delta);
    if (r + c == order_ - 1) adjust_line(anti_sum_, delta);
  }

  void adjust_line(Cost& sum, Cost delta) {
    cost_ -= std::abs(sum - magic_);
    sum += delta;
    cost_ += std::abs(sum - magic_);
  }

  void rebuild() {
    std::fill(row_sum_.begin(), row_sum_.end(), Cost{0});
    std::fill(col_sum_.begin(), col_sum_.end(), Cost{0});
    diag_sum_ = anti_sum_ = 0;
    for (int r = 0; r < order_; ++r) {
      for (int c = 0; c < order_; ++c) {
        const Cost v = perm_[cell(r, c)];
        row_sum_[static_cast<size_t>(r)] += v;
        col_sum_[static_cast<size_t>(c)] += v;
        if (r == c) diag_sum_ += v;
        if (r + c == order_ - 1) anti_sum_ += v;
      }
    }
    cost_ = 0;
    for (Cost s : row_sum_) cost_ += std::abs(s - magic_);
    for (Cost s : col_sum_) cost_ += std::abs(s - magic_);
    cost_ += std::abs(diag_sum_ - magic_) + std::abs(anti_sum_ - magic_);
    lazy_errors_.invalidate();
  }

  int order_;
  int n_;
  Cost magic_;
  std::vector<int> perm_;
  std::vector<Cost> row_sum_, col_sum_;
  Cost diag_sum_ = 0, anti_sum_ = 0;
  Cost cost_ = 0;
  core::LazyErrors lazy_errors_;
};

}  // namespace cas::problems
