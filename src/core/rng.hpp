// Pseudo-random number generation for the local-search engines.
//
// The paper (Sec. III-B3) stresses that massively parallel stochastic search
// needs better randomness than libc rand(): we use xoshiro256** (Blackman &
// Vigna) seeded through splitmix64, which is the reference seeding scheme.
// Each walker owns its generator by value — no shared RNG state between
// threads (C++ Core Guidelines CP.2/CP.3).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

// Lemire's bounded-rejection sampler uses 128-bit intermediates (a GCC/
// Clang extension).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpedantic"

namespace cas::core {

/// splitmix64: used to expand a 64-bit seed into xoshiro state, and as a
/// lightweight standalone generator in tests.
struct SplitMix64 {
  uint64_t state;

  explicit constexpr SplitMix64(uint64_t seed) : state(seed) {}

  constexpr uint64_t next() {
    uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
};

/// xoshiro256** 1.0. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  void reseed(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
    // All-zero state is invalid for xoshiro; splitmix64 cannot produce four
    // consecutive zeros, so no further guard is needed.
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<uint64_t>::max(); }

  result_type operator()() {
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  /// Lemire's multiply-shift method with rejection (unbiased).
  uint64_t below(uint64_t bound) {
    uint64_t x = (*this)();
    unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < bound) {
      const uint64_t t = (0 - bound) % bound;
      while (l < t) {
        x = (*this)();
        m = static_cast<unsigned __int128>(x) * bound;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform int in [lo, hi] inclusive.
  int64_t between(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(below(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform01() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Bernoulli trial.
  bool chance(double prob) { return uniform01() < prob; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Random permutation of {base, ..., base + n - 1}.
  std::vector<int> permutation(int n, int base = 1) {
    std::vector<int> p(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) p[static_cast<size_t>(i)] = base + i;
    shuffle(p);
    return p;
  }

  /// The full generator state, for exact checkpoint/restore of a walk.
  /// set_state() with a state() snapshot resumes the stream bit-for-bit.
  [[nodiscard]] std::array<uint64_t, 4> state() const { return {s_[0], s_[1], s_[2], s_[3]}; }
  void set_state(const std::array<uint64_t, 4>& s) {
    for (size_t i = 0; i < 4; ++i) s_[i] = s[i];
  }

  /// 2^128 steps forward; used to partition one seed into parallel streams
  /// (alternative to per-walker reseeding).
  void jump() {
    static constexpr uint64_t kJump[] = {0x180ec6d33cfd0abaull, 0xd5a61266f0c9392cull,
                                         0xa9582618e03fc9aaull, 0x39abdc4529b1661cull};
    uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    for (uint64_t jump_word : kJump) {
      for (int b = 0; b < 64; ++b) {
        if (jump_word & (1ull << b)) {
          s0 ^= s_[0];
          s1 ^= s_[1];
          s2 ^= s_[2];
          s3 ^= s_[3];
        }
        (*this)();
      }
    }
    s_[0] = s0;
    s_[1] = s1;
    s_[2] = s2;
    s_[3] = s3;
  }

 private:
  static constexpr uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace cas::core

#pragma GCC diagnostic pop
