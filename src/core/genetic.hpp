// Permutation genetic algorithm — the population-based contrast to the
// paper's local-search family. Sec. V's taxonomy of parallel metaheuristics
// singles out population-based methods (genetic algorithms) as the other
// classical approach next to single-walk and multiple-walk local search;
// this engine lets the baseline-gallery bench measure how a generational
// GA fares on the CAP against AS on identical hardware.
//
// Standard machinery: tournament selection, order crossover (OX1) which
// preserves permutation validity, transposition mutation, elitism. The
// engine is generic over any problem that can score a complete permutation
// (PermutationEvaluator concept) — it is the one engine that does NOT sit
// on the incremental delta_cost/errors() API: crossover rebuilds whole
// permutations, so there is no swap delta to exploit, which is exactly why
// it cannot match the move throughput of the local-search family.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "core/config.hpp"
#include "core/problem.hpp"
#include "core/stats.hpp"
#include "util/timer.hpp"

namespace cas::core {

/// Fitness-only view of a problem: score an arbitrary complete permutation
/// of {1..n}. CostasProblem satisfies this via its stateless evaluate().
template <typename P>
concept PermutationEvaluator = requires(const P& cp, std::span<const int> perm) {
  { cp.size() } -> std::convertible_to<int>;
  { cp.evaluate(perm) } -> std::convertible_to<Cost>;
};

template <PermutationEvaluator P>
class GeneticSearch {
 public:
  GeneticSearch(const P& problem, GaConfig config)
      : problem_(problem), cfg_(config), rng_(config.seed) {}

  /// Evolve until a zero-cost individual appears, the generation budget is
  /// spent, or the stop token fires. RunStats::iterations counts
  /// generations; move_evaluations counts fitness evaluations.
  RunStats solve(StopToken stop = {}) {
    util::WallTimer timer;
    RunStats st;
    const int n = problem_.size();
    const size_t pop_size = static_cast<size_t>(std::max(cfg_.population, 4));

    std::vector<Individual> pop(pop_size);
    for (auto& ind : pop) {
      ind.perm = rng_.permutation(n);
      ind.cost = problem_.evaluate(ind.perm);
      ++st.move_evaluations;
    }
    sort_population(pop);

    uint64_t next_probe = cfg_.probe_interval;
    while (pop.front().cost > 0) {
      if (cfg_.max_generations != 0 && st.iterations >= cfg_.max_generations) break;
      if (st.iterations >= next_probe) {
        if (stop.stop_requested()) break;
        next_probe += cfg_.probe_interval;
      }
      ++st.iterations;

      std::vector<Individual> next;
      next.reserve(pop_size);
      const size_t elites = std::min(static_cast<size_t>(std::max(cfg_.elites, 0)), pop_size);
      for (size_t e = 0; e < elites; ++e) next.push_back(pop[e]);

      while (next.size() < pop_size) {
        const Individual& a = tournament(pop);
        Individual child;
        if (rng_.chance(cfg_.crossover_probability)) {
          const Individual& b = tournament(pop);
          child.perm = order_crossover(a.perm, b.perm);
        } else {
          child.perm = a.perm;
        }
        if (rng_.chance(cfg_.mutation_probability)) mutate(child.perm);
        child.cost = problem_.evaluate(child.perm);
        ++st.move_evaluations;
        next.push_back(std::move(child));
      }
      pop = std::move(next);
      sort_population(pop);
    }

    st.solved = pop.front().cost == 0;
    st.final_cost = pop.front().cost;
    st.wall_seconds = timer.seconds();
    if (st.solved) st.solution = pop.front().perm;
    return st;
  }

 private:
  struct Individual {
    std::vector<int> perm;
    Cost cost = 0;
  };

  static void sort_population(std::vector<Individual>& pop) {
    std::stable_sort(pop.begin(), pop.end(),
                     [](const Individual& x, const Individual& y) { return x.cost < y.cost; });
  }

  const Individual& tournament(const std::vector<Individual>& pop) {
    const size_t k = static_cast<size_t>(std::max(cfg_.tournament_k, 1));
    size_t best = rng_.below(pop.size());
    for (size_t t = 1; t < k; ++t) {
      const size_t c = rng_.below(pop.size());
      if (pop[c].cost < pop[best].cost) best = c;
    }
    return pop[best];
  }

  /// OX1: copy a random slice of `a`, fill the rest in `b`'s cyclic order.
  std::vector<int> order_crossover(const std::vector<int>& a, const std::vector<int>& b) {
    const size_t n = a.size();
    size_t lo = rng_.below(n);
    size_t hi = rng_.below(n);
    if (lo > hi) std::swap(lo, hi);

    std::vector<int> child(n, 0);
    taken_.assign(n + 1, false);
    for (size_t k = lo; k <= hi; ++k) {
      child[k] = a[k];
      taken_[static_cast<size_t>(a[k])] = true;
    }
    size_t write = (hi + 1) % n;
    for (size_t step = 0; step < n; ++step) {
      const int v = b[(hi + 1 + step) % n];
      if (taken_[static_cast<size_t>(v)]) continue;
      child[write] = v;
      write = (write + 1) % n;
    }
    return child;
  }

  void mutate(std::vector<int>& perm) {
    const size_t n = perm.size();
    const size_t i = rng_.below(n);
    size_t j = rng_.below(n - 1);
    if (j >= i) ++j;
    std::swap(perm[i], perm[j]);
  }

  const P& problem_;
  GaConfig cfg_;
  Rng rng_;
  std::vector<char> taken_;  // crossover scratch, reused across offspring
};

}  // namespace cas::core
