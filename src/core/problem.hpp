// The LocalSearchProblem concept: the contract between the search engines
// (AdaptiveSearch, DialecticSearch, HillClimber) and problem models
// (Costas, N-Queens, All-Interval, Magic Square).
//
// A problem owns a *configuration* (for all our models: a permutation laid
// out over `size()` variables), a cached global cost, and enough internal
// bookkeeping to evaluate candidate swap moves incrementally. Cost 0 means
// every constraint is satisfied.
//
// The engines are templates over this concept: the per-iteration hot path
// (error projection + move scan) compiles with no virtual dispatch.
#pragma once

#include <atomic>
#include <concepts>
#include <cstdint>
#include <functional>
#include <span>

#include "core/rng.hpp"

namespace cas::core {

using Cost = int64_t;

template <typename P>
concept LocalSearchProblem = requires(P p, const P& cp, int i, int j, Rng& rng,
                                      std::span<Cost> errs) {
  // Number of decision variables.
  { cp.size() } -> std::convertible_to<int>;
  // Cached global cost of the current configuration (0 == solved).
  { cp.cost() } -> std::convertible_to<Cost>;
  // Current value of variable i (presentation only; engines never interpret it).
  { cp.value(i) } -> std::convertible_to<int>;
  // Draw a fresh uniform random configuration and rebuild internal state.
  { p.randomize(rng) };
  // Cost the configuration would have after swapping variables i and j.
  { p.cost_if_swap(i, j) } -> std::convertible_to<Cost>;
  // Swap variables i and j, updating cost and bookkeeping incrementally.
  { p.apply_swap(i, j) };
  // Write the per-variable error projection into errs (size() entries).
  // Higher error == variable more responsible for constraint violations.
  { p.compute_errors(errs) };
};

/// Problems may provide a hand-tuned reset ("diversification") procedure,
/// like the paper's Costas reset (Sec. IV-B). The engine calls it at local
/// minima instead of the generic percentage reset. Returns true if the
/// chosen perturbation strictly improved on the entry cost ("escaped
/// early" — the paper reports this happens ~32% of the time for Costas).
template <typename P>
concept HasCustomReset = requires(P p, Rng& rng) {
  { p.custom_reset(rng) } -> std::convertible_to<bool>;
};

/// Cooperative cancellation for parallel multi-walk: walkers poll this every
/// `probe_interval` iterations (the paper's non-blocking MPI test every c
/// iterations). Backed by either an atomic flag (thread multi-walk) or an
/// arbitrary predicate (e.g. an MPI-style mailbox probe).
class StopToken {
 public:
  StopToken() = default;
  explicit StopToken(const std::atomic<bool>* flag) : flag_(flag) {}
  explicit StopToken(const std::function<bool()>* predicate) : predicate_(predicate) {}
  [[nodiscard]] bool stop_requested() const {
    if (flag_ != nullptr && flag_->load(std::memory_order_relaxed)) return true;
    return predicate_ != nullptr && (*predicate_)();
  }

 private:
  const std::atomic<bool>* flag_ = nullptr;
  const std::function<bool()>* predicate_ = nullptr;
};

}  // namespace cas::core
