// The LocalSearchProblem concept: the contract between the search engines
// (AdaptiveSearch, TabuSearch, DialecticSearch, HillClimber, ...) and the
// problem models (Costas, N-Queens, All-Interval, Magic Square, ...).
//
// A problem owns a *configuration* (for all our models: a permutation laid
// out over `size()` variables), a cached global cost, and enough internal
// bookkeeping to evaluate candidate swap moves incrementally. Cost 0 means
// every constraint is satisfied.
//
// Incremental evaluation API
// --------------------------
// The engines' hot loop is "score O(n) candidate swaps, pick one, apply
// it". Two members carry that loop:
//
//   delta_cost(i, j)  — PURE: the cost change of swapping variables i and
//                       j, computed without mutating any state. This
//                       replaces the historical do/undo probe (apply the
//                       swap, read cost(), undo it), which wrote to shared
//                       state mid-probe and paid for two applications per
//                       candidate.
//   errors()          — the per-variable error projection, maintained
//                       across apply_swap/randomize by the problem itself
//                       (either truly incrementally, like the Costas
//                       model, or via a lazily refreshed cache — see
//                       LazyErrors below). Engines read it once per
//                       iteration instead of re-projecting from scratch.
//
// cost_if_swap(i, j) is kept as a convenience; models define it as
// cost() + delta_cost(i, j), so it is an identity, NOT an independent
// oracle. The real oracles the tests pin the incremental members against
// are applying the swap (on a copy) and reading cost(), the stateless
// full evaluation where a model has one, and the from-scratch
// compute_errors(errs) projection for the errors() table.
//
// The engines are templates over this concept: the per-iteration hot path
// (error read + move scan) compiles with no virtual dispatch.
#pragma once

#include <array>
#include <atomic>
#include <concepts>
#include <cstdint>
#include <functional>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/candidate_batch.hpp"
#include "core/rng.hpp"

namespace cas::core {

using Cost = int64_t;

template <typename P>
concept LocalSearchProblem = requires(P p, const P& cp, int i, int j, Rng& rng,
                                      std::span<Cost> errs) {
  // Number of decision variables.
  { cp.size() } -> std::convertible_to<int>;
  // Cached global cost of the current configuration (0 == solved).
  { cp.cost() } -> std::convertible_to<Cost>;
  // Current value of variable i (presentation only; engines never interpret it).
  { cp.value(i) } -> std::convertible_to<int>;
  // Draw a fresh uniform random configuration and rebuild internal state.
  { p.randomize(rng) };
  // Cost change the configuration would see after swapping variables i and
  // j. Pure: no mutation, no do/undo; safe to call from concurrent readers.
  { cp.delta_cost(i, j) } -> std::convertible_to<Cost>;
  // Absolute form of delta_cost (== cost() + delta_cost(i, j)); kept as the
  // cross-check oracle of the incremental API.
  { cp.cost_if_swap(i, j) } -> std::convertible_to<Cost>;
  // Swap variables i and j, updating cost and bookkeeping incrementally.
  { p.apply_swap(i, j) };
  // Per-variable error projection, maintained by the problem across
  // apply_swap/randomize. Higher error == variable more responsible for
  // constraint violations. The span stays valid until the next mutation.
  { cp.errors() } -> std::convertible_to<std::span<const Cost>>;
  // From-scratch error projection into errs (size() entries) — the oracle
  // that errors() is validated against.
  { cp.compute_errors(errs) };
};

/// Sentinel the batched row fill parks in out[i] (the self-swap lane): the
/// engines take a plain minimum over the filled row, and INT64_MAX can
/// never win it unless every lane holds it (n == 1).
inline constexpr Cost kExcludedDelta = std::numeric_limits<Cost>::max();

/// Optional batched evaluation member: problems that can score one
/// variable against ALL others cheaper than n calls to delta_cost
/// (CostasProblem walks each difference-triangle row once and fills every
/// j lane of it in one pass, vectorized when a SIMD backend is active)
/// expose delta_costs_row(i, out) and the engines pick it up through
/// delta_costs_row() below.
template <typename P>
concept HasDeltaRow = requires(const P& cp, int i, std::span<Cost> out) {
  { cp.delta_costs_row(i, out) };
};

/// Fill out[j] = delta_cost(i, j) for every j != i, and out[i] =
/// kExcludedDelta. Uses the problem's native batched member when it has
/// one; every other model (the six side problems, DoUndoAdapter, test
/// problems) gets this correct per-j loop. out.size() == p.size().
template <LocalSearchProblem P>
inline void delta_costs_row(const P& p, int i, std::span<Cost> out) {
  if constexpr (HasDeltaRow<P>) {
    p.delta_costs_row(i, out);
  } else {
    const int n = p.size();
    for (int j = 0; j < n; ++j)
      out[static_cast<size_t>(j)] = (j == i) ? kExcludedDelta : p.delta_cost(i, j);
  }
}

/// Optional batched candidate evaluation: problems that can score a whole
/// CandidateBatch of configurations cheaper than one full evaluation per
/// candidate expose evaluate_batch(batch, bound, out). CostasProblem walks
/// each difference-triangle row once per 8-candidate block, vectorized
/// when a SIMD backend is active, sharing one best-so-far bound across
/// candidates for pruning. Contract for out[c] (one entry per candidate):
///   * out[c] is the EXACT cost whenever that cost is strictly below every
///     bound the implementation could have pruned against — in particular
///     for every candidate whose cost is strictly below `bound` and below
///     all exactly-computed costs of earlier candidates;
///   * a pruned candidate reports a partial cost p with p <= true cost and
///     p >= the tightest bound in effect for it (which is >= the true
///     minimum over the batch), so "first candidate with out[c] < X" and
///     "first candidate achieving min(out)" match the serial
///     evaluate-in-order-with-running-bound loop exactly.
template <typename P>
concept HasBatchEval = requires(const P& cp, const CandidateBatch& b, Cost bound,
                                std::span<Cost> out) {
  { cp.evaluate_batch(b, bound, out) };
};

/// Evaluate every candidate in `batch` against problem `p`, filling out[c]
/// per the HasBatchEval contract. Problems with a native batched member use
/// it; every other model gets a serial reference: a scratch copy of the
/// problem is morphed into each candidate by swaps (candidates must be
/// value-rearrangements of the current configuration, which reset
/// perturbations always are) and its cached cost read back — exact costs,
/// `bound` unused. out.size() >= batch.count().
template <LocalSearchProblem P>
  requires(HasBatchEval<P> || std::copy_constructible<P>)
inline void evaluate_batch(const P& p, const CandidateBatch& batch, Cost bound,
                           std::span<Cost> out) {
  if constexpr (HasBatchEval<P>) {
    p.evaluate_batch(batch, bound, out);
  } else {
    (void)bound;
    const int n = p.size();
    P scratch(p);
    for (int c = 0; c < batch.count(); ++c) {
      // Selection-style sync: position i takes the candidate's value via a
      // swap with whichever later position currently holds it.
      for (int i = 0; i < n; ++i) {
        const int want = static_cast<int>(batch.get(c, i));
        if (scratch.value(i) == want) continue;
        int j = i + 1;
        while (j < n && scratch.value(j) != want) ++j;
        if (j == n)
          throw std::invalid_argument(
              "evaluate_batch: candidate is not a rearrangement of the configuration");
        scratch.apply_swap(i, j);
      }
      out[static_cast<size_t>(c)] = scratch.cost();
    }
  }
}

/// Problems may provide a hand-tuned reset ("diversification") procedure,
/// like the paper's Costas reset (Sec. IV-B). The engine calls it at local
/// minima instead of the generic percentage reset. Returns true if the
/// chosen perturbation strictly improved on the entry cost ("escaped
/// early" — the paper reports this happens ~32% of the time for Costas).
template <typename P>
concept HasCustomReset = requires(P p, Rng& rng) {
  { p.custom_reset(rng) } -> std::convertible_to<bool>;
};

/// Lazily refreshed per-variable error cache — the shared building block
/// for problems whose error projection is cheapest recomputed in bulk
/// (O(n) anyway, e.g. N-Queens reading its diagonal counters). It gives
/// such models the errors() accessor of the incremental API: mutations call
/// invalidate(), and the next errors() query refreshes the cache once via
/// the problem's own compute_errors. Models with a genuinely incremental
/// error table (the Costas model) do not need this.
class LazyErrors {
 public:
  template <typename P>
  [[nodiscard]] std::span<const Cost> get(const P& problem) const {
    if (dirty_) {
      cache_.resize(static_cast<size_t>(problem.size()));
      problem.compute_errors(std::span<Cost>(cache_.data(), cache_.size()));
      dirty_ = false;
    }
    return {cache_.data(), cache_.size()};
  }
  void invalidate() { dirty_ = true; }

 private:
  mutable std::vector<Cost> cache_;
  mutable bool dirty_ = true;
};

/// Tiny fixed-capacity (slot -> pending count adjustment) ledger for pure
/// delta_cost implementations over occupancy-counter models: it stages the
/// counter updates a hypothetical swap would make, so coinciding slots
/// among the affected counters are resolved exactly without touching the
/// real tables. N bounds the number of distinct slots one swap can touch
/// (queens: 4 per diagonal family; all-interval: 8). Lives on the stack —
/// construction is free and lookups are a handful of register compares.
template <int N>
class ScratchCounterLedger {
 public:
  [[nodiscard]] int32_t pending(size_t slot) const {
    int32_t c = 0;
    for (int t = 0; t < n_; ++t)
      if (slots_[t] == slot) c += adj_[t];
    return c;
  }
  void bump(size_t slot, int32_t d) {
    for (int t = 0; t < n_; ++t)
      if (slots_[t] == slot) {
        adj_[t] += d;
        return;
      }
    slots_[static_cast<size_t>(n_)] = slot;
    adj_[static_cast<size_t>(n_)] = d;
    ++n_;
  }

 private:
  std::array<size_t, N> slots_{};
  std::array<int32_t, N> adj_{};
  int n_ = 0;
};

/// Cooperative cancellation for parallel multi-walk: walkers poll this every
/// `probe_interval` iterations (the paper's non-blocking MPI test every c
/// iterations). Backed by either an atomic flag (thread multi-walk) or an
/// arbitrary predicate (e.g. an MPI-style mailbox probe).
class StopToken {
 public:
  StopToken() = default;
  explicit StopToken(const std::atomic<bool>* flag) : flag_(flag) {}
  explicit StopToken(const std::function<bool()>* predicate) : predicate_(predicate) {}
  [[nodiscard]] bool stop_requested() const {
    if (flag_ != nullptr && flag_->load(std::memory_order_relaxed)) return true;
    return predicate_ != nullptr && (*predicate_)();
  }

 private:
  const std::atomic<bool>* flag_ = nullptr;
  const std::function<bool()>* predicate_ = nullptr;
};

}  // namespace cas::core
