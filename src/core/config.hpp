// Engine parameters. Defaults follow the paper's tuned Costas values
// (Sec. IV-B: RL = 1, RP = 5%) and the Adaptive Search library defaults for
// the generic knobs.
#pragma once

#include <cstdint>
#include <limits>

namespace cas::core {

struct AsConfig {
  // --- Tabu memory (Sec. III-A) ---
  // A variable with no improving/acceptable move is frozen for this many
  // iterations.
  int tabu_tenure = 10;

  // --- Plateau policy (Sec. III-B1) ---
  // Probability of accepting a sideways (equal-cost) best move instead of
  // marking the culprit variable tabu. The paper reports 90-95% works well.
  double plateau_probability = 0.93;

  // --- Reset / diversification (Sec. III-B2) ---
  // RL: as soon as this many variables are simultaneously tabu, reset.
  int reset_limit = 1;
  // RP: fraction of variables re-randomized by the generic reset.
  double reset_fraction = 0.05;
  // Use the problem's custom_reset() if it has one (Costas: Sec. IV-B).
  bool use_custom_reset = true;
  // Keep tabu marks across resets. Freezing the reset-triggering culprit
  // for its remaining tenure steers the post-reset descent away from the
  // local minimum just escaped (matches the reference AS library, where
  // marks expire only by iteration count).
  bool keep_tabu_on_reset = false;
  // After a custom reset that did not strictly improve (no "escape"), also
  // apply the generic percentage reset (at CAP sizes and RP=5% this is a
  // single random transposition). The paper's text says "the best
  // [perturbation] is selected"; taken literally that makes the reset
  // deterministic and the search can cycle between one local minimum and
  // its best perturbation forever. The reference implementation does not
  // cycle, so it must carry some residual stochasticity here; this knob is
  // our (documented) equivalent. With it, sequential iteration counts match
  // the paper's Table I closely (see EXPERIMENTS.md).
  bool hybrid_reset = true;

  // --- Restart ---
  // Full restart from a fresh random configuration after this many
  // iterations without a solution. The paper's Costas runs do not restart
  // (the reset procedure suffices), so the default is "never".
  uint64_t restart_interval = std::numeric_limits<uint64_t>::max();

  // --- Budget ---
  // Hard iteration cap; 0 means unlimited (run until solved or stopped).
  uint64_t max_iterations = 0;

  // --- Parallel probe (Sec. V-A) ---
  // Poll the stop token every this many iterations ("some non-blocking
  // tests are involved every c iterations").
  uint64_t probe_interval = 64;

  // PRNG seed for this engine instance.
  uint64_t seed = 42;
};

/// Parameters for the Dialectic Search baseline (Kadioglu & Sellmann 2009).
struct DsConfig {
  // Number of antithesis trials before a full restart from scratch.
  int max_no_improve = 8;
  // Fraction of the permutation shuffled to form the antithesis.
  double perturbation_fraction = 0.35;
  uint64_t max_iterations = 0;  // 0 = unlimited (counted in greedy passes)
  uint64_t probe_interval = 8;
  uint64_t seed = 42;
};

/// Parameters for the random-restart steepest-descent baseline.
struct HcConfig {
  uint64_t max_iterations = 0;
  uint64_t probe_interval = 64;
  uint64_t seed = 42;
};

/// Parameters for the quadratic-neighborhood Tabu Search baseline — the
/// comparator Kadioglu & Sellmann measured Dialectic Search against in
/// Comet (the paper's Sec. IV-C recounts that comparison on the CAP).
struct TsConfig {
  // A swapped pair (i, j) stays tabu for this many iterations.
  int tenure = 12;
  // Aspiration: a tabu move is allowed when it beats the best cost seen.
  bool aspiration = true;
  // Full restart after this many iterations without improving the best
  // cost (0 = never).
  uint64_t stall_restart = 2000;
  uint64_t max_iterations = 0;
  uint64_t probe_interval = 64;
  uint64_t seed = 42;
};

/// Parameters for the permutation genetic algorithm — the population-based
/// contrast to local search (Sec. V mentions population-based methods as
/// the other classical parallel metaheuristic family).
struct GaConfig {
  int population = 64;
  int tournament_k = 3;
  double crossover_probability = 0.9;
  // Probability that an offspring receives one random transposition.
  double mutation_probability = 0.35;
  int elites = 2;  // individuals copied unchanged each generation
  uint64_t max_generations = 0;  // 0 = unlimited
  uint64_t probe_interval = 8;   // probe every this many generations
  uint64_t seed = 42;
};

/// Parameters for the Rickard-Healy style stochastic search (CISS 2006) —
/// the method whose "too simple restart policy" the paper's Sec. II blames
/// for the conclusion that stochastic search cannot scale past n = 26.
struct RhConfig {
  // Restart from scratch after this many consecutive rejected moves (their
  // simple stall-triggered restart).
  int stall_limit = 500;
  // Accept a cost-equal move (random walk on plateaus).
  bool accept_equal = true;
  uint64_t max_iterations = 0;
  uint64_t probe_interval = 64;
  uint64_t seed = 42;
};

}  // namespace cas::core
