// Adaptive Search (Codognet & Diaz 2001/2003), the metaheuristic the paper
// uses to solve the Costas Array Problem. This is the base algorithm of the
// paper's Figure 1 plus the two published refinements it relies on:
// plateau moves accepted with probability p (Sec. III-B1) and the
// reset/diversification machinery with a problem-specific reset hook
// (Sec. III-B2, Sec. IV-B).
//
// One iteration:
//   1. read the per-variable error table the problem maintains across swaps
//      (problem.errors() — no from-scratch projection in the hot loop),
//   2. select the worst ("culprit") non-tabu variable via the two-pass
//      masked-argmax kernel (SIMD value pass + scalar reservoir among the
//      tied lanes — uniform, and bit-identical across ISAs),
//   3. min-conflict: fill the culprit's whole move row in one batched
//      delta_costs_row pass (native vectorized walk for problems that have
//      one, per-j pure deltas otherwise) and argmin it the same two-pass
//      way,
//   4. apply the best swap if it improves (delta < 0); follow an equal-cost
//      plateau (delta == 0) with probability p; otherwise mark the culprit
//      tabu for `tabu_tenure` iterations,
//   5. when `reset_limit` variables are tabu simultaneously, diversify:
//      problem custom reset if available, else re-shuffle `reset_fraction`
//      of the variables.
//
// The engine is a template over LocalSearchProblem: the hot loop has no
// virtual calls and no allocation after the first iteration.
#pragma once

#include <algorithm>
#include <array>
#include <cassert>
#include <limits>
#include <span>
#include <vector>

#include "core/config.hpp"
#include "core/problem.hpp"
#include "core/stats.hpp"
#include "simd/select.hpp"
#include "util/timer.hpp"

namespace cas::core {

/// The portable mid-walk state of one Adaptive Search walk — everything
/// advance_walk() reads besides the problem's own configuration. Together
/// with the permutation it reconstructs the walk bit-for-bit on any host
/// (the checkpoint/restore layer serializes it; tests pin the trajectory).
struct AsWalkState {
  std::array<uint64_t, 4> rng{};
  std::vector<uint64_t> tabu_until;
  uint64_t next_probe = 0;
  uint64_t next_restart = 0;
  RunStats stats;
};

template <LocalSearchProblem P>
class AdaptiveSearch {
 public:
  AdaptiveSearch(P& problem, AsConfig config)
      : problem_(problem), cfg_(config), rng_(config.seed) {}

  /// Randomize the configuration, then search until solved, stopped, or out
  /// of budget.
  RunStats solve(StopToken stop = {}) {
    begin_walk();
    advance_walk(0, stop);
    return walk_;
  }

  /// Search from the problem's current configuration (used by tests and by
  /// restart-free reproductions of specific runs).
  RunStats solve_from_current(StopToken stop = {}) {
    begin_walk_from_current();
    advance_walk(0, stop);
    return walk_;
  }

  // --- resumable walk surface -----------------------------------------------
  // solve() == begin_walk() + advance_walk(0): the segmented form exists so a
  // walk can pause at an iteration boundary (elastic epochs, checkpoints) and
  // continue later — on this engine instance or, via export_walk/import_walk
  // plus the permutation, on a freshly built one — with the exact trajectory
  // an uninterrupted run would have taken.

  /// Start a fresh walk: randomize, clear the tabu table, reset counters.
  void begin_walk() {
    problem_.randomize(rng_);
    begin_walk_from_current();
  }

  /// Start a walk from the problem's current configuration.
  void begin_walk_from_current() {
    walk_ = RunStats{};
    tabu_until_.assign(static_cast<size_t>(problem_.size()), 0);
    next_probe_ = cfg_.probe_interval;
    next_restart_ = cfg_.restart_interval;
  }

  /// Run the walk until solved, stopped, out of cfg_ budget, or — when
  /// `iter_budget` > 0 — until `iter_budget` MORE iterations have elapsed
  /// (the segment boundary; the walk stays resumable). Returns solved.
  /// Wall time accumulates across segments into walk_stats().wall_seconds.
  bool advance_walk(uint64_t iter_budget, StopToken stop = {}) {
    util::WallTimer timer;
    RunStats& st = walk_;
    const int n = problem_.size();
    const uint64_t iter_end = iter_budget == 0 ? 0 : st.iterations + iter_budget;

    while (problem_.cost() > 0) {
      if (cfg_.max_iterations != 0 && st.iterations >= cfg_.max_iterations) break;
      if (iter_end != 0 && st.iterations >= iter_end) break;
      if (st.iterations >= next_probe_) {
        // The paper's parallel scheme: a non-blocking "has anyone finished?"
        // test every c iterations.
        if (stop.stop_requested()) break;
        next_probe_ += cfg_.probe_interval;
      }
      if (st.iterations >= next_restart_) {
        problem_.randomize(rng_);
        std::fill(tabu_until_.begin(), tabu_until_.end(), uint64_t{0});
        ++st.restarts;
        next_restart_ += cfg_.restart_interval;
        continue;
      }
      ++st.iterations;

      const int culprit = select_culprit(st.iterations);
      if (culprit < 0) {
        // Every variable is tabu: forced diversification.
        diversify(st);
        continue;
      }

      // Min-conflict: batched scoring of the culprit against every other
      // variable (one row fill, no do/undo, no state writes), then a
      // two-pass argmin — SIMD value scan plus a scalar reservoir over the
      // tied lanes, uniform among equally good moves.
      row_.resize(static_cast<size_t>(n));
      delta_costs_row(problem_, culprit, std::span<Cost>(row_.data(), row_.size()));
      st.move_evaluations += static_cast<uint64_t>(n - 1);
      const simd::Pick move = simd::pick_min({row_.data(), row_.size()}, rng_);
      const Cost best_delta = move.value;
      const int best_j = move.index;

      if (best_j >= 0 && best_delta < 0) {
        problem_.apply_swap(culprit, best_j);
        ++st.swaps;
        continue;
      }
      if (best_j >= 0 && best_delta == 0 && rng_.chance(cfg_.plateau_probability)) {
        problem_.apply_swap(culprit, best_j);
        ++st.swaps;
        ++st.plateau_moves;
        continue;
      }
      if (best_j >= 0 && best_delta == 0) ++st.plateau_refused;

      // Local minimum for this variable: freeze it, maybe diversify.
      ++st.local_minima;
      tabu_until_[static_cast<size_t>(culprit)] = st.iterations + static_cast<uint64_t>(cfg_.tabu_tenure);
      if (count_tabu(st.iterations) >= cfg_.reset_limit) diversify(st);
    }

    st.solved = problem_.cost() == 0;
    st.final_cost = problem_.cost();
    st.wall_seconds += timer.seconds();
    if (st.solved && st.solution.empty()) {
      st.solution.resize(static_cast<size_t>(n));
      for (int i = 0; i < n; ++i) st.solution[static_cast<size_t>(i)] = problem_.value(i);
    }
    return st.solved;
  }

  /// Accumulated stats of the walk in progress (or just finished).
  [[nodiscard]] const RunStats& walk_stats() const { return walk_; }

  /// Export the walk's non-problem state (RNG, tabu, counters). The caller
  /// captures the problem's permutation separately.
  void export_walk(AsWalkState& out) const {
    out.rng = rng_.state();
    out.tabu_until = tabu_until_;
    out.next_probe = next_probe_;
    out.next_restart = next_restart_;
    out.stats = walk_;
  }

  /// Import a walk exported by export_walk. The caller must first put the
  /// problem into the configuration that was current at export time;
  /// advance_walk then continues the original trajectory exactly.
  void import_walk(const AsWalkState& s) {
    assert(s.tabu_until.size() == static_cast<size_t>(problem_.size()));
    rng_.set_state(s.rng);
    tabu_until_ = s.tabu_until;
    next_probe_ = s.next_probe;
    next_restart_ = s.next_restart;
    walk_ = s.stats;
  }

  [[nodiscard]] const AsConfig& config() const { return cfg_; }
  [[nodiscard]] Rng& rng() { return rng_; }

 private:
  /// Highest-error variable not currently tabu; ties broken uniformly.
  /// Returns -1 if all variables are tabu.
  int select_culprit(uint64_t iter) {
    // The problem maintains the projection across swaps; reading it here is
    // free for incremental models (Costas) and one cached recompute at most
    // for LazyErrors-backed ones. The masked-argmax kernel treats
    // "tabu_until[i] <= iter" as the admissibility gate.
    const std::span<const Cost> errors = problem_.errors();
    return simd::pick_max_where_le(errors, {tabu_until_.data(), tabu_until_.size()}, iter,
                                   rng_)
        .index;
  }

  int count_tabu(uint64_t iter) const {
    int c = 0;
    for (uint64_t t : tabu_until_)
      if (t > iter) ++c;
    return c;
  }

  void diversify(RunStats& st) {
    ++st.resets;
    // The reset phase is the other half of the hot loop (the ablation
    // bench puts it at ~30% of hard-instance wall time), so it is timed
    // separately — reset_seconds/reset_candidates make the batched
    // candidate pipeline observable end-to-end in every report.
    const util::WallTimer reset_timer;
    if constexpr (HasCustomReset<P>) {
      if (cfg_.use_custom_reset) {
        const bool escaped = problem_.custom_reset(rng_);
        if constexpr (requires { problem_.reset_candidates_evaluated(); })
          st.reset_candidates += static_cast<uint64_t>(problem_.reset_candidates_evaluated());
        if constexpr (requires { problem_.reset_chunks_escaped(); })
          st.reset_escape_chunks += static_cast<uint64_t>(problem_.reset_chunks_escaped());
        if (escaped)
          ++st.custom_reset_escapes;
        else if (cfg_.hybrid_reset)
          generic_reset();
        if (!cfg_.keep_tabu_on_reset) clear_tabu();
        st.reset_seconds += reset_timer.seconds();
        return;
      }
    }
    generic_reset();
    if (!cfg_.keep_tabu_on_reset) clear_tabu();
    st.reset_seconds += reset_timer.seconds();
  }

  /// Generic reset (Sec. III-B2): re-randomize ~reset_fraction of the
  /// variables. On permutation configurations this is a uniform shuffle of
  /// k selected positions, expressed as swaps so the problem's incremental
  /// bookkeeping stays valid.
  void generic_reset() {
    const int n = problem_.size();
    int k = static_cast<int>(std::max(2.0, cfg_.reset_fraction * n + 0.5));
    k = std::min(k, n);
    scratch_positions_.resize(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) scratch_positions_[static_cast<size_t>(i)] = i;
    // Partial Fisher-Yates: the first k entries become k distinct positions.
    for (int i = 0; i < k; ++i) {
      const int j = i + static_cast<int>(rng_.below(static_cast<uint64_t>(n - i)));
      std::swap(scratch_positions_[static_cast<size_t>(i)], scratch_positions_[static_cast<size_t>(j)]);
    }
    // Shuffle the values held by those k positions.
    for (int i = k - 1; i > 0; --i) {
      const int j = static_cast<int>(rng_.below(static_cast<uint64_t>(i + 1)));
      if (i != j) {
        problem_.apply_swap(scratch_positions_[static_cast<size_t>(i)],
                            scratch_positions_[static_cast<size_t>(j)]);
      }
    }
  }

  void clear_tabu() { std::fill(tabu_until_.begin(), tabu_until_.end(), uint64_t{0}); }

  P& problem_;
  AsConfig cfg_;
  Rng rng_;
  RunStats walk_;            // accumulated stats of the walk in progress
  uint64_t next_probe_ = 0;  // next stop-token probe boundary
  uint64_t next_restart_ = 0;
  std::vector<uint64_t> tabu_until_;
  std::vector<int> scratch_positions_;
  std::vector<Cost> row_;  // batched move-delta scratch, sized on first scan
};

}  // namespace cas::core
