// DoUndoAdapter — the shared fallback that lifts a "legacy" swap problem
// (apply_swap + cached cost + from-scratch compute_errors, but no pure
// delta_cost and no maintained error table) onto the full incremental
// LocalSearchProblem API:
//
//   delta_cost(i, j)  := apply the swap, read the cost, undo the swap
//   errors()          := recompute the projection on every query
//
// The adapter deliberately does NOT expose a native delta_costs_row even
// when its base has one: engines reach it through the core
// delta_costs_row() default loop (n - 1 do/undo probes), which is exactly
// the historical evaluation strategy the adapter exists to measure.
//
// Two uses:
//   1. migration aid — a new problem model becomes engine-compatible the
//      moment it has the legacy surface, and can adopt true deltas later;
//   2. the measured baseline — wrapping a model that DOES implement true
//      deltas (e.g. DoUndoAdapter<costas::CostasProblem>) reproduces the
//      historical do/undo evaluation strategy on identical model code, so
//      bench_micro_engine can report the incremental-vs-do/undo speedup
//      instead of asserting it.
//
// The do/undo probe mutates the wrapped problem and restores it before
// returning (swap-undo restores both the permutation and every counter the
// models keep), so delta_cost is logically const but NOT safe for
// concurrent readers — exactly the footgun the incremental API removes.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "core/problem.hpp"
#include "core/rng.hpp"

namespace cas::core {

/// The legacy problem surface the adapter can lift: everything in
/// LocalSearchProblem except delta_cost/cost_if_swap/errors.
template <typename B>
concept SwapRevertibleProblem = requires(B b, const B& cb, int i, int j, Rng& rng,
                                         std::span<Cost> errs) {
  { cb.size() } -> std::convertible_to<int>;
  { cb.cost() } -> std::convertible_to<Cost>;
  { cb.value(i) } -> std::convertible_to<int>;
  { b.randomize(rng) };
  { b.apply_swap(i, j) };
  { cb.compute_errors(errs) };
};

template <SwapRevertibleProblem Base>
class DoUndoAdapter {
 public:
  explicit DoUndoAdapter(Base base) : base_(std::move(base)) {}

  // --- LocalSearchProblem interface ---
  [[nodiscard]] int size() const { return base_.size(); }
  [[nodiscard]] Cost cost() const { return base_.cost(); }
  [[nodiscard]] int value(int i) const { return base_.value(i); }
  void randomize(Rng& rng) { base_.randomize(rng); }
  void apply_swap(int i, int j) { base_.apply_swap(i, j); }

  /// Do/undo probe: apply, read, undo. Restores the wrapped problem
  /// exactly (swap application is an involution on all our models), but
  /// transiently mutates it — single-threaded use only.
  [[nodiscard]] Cost delta_cost(int i, int j) const {
    Base& b = const_cast<Base&>(base_);
    const Cost before = base_.cost();
    b.apply_swap(i, j);
    const Cost after = base_.cost();
    b.apply_swap(i, j);
    return after - before;
  }
  [[nodiscard]] Cost cost_if_swap(int i, int j) const { return cost() + delta_cost(i, j); }

  /// Baseline semantics: a full from-scratch projection per query (what
  /// every engine paid per iteration before the incremental API).
  [[nodiscard]] std::span<const Cost> errors() const {
    errs_.resize(static_cast<size_t>(base_.size()));
    base_.compute_errors(std::span<Cost>(errs_.data(), errs_.size()));
    return {errs_.data(), errs_.size()};
  }
  void compute_errors(std::span<Cost> errs) const { base_.compute_errors(errs); }

  bool custom_reset(Rng& rng)
    requires HasCustomReset<Base>
  {
    return base_.custom_reset(rng);
  }

  [[nodiscard]] Base& base() { return base_; }
  [[nodiscard]] const Base& base() const { return base_; }

 private:
  Base base_;
  mutable std::vector<Cost> errs_;
};

}  // namespace cas::core
