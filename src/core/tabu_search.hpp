// Tabu Search over the quadratic (all-pairs swap) neighborhood — the
// classical comparator for the CAP. Kadioglu & Sellmann's Dialectic Search
// paper, which the paper's Sec. IV-C retells, measured DS against exactly
// this scheme implemented in Comet ("a tabu search algorithm using the
// quadratic neighborhood"). Having it here lets the baseline-gallery bench
// rank AS / DS / TS on identical hardware.
//
// Scheme: every iteration scans all n(n-1)/2 swaps, applies the best move
// that is not tabu (a recency memory on position pairs), with the standard
// aspiration criterion (a tabu move is admissible when it improves on the
// best cost seen so far). Unlike Adaptive Search there is no error
// projection: the full neighborhood is scored, which costs O(n^2) moves per
// iteration instead of AS's O(n) — the gap the paper's engine exploits.
#pragma once

#include <limits>
#include <span>
#include <vector>

#include "core/config.hpp"
#include "core/problem.hpp"
#include "core/stats.hpp"
#include "util/timer.hpp"

namespace cas::core {

template <LocalSearchProblem P>
class TabuSearch {
 public:
  TabuSearch(P& problem, TsConfig config) : problem_(problem), cfg_(config), rng_(config.seed) {}

  RunStats solve(StopToken stop = {}) {
    util::WallTimer timer;
    RunStats st;
    const int n = problem_.size();
    tabu_until_.assign(static_cast<size_t>(n) * static_cast<size_t>(n), 0);
    problem_.randomize(rng_);

    Cost best_seen = problem_.cost();
    uint64_t last_improvement = 0;
    uint64_t next_probe = cfg_.probe_interval;

    while (problem_.cost() > 0) {
      if (cfg_.max_iterations != 0 && st.iterations >= cfg_.max_iterations) break;
      if (st.iterations >= next_probe) {
        if (stop.stop_requested()) break;
        next_probe += cfg_.probe_interval;
      }
      if (cfg_.stall_restart != 0 && st.iterations - last_improvement >= cfg_.stall_restart) {
        problem_.randomize(rng_);
        std::fill(tabu_until_.begin(), tabu_until_.end(), uint64_t{0});
        best_seen = std::min(best_seen, problem_.cost());
        last_improvement = st.iterations;
        ++st.restarts;
      }
      ++st.iterations;

      // Best admissible move over the full quadratic neighborhood. For
      // problems with a native batched row (HasDeltaRow) the deltas come
      // from one delta_costs_row fill per i; everything else keeps the
      // per-pair deltas (a full-row default fill would double its work).
      // The admissibility walk (tabu memory, aspiration, uniform
      // tie-breaking) stays scalar and in the historical pair order, so
      // the selected move and the RNG stream are exactly those of the
      // per-pair scan.
      const Cost scan_base = problem_.cost();
      Cost best_cost = std::numeric_limits<Cost>::max();
      int bi = -1, bj = -1;
      int ties = 0;
      if constexpr (HasDeltaRow<P>) row_.resize(static_cast<size_t>(n));
      for (int i = 0; i < n - 1; ++i) {
        if constexpr (HasDeltaRow<P>)
          delta_costs_row(problem_, i, std::span<Cost>(row_.data(), row_.size()));
        st.move_evaluations += static_cast<uint64_t>(n - 1 - i);
        for (int j = i + 1; j < n; ++j) {
          Cost delta;
          if constexpr (HasDeltaRow<P>)
            delta = row_[static_cast<size_t>(j)];
          else
            delta = problem_.delta_cost(i, j);
          const Cost c = scan_base + delta;
          const bool tabu = tabu_until_[pair_index(i, j)] > st.iterations;
          const bool aspirated = cfg_.aspiration && c < best_seen;
          if (tabu && !aspirated) continue;
          if (c < best_cost) {
            best_cost = c;
            bi = i;
            bj = j;
            ties = 1;
          } else if (c == best_cost) {
            ++ties;
            if (rng_.below(static_cast<uint64_t>(ties)) == 0) {
              bi = i;
              bj = j;
            }
          }
        }
      }

      if (bi < 0) {
        // Every move tabu and none aspirated: take a uniformly random swap
        // (the standard fallback; keeps the walk alive).
        bi = static_cast<int>(rng_.below(static_cast<uint64_t>(n)));
        bj = static_cast<int>(rng_.below(static_cast<uint64_t>(n - 1)));
        if (bj >= bi) ++bj;
        best_cost = scan_base + problem_.delta_cost(bi, bj);
      }

      const Cost before = problem_.cost();
      problem_.apply_swap(bi, bj);
      ++st.swaps;
      tabu_until_[pair_index(bi, bj)] = st.iterations + static_cast<uint64_t>(cfg_.tenure);
      if (best_cost >= before) ++st.local_minima;
      if (problem_.cost() < best_seen) {
        best_seen = problem_.cost();
        last_improvement = st.iterations;
      }
    }

    st.solved = problem_.cost() == 0;
    st.final_cost = problem_.cost();
    st.wall_seconds = timer.seconds();
    if (st.solved) {
      st.solution.resize(static_cast<size_t>(n));
      for (int i = 0; i < n; ++i) st.solution[static_cast<size_t>(i)] = problem_.value(i);
    }
    return st;
  }

 private:
  [[nodiscard]] size_t pair_index(int i, int j) const {
    if (i > j) std::swap(i, j);
    return static_cast<size_t>(i) * static_cast<size_t>(problem_.size()) + static_cast<size_t>(j);
  }

  P& problem_;
  TsConfig cfg_;
  Rng rng_;
  std::vector<uint64_t> tabu_until_;
  std::vector<Cost> row_;  // batched move-delta scratch
};

}  // namespace cas::core
