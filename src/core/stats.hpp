// Run statistics reported by every engine. Table I of the paper reports
// time, iterations and local minima; we track the full breakdown so the
// ablation benches can also verify the ~32% early-escape rate of the custom
// reset (Sec. IV-B) and plateau behaviour (Sec. III-B1).
#pragma once

#include <cstdint>
#include <vector>

namespace cas::core {

struct RunStats {
  bool solved = false;
  int64_t final_cost = -1;

  uint64_t iterations = 0;
  uint64_t swaps = 0;             // improving + plateau moves applied
  uint64_t local_minima = 0;      // iterations where no move improved
  uint64_t plateau_moves = 0;     // sideways moves taken
  uint64_t plateau_refused = 0;   // sideways move available but declined
  uint64_t resets = 0;            // diversification events
  uint64_t custom_reset_escapes = 0;  // custom reset found strict improvement
  uint64_t restarts = 0;
  uint64_t move_evaluations = 0;  // candidate swaps scored
  // Reset-phase observability (the batched-reset pipeline's end-to-end
  // counters): wall time spent inside diversification, the candidate
  // configurations the problem's custom reset examined, and the kernel
  // chunks its batched walk aborted early against the shared bound.
  uint64_t reset_candidates = 0;
  uint64_t reset_escape_chunks = 0;
  double reset_seconds = 0.0;

  double wall_seconds = 0.0;

  std::vector<int> solution;  // valid iff solved
};

}  // namespace cas::core
