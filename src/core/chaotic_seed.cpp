#include "core/chaotic_seed.hpp"

#include <cmath>

#include "core/rng.hpp"

namespace cas::core {

namespace {

// Piecewise linear chaotic map (skew tent): full measure-preserving chaos on
// (0,1) for control parameter p in (0,1), with uniform invariant density.
//   F(x) = x/p            if x <  p
//        = (1-x)/(1-p)    if x >= p
double plcm(double x, double p) { return x < p ? x / p : (1.0 - x) / (1.0 - p); }

// Keep orbits strictly inside (0,1): floating-point rounding can pin an
// orbit to 0 or 1, which are fixed points of the map.
double clamp_open(double x) {
  constexpr double kEps = 1e-12;
  if (!(x > kEps)) return kEps + 1e-13;        // also catches NaN
  if (!(x < 1.0 - kEps)) return 1.0 - kEps;
  return x;
}

}  // namespace

ChaoticSeedSequence::ChaoticSeedSequence(uint64_t master_seed) {
  SplitMix64 sm(master_seed);
  // Derive initial orbit points and control parameters from the master seed.
  for (int i = 0; i < 3; ++i) {
    x_[i] = clamp_open(static_cast<double>(sm.next() >> 11) * 0x1.0p-53);
    // Control parameters in (0.05, 0.45): away from the degenerate edges and
    // from p = 0.5 (where the tent map has a marginally stable structure).
    p_[i] = 0.05 + 0.4 * static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
  }
  mix_ = sm.next();
  // Discard the transient so seeds do not reflect the initial conditions.
  for (int i = 0; i < 64; ++i) step();
}

void ChaoticSeedSequence::step() {
  // Advance the three orbits and couple them Trident-style: each orbit is
  // perturbed by a small multiple of its neighbour, which prevents the
  // individual maps from collapsing onto short periodic cycles in floating
  // point (the known weakness of uncoupled digital chaos).
  double y[3];
  for (int i = 0; i < 3; ++i) y[i] = plcm(x_[i], p_[i]);
  constexpr double kCouple = 0x1.0p-16;
  for (int i = 0; i < 3; ++i) {
    double v = y[i] + kCouple * y[(i + 1) % 3];
    if (v >= 1.0) v -= 1.0;
    x_[i] = clamp_open(v);
  }
}

uint64_t ChaoticSeedSequence::next() {
  step();
  // Harvest 53 mantissa bits from each orbit and whiten. The whitening pass
  // (splitmix64 finalizer) removes the residual structure of the map while
  // preserving the decorrelation the chaotic orbits provide.
  const uint64_t a = static_cast<uint64_t>(x_[0] * 0x1.0p53);
  const uint64_t b = static_cast<uint64_t>(x_[1] * 0x1.0p53);
  const uint64_t c = static_cast<uint64_t>(x_[2] * 0x1.0p53);
  uint64_t z = a ^ (b << 5) ^ (c << 11) ^ (mix_ += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::vector<uint64_t> ChaoticSeedSequence::generate(uint64_t master_seed, size_t n) {
  ChaoticSeedSequence seq(master_seed);
  std::vector<uint64_t> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(seq.next());
  return out;
}

}  // namespace cas::core
