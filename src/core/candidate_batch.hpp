// CandidateBatch — the SoA buffer behind batched candidate evaluation
// (the restart half of the engine hot path, mirroring the batch-of-
// configurations formulation of the Cell-BE parallel local search kernels).
//
// A batch holds up to `capacity` candidate configurations of `size`
// variables COLUMN-MAJOR: for every variable index i the values of all
// candidates sit contiguously (values[i * lane_stride + c]), so a kernel
// walking the difference triangle loads one position of 4/8 candidates
// with a single vector load — no gathers, no per-candidate pointer chase.
// The lane stride is padded to a full vector block (8 int32 lanes), which
// lets kernels always read whole blocks; lanes beyond count() hold stale
// but initialized values and their results are discarded by the caller.
//
// The buffer is built for reuse: reset() keeps the allocation whenever the
// (size, capacity) footprint fits, so a hot reset loop that appends ~2n+7
// candidates per diversification is allocation-free after warmup (the
// reset micro bench asserts exactly that).
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace cas::core {

class CandidateBatch {
 public:
  /// Lanes per padded block: kernels may read (but never interpret) up to
  /// this many candidates at once, so lane_stride() is a multiple of it.
  static constexpr int kLaneBlock = 8;

  CandidateBatch() = default;

  /// Start a fresh batch of `size`-variable candidates with room for
  /// `capacity` of them. Reuses the existing allocation when it is large
  /// enough; existing candidates are discarded either way.
  void reset(int size, int capacity) {
    if (size < 0 || capacity < 0)
      throw std::invalid_argument("CandidateBatch::reset: negative size/capacity");
    n_ = size;
    stride_ = static_cast<size_t>((capacity + kLaneBlock - 1) / kLaneBlock) *
              static_cast<size_t>(kLaneBlock);
    if (stride_ == 0) stride_ = static_cast<size_t>(kLaneBlock);
    const size_t need = static_cast<size_t>(n_) * stride_;
    if (values_.size() < need) values_.resize(need, 0);
    count_ = 0;
  }

  /// Append a candidate initialized to `base` (base.size() == size());
  /// returns its lane index. Tweak individual entries with set() afterwards
  /// — cheaper than staging the transformed configuration in a scratch
  /// vector first.
  int append(std::span<const int> base) {
    if (static_cast<int>(base.size()) != n_)
      throw std::invalid_argument("CandidateBatch::append: size mismatch");
    if (static_cast<size_t>(count_) >= stride_)
      throw std::length_error("CandidateBatch::append: capacity exhausted");
    const int lane = count_++;
    for (int i = 0; i < n_; ++i)
      values_[static_cast<size_t>(i) * stride_ + static_cast<size_t>(lane)] =
          static_cast<int32_t>(base[static_cast<size_t>(i)]);
    return lane;
  }

  void set(int lane, int i, int32_t v) {
    values_[static_cast<size_t>(i) * stride_ + static_cast<size_t>(lane)] = v;
  }
  [[nodiscard]] int32_t get(int lane, int i) const {
    return values_[static_cast<size_t>(i) * stride_ + static_cast<size_t>(lane)];
  }

  /// Copy candidate `lane` into `out` (size() entries).
  void extract(int lane, std::span<int> out) const {
    for (int i = 0; i < n_; ++i)
      out[static_cast<size_t>(i)] = static_cast<int>(get(lane, i));
  }

  [[nodiscard]] int size() const { return n_; }
  [[nodiscard]] int count() const { return count_; }
  /// Distance (in lanes) between consecutive variable columns — a multiple
  /// of kLaneBlock.
  [[nodiscard]] size_t lane_stride() const { return stride_; }
  /// Column-major storage: data()[i * lane_stride() + c].
  [[nodiscard]] const int32_t* data() const { return values_.data(); }

 private:
  int n_ = 0;
  int count_ = 0;
  size_t stride_ = 0;
  std::vector<int32_t> values_;
};

}  // namespace cas::core
