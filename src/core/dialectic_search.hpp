// Dialectic Search (Kadioglu & Sellmann, CP 2009) — the local-search
// baseline the paper compares Adaptive Search against (Table II).
//
// Reimplemented from the published description for permutation problems:
//   thesis      T: a local optimum (greedy first-improvement descent),
//   antithesis  A: T with a random fraction of positions shuffled,
//   synthesis   S: greedy walk from T to A (each step swaps one disagreeing
//                  position into agreement with A, choosing the cheapest
//                  step); the best configuration seen along the walk is
//                  descended again and adopted if it improves on T.
// After `max_no_improve` fruitless antitheses, restart from scratch.
//
// The engine only uses the LocalSearchProblem interface, so it runs on any
// model in this repo; the paper's Table II uses it on Costas.
#pragma once

#include <limits>
#include <vector>

#include "core/config.hpp"
#include "core/problem.hpp"
#include "core/stats.hpp"
#include "util/timer.hpp"

namespace cas::core {

template <LocalSearchProblem P>
class DialecticSearch {
 public:
  DialecticSearch(P& problem, DsConfig config)
      : problem_(problem), cfg_(config), rng_(config.seed) {}

  RunStats solve(StopToken stop = {}) {
    util::WallTimer timer;
    RunStats st;
    const int n = problem_.size();

    problem_.randomize(rng_);
    greedy_descent(st, stop);

    int no_improve = 0;
    while (problem_.cost() > 0 && !should_stop(st, stop)) {
      // Thesis snapshot.
      const Cost thesis_cost = problem_.cost();
      snapshot(thesis_);

      // Antithesis: shuffle a random window of positions.
      make_antithesis();

      // Synthesis: walk current (== thesis) toward antithesis_, tracking the
      // best configuration encountered.
      Cost best_cost = thesis_cost;
      snapshot(best_);
      synthesis_walk(best_cost, st, stop);

      // Descend from the best point on the path.
      restore(best_);
      greedy_descent(st, stop);

      if (problem_.cost() < thesis_cost) {
        no_improve = 0;  // adopt as new thesis (already in place)
      } else {
        ++no_improve;
        restore(thesis_);
        if (no_improve >= cfg_.max_no_improve) {
          ++st.restarts;
          problem_.randomize(rng_);
          greedy_descent(st, stop);
          no_improve = 0;
        }
      }
    }

    st.solved = problem_.cost() == 0;
    st.final_cost = problem_.cost();
    st.wall_seconds = timer.seconds();
    if (st.solved) {
      st.solution.resize(static_cast<size_t>(n));
      for (int i = 0; i < n; ++i) st.solution[static_cast<size_t>(i)] = problem_.value(i);
    }
    return st;
  }

 private:
  bool should_stop(RunStats& st, StopToken stop) {
    if (cfg_.max_iterations != 0 && st.iterations >= cfg_.max_iterations) return true;
    if (st.iterations >= next_probe_) {
      next_probe_ += cfg_.probe_interval;
      if (stop.stop_requested()) return true;
    }
    return false;
  }

  /// First-improvement descent to a local optimum. One `iteration` = one
  /// full sweep over all position pairs.
  void greedy_descent(RunStats& st, StopToken stop) {
    const int n = problem_.size();
    bool improved = true;
    while (improved && problem_.cost() > 0) {
      if (should_stop(st, stop)) return;
      ++st.iterations;
      improved = false;
      for (int i = 0; i < n - 1; ++i) {
        for (int j = i + 1; j < n; ++j) {
          ++st.move_evaluations;
          if (problem_.delta_cost(i, j) < 0) {
            problem_.apply_swap(i, j);
            ++st.swaps;
            improved = true;
          }
        }
      }
    }
    if (!improved) ++st.local_minima;
  }

  void make_antithesis() {
    const int n = problem_.size();
    snapshot(antithesis_);
    int k = std::max(3, static_cast<int>(cfg_.perturbation_fraction * n + 0.5));
    k = std::min(k, n);
    const int start = static_cast<int>(rng_.below(static_cast<uint64_t>(n - k + 1)));
    // Shuffle the window [start, start+k) of the antithesis target.
    for (int i = k - 1; i > 0; --i) {
      const int j = static_cast<int>(rng_.below(static_cast<uint64_t>(i + 1)));
      std::swap(antithesis_[static_cast<size_t>(start + i)], antithesis_[static_cast<size_t>(start + j)]);
    }
  }

  /// Greedy path from the current configuration to antithesis_.
  void synthesis_walk(Cost& best_cost, RunStats& st, StopToken stop) {
    const int n = problem_.size();
    build_position_index();
    while (!should_stop(st, stop)) {
      // Candidate steps: for each disagreeing position i, swap i with the
      // position currently holding the antithesis value of i.
      // Deltas are all relative to the same (scan-constant) current cost,
      // so comparing deltas picks the cheapest step.
      Cost step_best = std::numeric_limits<Cost>::max();
      int bi = -1, bj = -1;
      for (int i = 0; i < n; ++i) {
        const int want = antithesis_[static_cast<size_t>(i)];
        if (problem_.value(i) == want) continue;
        const int j = pos_of_value_[static_cast<size_t>(value_key(want))];
        const Cost d = problem_.delta_cost(i, j);
        ++st.move_evaluations;
        if (d < step_best) {
          step_best = d;
          bi = i;
          bj = j;
        }
      }
      if (bi < 0) break;  // reached the antithesis
      apply_indexed_swap(bi, bj);
      ++st.swaps;
      if (problem_.cost() < best_cost) {
        best_cost = problem_.cost();
        snapshot(best_);
      }
      if (problem_.cost() == 0) break;
    }
  }

  // --- configuration snapshots (values are distinct across positions for
  // all models in this repo, so a value -> position index is well defined) ---

  void snapshot(std::vector<int>& out) {
    const int n = problem_.size();
    out.resize(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) out[static_cast<size_t>(i)] = problem_.value(i);
  }

  /// Rebuild the current configuration into `target` using swaps only, so
  /// the problem's incremental state stays consistent.
  void restore(const std::vector<int>& target) {
    const int n = problem_.size();
    build_position_index();
    for (int i = 0; i < n; ++i) {
      const int want = target[static_cast<size_t>(i)];
      if (problem_.value(i) == want) continue;
      const int j = pos_of_value_[static_cast<size_t>(value_key(want))];
      apply_indexed_swap(i, j);
    }
  }

  void build_position_index() {
    const int n = problem_.size();
    int max_key = 0;
    for (int i = 0; i < n; ++i) max_key = std::max(max_key, value_key(problem_.value(i)));
    pos_of_value_.assign(static_cast<size_t>(max_key) + 1, -1);
    for (int i = 0; i < n; ++i)
      pos_of_value_[static_cast<size_t>(value_key(problem_.value(i)))] = i;
  }

  void apply_indexed_swap(int i, int j) {
    problem_.apply_swap(i, j);
    pos_of_value_[static_cast<size_t>(value_key(problem_.value(i)))] = i;
    pos_of_value_[static_cast<size_t>(value_key(problem_.value(j)))] = j;
  }

  static int value_key(int v) { return v; }  // values are small non-negative ints

  P& problem_;
  DsConfig cfg_;
  Rng rng_;
  uint64_t next_probe_ = 0;
  std::vector<int> thesis_;
  std::vector<int> antithesis_;
  std::vector<int> best_;
  std::vector<int> pos_of_value_;
};

}  // namespace cas::core
