// Chaotic-map seed sequencer (paper Sec. III-B3).
//
// The paper generates per-process seeds "via a pseudo-random number
// generator based on a linear chaotic map ... implemented for cryptographic
// systems, like Trident [Orue et al. 2010]". Trident couples three piecewise
// linear chaotic maps (PLCMs) and mixes their orbits.
//
// We reproduce that construction: three skew-tent PLCM orbits with distinct
// control parameters, advanced in lockstep, cross-perturbed, and whitened
// into 64-bit seeds. The goal (as in the paper) is a seed stream with robust
// equidistribution so thousands of walkers start decorrelated.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cas::core {

class ChaoticSeedSequence {
 public:
  /// Deterministic: the same master seed yields the same seed stream.
  explicit ChaoticSeedSequence(uint64_t master_seed);

  /// Next 64-bit seed.
  uint64_t next();

  /// Convenience: the first `n` seeds of a fresh sequence.
  static std::vector<uint64_t> generate(uint64_t master_seed, size_t n);

  /// Current orbit positions (for tests: all must stay inside (0,1)).
  [[nodiscard]] const double* orbits() const { return x_; }

 private:
  void step();

  double x_[3];   // PLCM orbit states, each in (0,1)
  double p_[3];   // PLCM control parameters, each in (0,0.5)
  uint64_t mix_;  // whitening state
};

}  // namespace cas::core
