// A Rickard-Healy style stochastic search (CISS 2006), reconstructed from
// the paper's Sec. II account: random transposition moves accepted when
// they do not worsen the cost, with a stall-triggered full restart — the
// "restart policy which is too simple" the paper blames for their negative
// conclusion ("such methods are unlikely to succeed for n > 26"). The
// baseline-gallery bench shows exactly the failure mode the paper predicts:
// within a fixed budget this walk's success rate collapses at sizes where
// Adaptive Search still solves every run.
//
// Scheme per iteration: draw a uniformly random pair (i, j), score the
// swap; apply it when the cost strictly improves (or stays equal, when
// accept_equal is on). After stall_limit consecutive rejected moves the
// search restarts from a fresh random configuration, discarding all
// progress — the defect that makes deep basins unreachable.
#pragma once

#include "core/config.hpp"
#include "core/problem.hpp"
#include "core/stats.hpp"
#include "util/timer.hpp"

namespace cas::core {

template <LocalSearchProblem P>
class RickardHealySearch {
 public:
  RickardHealySearch(P& problem, RhConfig config)
      : problem_(problem), cfg_(config), rng_(config.seed) {}

  RunStats solve(StopToken stop = {}) {
    util::WallTimer timer;
    RunStats st;
    const int n = problem_.size();
    problem_.randomize(rng_);

    int stalled = 0;
    uint64_t next_probe = cfg_.probe_interval;
    while (problem_.cost() > 0) {
      if (cfg_.max_iterations != 0 && st.iterations >= cfg_.max_iterations) break;
      if (st.iterations >= next_probe) {
        if (stop.stop_requested()) break;
        next_probe += cfg_.probe_interval;
      }
      ++st.iterations;

      const int i = static_cast<int>(rng_.below(static_cast<uint64_t>(n)));
      int j = static_cast<int>(rng_.below(static_cast<uint64_t>(n - 1)));
      if (j >= i) ++j;
      const Cost delta = problem_.delta_cost(i, j);
      ++st.move_evaluations;

      const bool accept = delta < 0 || (cfg_.accept_equal && delta == 0);
      if (accept) {
        problem_.apply_swap(i, j);
        ++st.swaps;
        if (delta == 0) ++st.plateau_moves;
        if (delta < 0) stalled = 0;
      } else {
        ++stalled;
        if (stalled >= cfg_.stall_limit) {
          // The too-simple restart: throw everything away.
          problem_.randomize(rng_);
          ++st.restarts;
          ++st.local_minima;
          stalled = 0;
        }
      }
    }

    st.solved = problem_.cost() == 0;
    st.final_cost = problem_.cost();
    st.wall_seconds = timer.seconds();
    if (st.solved) {
      st.solution.resize(static_cast<size_t>(n));
      for (int i = 0; i < n; ++i) st.solution[static_cast<size_t>(i)] = problem_.value(i);
    }
    return st;
  }

 private:
  P& problem_;
  RhConfig cfg_;
  Rng rng_;
};

}  // namespace cas::core
