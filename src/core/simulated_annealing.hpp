// Simulated annealing over swap moves — the classic metaheuristic the
// paper's related-work section contrasts with (Pardalos et al.'s parallel
// SA, and the Rickard & Healy stochastic search whose failure on CAP for
// n > 26 motivates the paper's Sec. II discussion). Serves as an extra
// baseline for the solver-comparison benches and as another client of the
// LocalSearchProblem concept.
//
// Geometric cooling with reheating: temperature T is multiplied by `alpha`
// every `moves_per_temperature` proposals; when it freezes without a
// solution the schedule restarts from a fresh random configuration (the
// "too simple restart policy" pitfall the paper quotes is avoided by
// restarting aggressively).
#pragma once

#include <cmath>

#include "core/config.hpp"
#include "core/problem.hpp"
#include "core/stats.hpp"
#include "util/timer.hpp"

namespace cas::core {

struct SaConfig {
  double initial_temperature = 0;  // 0 = auto-calibrate from random moves
  double alpha = 0.97;             // geometric cooling factor
  int moves_per_temperature = 0;   // 0 = auto (n^2 proposals per level)
  double freeze_temperature = 1e-3;
  uint64_t max_iterations = 0;  // proposals; 0 = unlimited
  uint64_t probe_interval = 1024;
  uint64_t seed = 42;
};

template <LocalSearchProblem P>
class SimulatedAnnealing {
 public:
  SimulatedAnnealing(P& problem, SaConfig config)
      : problem_(problem), cfg_(config), rng_(config.seed) {}

  RunStats solve(StopToken stop = {}) {
    util::WallTimer timer;
    RunStats st;
    const int n = problem_.size();
    const int moves_per_level =
        cfg_.moves_per_temperature > 0 ? cfg_.moves_per_temperature : n * n;

    problem_.randomize(rng_);
    double temperature = cfg_.initial_temperature > 0 ? cfg_.initial_temperature
                                                      : calibrate_temperature();
    const double t0 = temperature;
    int level_moves = 0;
    uint64_t next_probe = cfg_.probe_interval;

    while (problem_.cost() > 0) {
      if (cfg_.max_iterations != 0 && st.iterations >= cfg_.max_iterations) break;
      if (st.iterations >= next_probe) {
        if (stop.stop_requested()) break;
        next_probe += cfg_.probe_interval;
      }
      ++st.iterations;

      const int i = static_cast<int>(rng_.below(static_cast<uint64_t>(n)));
      int j = static_cast<int>(rng_.below(static_cast<uint64_t>(n)));
      if (j == i) j = (j + 1) % n;
      ++st.move_evaluations;
      const double delta = static_cast<double>(problem_.delta_cost(i, j));
      if (delta <= 0 || rng_.uniform01() < std::exp(-delta / temperature)) {
        problem_.apply_swap(i, j);
        ++st.swaps;
        if (delta > 0) ++st.plateau_moves;  // uphill acceptances, repurposed counter
      }

      if (++level_moves >= moves_per_level) {
        level_moves = 0;
        temperature *= cfg_.alpha;
        if (temperature < cfg_.freeze_temperature) {
          // Frozen without a solution: restart the schedule.
          ++st.restarts;
          problem_.randomize(rng_);
          temperature = t0;
        }
      }
    }

    st.solved = problem_.cost() == 0;
    st.final_cost = problem_.cost();
    st.wall_seconds = timer.seconds();
    if (st.solved) {
      st.solution.resize(static_cast<size_t>(n));
      for (int i = 0; i < n; ++i) st.solution[static_cast<size_t>(i)] = problem_.value(i);
    }
    return st;
  }

 private:
  /// Standard warm-up: sample random swaps and set T0 so an average uphill
  /// move is accepted with probability ~0.8.
  double calibrate_temperature() {
    const int n = problem_.size();
    double uphill_sum = 0;
    int uphill = 0;
    for (int t = 0; t < 100; ++t) {
      const int i = static_cast<int>(rng_.below(static_cast<uint64_t>(n)));
      int j = static_cast<int>(rng_.below(static_cast<uint64_t>(n)));
      if (j == i) j = (j + 1) % n;
      const Cost delta = problem_.delta_cost(i, j);
      if (delta > 0) {
        uphill_sum += static_cast<double>(delta);
        ++uphill;
      }
    }
    const double mean_uphill = uphill > 0 ? uphill_sum / uphill : 1.0;
    return -mean_uphill / std::log(0.8);
  }

  P& problem_;
  SaConfig cfg_;
  Rng rng_;
};

}  // namespace cas::core
