// Random-restart steepest-descent — the naive baseline. Each step applies
// the best swap over all pairs; at a local minimum it restarts from a fresh
// random configuration. Used in tests and as the "no metaheuristic" control
// in ablation benches (the paper's Sec. II cites Rickard & Healy's
// conclusion that plain stochastic search stalls on Costas — this baseline
// lets us observe exactly that).
#pragma once

#include <limits>
#include <span>
#include <vector>

#include "core/config.hpp"
#include "core/problem.hpp"
#include "core/stats.hpp"
#include "util/timer.hpp"

namespace cas::core {

template <LocalSearchProblem P>
class HillClimber {
 public:
  HillClimber(P& problem, HcConfig config) : problem_(problem), cfg_(config), rng_(config.seed) {}

  RunStats solve(StopToken stop = {}) {
    util::WallTimer timer;
    RunStats st;
    const int n = problem_.size();
    problem_.randomize(rng_);

    uint64_t next_probe = cfg_.probe_interval;
    while (problem_.cost() > 0) {
      if (cfg_.max_iterations != 0 && st.iterations >= cfg_.max_iterations) break;
      if (st.iterations >= next_probe) {
        if (stop.stop_requested()) break;
        next_probe += cfg_.probe_interval;
      }
      ++st.iterations;

      // Full quadratic neighborhood. Problems with a native batched row
      // (HasDeltaRow) fill one delta_costs_row per i — the fill scores all
      // n - 1 lanes but the per-lane batch is cheap enough that it beats
      // the half-row scalar scan; everything else keeps the historical
      // upper-triangle per-pair loop (a full-row default fill would double
      // its work). Selection order matches the historical (i, j) pair loop
      // exactly in both paths, so the chosen move is unchanged.
      Cost best_delta = std::numeric_limits<Cost>::max();
      int bi = -1, bj = -1;
      if constexpr (HasDeltaRow<P>) row_.resize(static_cast<size_t>(n));
      for (int i = 0; i < n - 1; ++i) {
        if constexpr (HasDeltaRow<P>)
          delta_costs_row(problem_, i, std::span<Cost>(row_.data(), row_.size()));
        st.move_evaluations += static_cast<uint64_t>(n - 1 - i);
        for (int j = i + 1; j < n; ++j) {
          Cost d;
          if constexpr (HasDeltaRow<P>)
            d = row_[static_cast<size_t>(j)];
          else
            d = problem_.delta_cost(i, j);
          if (d < best_delta) {
            best_delta = d;
            bi = i;
            bj = j;
          }
        }
      }
      if (best_delta < 0) {
        problem_.apply_swap(bi, bj);
        ++st.swaps;
      } else {
        ++st.local_minima;
        ++st.restarts;
        problem_.randomize(rng_);
      }
    }

    st.solved = problem_.cost() == 0;
    st.final_cost = problem_.cost();
    st.wall_seconds = timer.seconds();
    if (st.solved) {
      st.solution.resize(static_cast<size_t>(n));
      for (int i = 0; i < n; ++i) st.solution[static_cast<size_t>(i)] = problem_.value(i);
    }
    return st;
  }

 private:
  P& problem_;
  HcConfig cfg_;
  Rng rng_;
  std::vector<Cost> row_;  // batched move-delta scratch
};

}  // namespace cas::core
