// Batched Costas-model kernels: the difference-triangle walks behind
// CostasProblem::delta_costs_row (fill the move deltas of a culprit
// against every other variable in one pass over the triangle rows) and
// CostasProblem::compute_errors (the from-scratch per-variable error
// projection).
//
// The model hands its internal tables over through CostasCtx — raw
// pointers, no ownership — so the intrinsics stay out of src/costas/ and
// the kernels stay testable on synthetic tables. Both kernels are exact:
// every count interaction a swap's removals/additions can have inside one
// triangle row is resolved with the same ledger arithmetic the scalar
// delta uses, and the parity fuzz suite pins batched == per-j scalar for
// every lane.
#pragma once

#include <cstdint>
#include <cstddef>

#include "simd/simd.hpp"

namespace cas::simd {

/// Read-only view of the CostasProblem tables a kernel needs.
struct CostasCtx {
  const int* perm;        // permutation, n entries, values 1..n
  const int32_t* occ;     // difference-triangle occurrence counts,
                          // depth rows x stride slots (diff + n - 1)
  const int64_t* errw;    // errw[d], d = 1..depth (index 0 unused)
  int n = 0;
  int depth = 0;          // checked triangle rows
  size_t stride = 0;      // 2n - 1
};

/// Sentinel parked in out[i] (the self-swap lane) by costas_delta_row, so
/// a plain minimum over the filled row can never pick the culprit itself.
/// Mirrors core::kExcludedDelta; redeclared here to keep src/simd/ free of
/// core dependencies (static_asserted equal in the model).
inline constexpr int64_t kDeltaRowExcluded = INT64_MAX;

/// Fill out[j] with the exact cost delta of swapping variables i and j for
/// every j != i; out[i] = kDeltaRowExcluded. Exactly equivalent to calling
/// the scalar per-j delta n - 1 times, but walks each triangle row once.
void costas_delta_row(const CostasCtx& ctx, int i, int64_t* out);

/// From-scratch per-variable error projection into errs (n entries): each
/// colliding checked pair adds its row weight to both endpoints.
void costas_errors(const CostasCtx& ctx, int64_t* errs);

/// Batched stateless evaluation of `count` candidate permutations stored
/// COLUMN-MAJOR in `values` (values[i * lane_stride + c] = candidate c's
/// value at position i; lane_stride a multiple of 8, padded lanes hold
/// initialized garbage). Uses ctx only for n / depth / errw — the live occ
/// tables play no part in a from-scratch evaluation.
///
/// Candidates are processed in fixed 8-lane chunks, each chunk walking the
/// difference triangle row by row with all lanes in flight (vectorized
/// when a backend is active, a bit-identical scalar batch otherwise). One
/// best-so-far bound is shared across chunks:
///   * a chunk aborts once EVERY lane's partial cost has reached the
///     bound (costs only grow row by row, so none of its candidates can
///     win any more); aborted lanes report their partial sums;
///   * a completed chunk tightens the bound to its best exact cost.
/// The chunking, row order, and abort points are ISA-independent, so the
/// filled out[] is bit-identical under every backend.
///
/// `escape_below` (optional, INT64_MIN disables): stop after the first
/// chunk that completed with some exact cost < escape_below — the caller
/// is hunting the FIRST such candidate (the custom reset's early-escape
/// rule) and anything past its chunk is dead work. Returns the number of
/// leading candidates whose out[] entries were filled (== count unless an
/// escape stopped the walk early).
///
/// `escaped_chunks` (optional): set to the number of chunks whose triangle
/// walk aborted before the last row because every live lane had reached
/// the shared bound — the dead work the pruning avoided. The count is
/// ISA-independent (chunking and abort points are part of the contract),
/// so it is usable as trajectory-stable telemetry.
int costas_evaluate_batch(const CostasCtx& ctx, const int32_t* values, size_t lane_stride,
                          int count, int64_t bound, int64_t* out,
                          int64_t escape_below = INT64_MIN, int* escaped_chunks = nullptr);

}  // namespace cas::simd
