// NEON backend (aarch64 baseline; 2-lane int64 reductions). NEON has no
// 64-bit integer min/max instruction, so lanes are selected through
// compare + bit-select. Compiled only when CMake enables it
// (CAS_SIMD_NEON); a no-op otherwise.
#if defined(CAS_SIMD_NEON)

#include <arm_neon.h>

#include <cstdint>
#include <limits>

#include "simd/backends.hpp"

namespace cas::simd::detail {

int64_t min_value_neon(const int64_t* v, int n) {
  int64x2_t best = vdupq_n_s64(std::numeric_limits<int64_t>::max());
  int k = 0;
  for (; k + 2 <= n; k += 2) {
    const int64x2_t x = vld1q_s64(v + k);
    best = vbslq_s64(vcgtq_s64(x, best), best, x);  // lane-wise min
  }
  int64_t out = vgetq_lane_s64(best, 0);
  const int64_t out1 = vgetq_lane_s64(best, 1);
  if (out1 < out) out = out1;
  for (; k < n; ++k)
    if (v[k] < out) out = v[k];
  return out;
}

int64_t max_value_where_le_neon(const int64_t* v, const uint64_t* gate, uint64_t bound,
                                int n, bool* any) {
  const uint64x2_t vbound = vdupq_n_u64(bound);
  int64x2_t best = vdupq_n_s64(std::numeric_limits<int64_t>::min());
  uint64x2_t anyv = vdupq_n_u64(0);
  int k = 0;
  for (; k + 2 <= n; k += 2) {
    const uint64x2_t pass = vcleq_u64(vld1q_u64(gate + k), vbound);
    anyv = vorrq_u64(anyv, pass);
    const int64x2_t x = vld1q_s64(v + k);
    const int64x2_t cand = vbslq_s64(pass, x, best);
    best = vbslq_s64(vcgtq_s64(best, cand), best, cand);  // lane-wise max
  }
  int64_t out = vgetq_lane_s64(best, 0);
  const int64_t out1 = vgetq_lane_s64(best, 1);
  if (out1 > out) out = out1;
  bool found = (vgetq_lane_u64(anyv, 0) | vgetq_lane_u64(anyv, 1)) != 0;
  for (; k < n; ++k) {
    if (gate[k] > bound) continue;
    found = true;
    if (v[k] > out) out = v[k];
  }
  if (any != nullptr) *any = found;
  return out;
}

}  // namespace cas::simd::detail

#endif  // CAS_SIMD_NEON
