// NEON backend (aarch64 baseline; 2-lane int64 reductions). NEON has no
// 64-bit integer min/max instruction, so lanes are selected through
// compare + bit-select. Compiled only when CMake enables it
// (CAS_SIMD_NEON); a no-op otherwise.
#if defined(CAS_SIMD_NEON)

#include <arm_neon.h>

#include <cstdint>
#include <limits>

#include "simd/backends.hpp"
#include "simd/costas_kernels.hpp"

namespace cas::simd::detail {

int64_t min_value_neon(const int64_t* v, int n) {
  int64x2_t best = vdupq_n_s64(std::numeric_limits<int64_t>::max());
  int k = 0;
  for (; k + 2 <= n; k += 2) {
    const int64x2_t x = vld1q_s64(v + k);
    best = vbslq_s64(vcgtq_s64(x, best), best, x);  // lane-wise min
  }
  int64_t out = vgetq_lane_s64(best, 0);
  const int64_t out1 = vgetq_lane_s64(best, 1);
  if (out1 < out) out = out1;
  for (; k < n; ++k)
    if (v[k] < out) out = v[k];
  return out;
}

int64_t max_value_where_le_neon(const int64_t* v, const uint64_t* gate, uint64_t bound,
                                int n, bool* any) {
  const uint64x2_t vbound = vdupq_n_u64(bound);
  int64x2_t best = vdupq_n_s64(std::numeric_limits<int64_t>::min());
  uint64x2_t anyv = vdupq_n_u64(0);
  int k = 0;
  for (; k + 2 <= n; k += 2) {
    const uint64x2_t pass = vcleq_u64(vld1q_u64(gate + k), vbound);
    anyv = vorrq_u64(anyv, pass);
    const int64x2_t x = vld1q_s64(v + k);
    const int64x2_t cand = vbslq_s64(pass, x, best);
    best = vbslq_s64(vcgtq_s64(best, cand), best, cand);  // lane-wise max
  }
  int64_t out = vgetq_lane_s64(best, 0);
  const int64_t out1 = vgetq_lane_s64(best, 1);
  if (out1 > out) out = out1;
  bool found = (vgetq_lane_u64(anyv, 0) | vgetq_lane_u64(anyv, 1)) != 0;
  for (; k < n; ++k) {
    if (gate[k] > bound) continue;
    found = true;
    if (v[k] > out) out = v[k];
  }
  if (any != nullptr) *any = found;
  return out;
}

void batch_row_hits_neon(const int32_t* base, size_t lane_stride, int n, int d,
                         int32_t* hits, int32_t* diff_scratch) {
  // Same pairwise-compare formulation as the x86 legs, run as two 4-lane
  // halves over the fixed 8-lane chunk: stage the row's per-lane
  // differences, then count positions whose difference already appeared
  // earlier in the row (exact integer counts — bit-identical to the scalar
  // histogram).
  const int m = n - d;
  for (int a = 0; a < m; ++a) {
    for (int half = 0; half < 2; ++half) {
      const int32x4_t lo =
          vld1q_s32(base + static_cast<size_t>(a) * lane_stride + half * 4);
      const int32x4_t hi =
          vld1q_s32(base + static_cast<size_t>(a + d) * lane_stride + half * 4);
      vst1q_s32(diff_scratch + a * 8 + half * 4, vsubq_s32(hi, lo));
    }
  }
  for (int half = 0; half < 2; ++half) {
    int32x4_t acc = vdupq_n_s32(0);
    for (int a = 1; a < m; ++a) {
      const int32x4_t da = vld1q_s32(diff_scratch + a * 8 + half * 4);
      uint32x4_t match = vdupq_n_u32(0);
      for (int b = 0; b < a; ++b)
        match = vorrq_u32(match, vceqq_s32(da, vld1q_s32(diff_scratch + b * 8 + half * 4)));
      acc = vsubq_s32(acc, vreinterpretq_s32_u32(match));  // mask lanes are -1 per hit
    }
    vst1q_s32(hits + half * 4, acc);
  }
}

int costas_delta_row_block_neon(const CostasCtx& ctx, int i, int d, const int32_t* padded_perm,
                                int pad, int32_t* acc) {
  // The gather-free aarch64 leg of the batched culprit-row fill. Same
  // lane semantics as the AVX2 block (see kernels_avx2.cpp): lanes j == i
  // and j == i +- d are masked out for the caller's scalar pass, every
  // other lane's ledger is resolved exactly. NEON has no gather, so the
  // kernel runs in three phases per 4-lane block — vector arithmetic for
  // the difference/mask table, a transposed spill of that table through
  // which the occ-row counts are fetched with per-lane scalar loads, and
  // a vector finish for the ledger compare chains (the bulk of the work).
  const int n = ctx.n;
  const int vec_end = n & ~3;
  const int* const perm = ctx.perm;
  const int32_t* const row =
      ctx.occ + static_cast<size_t>(d - 1) * ctx.stride + static_cast<size_t>(n - 1);
  const int vi = perm[i];
  const bool eA = i - d >= 0;  // culprit pair (i-d, i)
  const bool eB = i + d < n;   // culprit pair (i, i+d)
  const int oldA = eA ? vi - perm[i - d] : 0;
  const int oldB = eB ? perm[i + d] - vi : 0;

  // Removal hits on the culprit's own pairs are lane-independent: ledger
  // order (A, B), with B's count adjusted when both pairs share a bucket.
  int base = 0;
  if (eA && row[oldA] >= 2) --base;
  if (eB && row[oldB] - static_cast<int32_t>(eA && oldB == oldA) >= 2) --base;

  const int32x4_t zero = vdupq_n_s32(0);
  const int32x4_t one = vdupq_n_s32(1);
  const int32x4_t v_vi = vdupq_n_s32(vi);
  const int32x4_t v_oldA = vdupq_n_s32(oldA);
  const int32x4_t v_oldB = vdupq_n_s32(oldB);
  const uint32x4_t v_eA = vdupq_n_u32(eA ? 0xffffffffu : 0u);
  const uint32x4_t v_eB = vdupq_n_u32(eB ? 0xffffffffu : 0u);
  const int32x4_t v_i = vdupq_n_s32(i);
  const int32x4_t v_im = vdupq_n_s32(i - d);
  const int32x4_t v_ip = vdupq_n_s32(i + d);
  const int32x4_t v_base = vdupq_n_s32(base);
  const int32x4_t v_w = vdupq_n_s32(static_cast<int32_t>(ctx.errw[d]));
  const int32x4_t v_dm1 = vdupq_n_s32(d - 1);
  const int32x4_t v_nmd = vdupq_n_s32(n - d);
  const int32_t lane_init[4] = {0, 1, 2, 3};
  const int32x4_t lane0 = vld1q_s32(lane_init);

  // Indicator helpers over 0/-1 masks (as in the AVX2 leg): adding a mask
  // subtracts the indicator from a count, subtracting it adds.
  const auto m2s = [](uint32x4_t m) { return vreinterpretq_s32_u32(m); };

  for (int j0 = 0; j0 < vec_end; j0 += 4) {
    const int32x4_t jv = vaddq_s32(lane0, vdupq_n_s32(j0));
    const int32x4_t vj = vld1q_s32(perm + j0);
    const int32x4_t pjm = vld1q_s32(padded_perm + pad + j0 - d);
    const int32x4_t pjp = vld1q_s32(padded_perm + pad + j0 + d);

    // Lane classification: the culprit's own lane and the two lanes whose
    // swap shares a triangle pair with the culprit in THIS row are handled
    // scalar by the caller.
    const uint32x4_t special = vorrq_u32(
        vceqq_s32(jv, v_i), vorrq_u32(vceqq_s32(jv, v_im), vceqq_s32(jv, v_ip)));
    const uint32x4_t normal = vmvnq_u32(special);
    const uint32x4_t eC = vandq_u32(vcgtq_s32(jv, v_dm1), normal);  // j - d >= 0
    const uint32x4_t eD = vandq_u32(vcgtq_s32(v_nmd, jv), normal);  // j + d < n

    const int32x4_t vd = vsubq_s32(vj, v_vi);
    const int32x4_t oldC = vsubq_s32(vj, pjm);
    const int32x4_t oldD = vsubq_s32(pjp, vj);
    const int32x4_t newA = vaddq_s32(v_oldA, vd);
    const int32x4_t newB = vsubq_s32(v_oldB, vd);
    const int32x4_t newC = vsubq_s32(v_vi, pjm);
    const int32x4_t newD = vsubq_s32(pjp, v_vi);

    const uint32x4_t mA = vandq_u32(normal, v_eA);
    const uint32x4_t mB = vandq_u32(normal, v_eB);

    // Transposed spill: indices and masks per lane, occ-row counts fetched
    // scalar (lanes whose pair does not exist read nothing — their index
    // may be built from padding garbage).
    int32_t idx_oldC[4], idx_oldD[4], idx_newA[4], idx_newB[4], idx_newC[4], idx_newD[4];
    uint32_t msk_eC[4], msk_eD[4], msk_mA[4], msk_mB[4];
    vst1q_s32(idx_oldC, oldC);
    vst1q_s32(idx_oldD, oldD);
    vst1q_s32(idx_newA, newA);
    vst1q_s32(idx_newB, newB);
    vst1q_s32(idx_newC, newC);
    vst1q_s32(idx_newD, newD);
    vst1q_u32(msk_eC, eC);
    vst1q_u32(msk_eD, eD);
    vst1q_u32(msk_mA, mA);
    vst1q_u32(msk_mB, mB);
    int32_t cnt_oldC[4], cnt_oldD[4], cnt_newA[4], cnt_newB[4], cnt_newC[4], cnt_newD[4];
    for (int l = 0; l < 4; ++l) {
      cnt_oldC[l] = msk_eC[l] != 0 ? row[idx_oldC[l]] : 0;
      cnt_oldD[l] = msk_eD[l] != 0 ? row[idx_oldD[l]] : 0;
      cnt_newA[l] = msk_mA[l] != 0 ? row[idx_newA[l]] : 0;
      cnt_newB[l] = msk_mB[l] != 0 ? row[idx_newB[l]] : 0;
      cnt_newC[l] = msk_eC[l] != 0 ? row[idx_newC[l]] : 0;
      cnt_newD[l] = msk_eD[l] != 0 ? row[idx_newD[l]] : 0;
    }
    const int32x4_t gOldC = vld1q_s32(cnt_oldC);
    const int32x4_t gOldD = vld1q_s32(cnt_oldD);
    const int32x4_t gNewA = vld1q_s32(cnt_newA);
    const int32x4_t gNewB = vld1q_s32(cnt_newB);
    const int32x4_t gNewC = vld1q_s32(cnt_newC);
    const int32x4_t gNewD = vld1q_s32(cnt_newD);

    int32x4_t hits = v_base;

    // Removals of the j-side pairs, counts adjusted for buckets already
    // drained by earlier removals in this row's ledger (order A, B, C, D).
    int32x4_t cC = vaddq_s32(gOldC, m2s(vandq_u32(vceqq_s32(oldC, v_oldA), v_eA)));
    cC = vaddq_s32(cC, m2s(vandq_u32(vceqq_s32(oldC, v_oldB), v_eB)));
    hits = vaddq_s32(hits, m2s(vandq_u32(eC, vcgtq_s32(cC, one))));  // -1 per hit

    int32x4_t cD = vaddq_s32(gOldD, m2s(vandq_u32(vceqq_s32(oldD, v_oldA), v_eA)));
    cD = vaddq_s32(cD, m2s(vandq_u32(vceqq_s32(oldD, v_oldB), v_eB)));
    cD = vaddq_s32(cD, m2s(vandq_u32(vceqq_s32(oldD, oldC), eC)));
    hits = vaddq_s32(hits, m2s(vandq_u32(eD, vcgtq_s32(cD, one))));

    // Additions: each new diff sees the live count minus every removed old
    // diff in its bucket plus the earlier additions in ledger order.
    int32x4_t cA = vaddq_s32(gNewA, m2s(vandq_u32(vceqq_s32(newA, v_oldB), v_eB)));
    cA = vaddq_s32(cA, m2s(vandq_u32(vceqq_s32(newA, oldC), eC)));
    cA = vaddq_s32(cA, m2s(vandq_u32(vceqq_s32(newA, oldD), eD)));
    hits = vsubq_s32(hits, m2s(vandq_u32(mA, vcgtq_s32(cA, zero))));  // +1 per hit

    int32x4_t cB = vaddq_s32(gNewB, m2s(vandq_u32(vceqq_s32(newB, v_oldA), v_eA)));
    cB = vaddq_s32(cB, m2s(vandq_u32(vceqq_s32(newB, oldC), eC)));
    cB = vaddq_s32(cB, m2s(vandq_u32(vceqq_s32(newB, oldD), eD)));
    cB = vsubq_s32(cB, m2s(vandq_u32(vceqq_s32(newB, newA), v_eA)));
    hits = vsubq_s32(hits, m2s(vandq_u32(mB, vcgtq_s32(cB, zero))));

    int32x4_t cCn = vaddq_s32(gNewC, m2s(vandq_u32(vceqq_s32(newC, v_oldA), v_eA)));
    cCn = vaddq_s32(cCn, m2s(vandq_u32(vceqq_s32(newC, v_oldB), v_eB)));
    cCn = vaddq_s32(cCn, m2s(vandq_u32(vceqq_s32(newC, oldD), eD)));
    cCn = vsubq_s32(cCn, m2s(vandq_u32(vceqq_s32(newC, newA), v_eA)));
    cCn = vsubq_s32(cCn, m2s(vandq_u32(vceqq_s32(newC, newB), v_eB)));
    hits = vsubq_s32(hits, m2s(vandq_u32(eC, vcgtq_s32(cCn, zero))));

    int32x4_t cDn = vaddq_s32(gNewD, m2s(vandq_u32(vceqq_s32(newD, v_oldA), v_eA)));
    cDn = vaddq_s32(cDn, m2s(vandq_u32(vceqq_s32(newD, v_oldB), v_eB)));
    cDn = vaddq_s32(cDn, m2s(vandq_u32(vceqq_s32(newD, oldC), eC)));
    cDn = vsubq_s32(cDn, m2s(vandq_u32(vceqq_s32(newD, newA), v_eA)));
    cDn = vsubq_s32(cDn, m2s(vandq_u32(vceqq_s32(newD, newB), v_eB)));
    cDn = vsubq_s32(cDn, m2s(vandq_u32(vceqq_s32(newD, newC), eC)));
    hits = vsubq_s32(hits, m2s(vandq_u32(eD, vcgtq_s32(cDn, zero))));

    // Zero the scalar-handled lanes (they must not even see `base`), then
    // bank the weighted hits.
    hits = m2s(vandq_u32(vreinterpretq_u32_s32(hits), normal));
    vst1q_s32(acc + j0, vmlaq_s32(vld1q_s32(acc + j0), hits, v_w));
  }
  return vec_end;
}

}  // namespace cas::simd::detail

#endif  // CAS_SIMD_NEON
