#include "simd/costas_kernels.hpp"

#include <algorithm>
#include <vector>

#include "simd/backends.hpp"

namespace cas::simd {

namespace {

[[nodiscard]] inline const int32_t* row_ptr(const CostasCtx& ctx, int d) {
  // Offset by n - 1 so the row is indexable by a (possibly negative)
  // difference value, mirroring the scalar delta.
  return ctx.occ + static_cast<size_t>(d - 1) * ctx.stride + static_cast<size_t>(ctx.n - 1);
}

/// Net collision-hit change (unweighted) of swapping x < y within triangle
/// row d — the per-row ledger of the scalar delta (costas/model.cpp),
/// exact for every endpoint/bucket coincidence. Multiply by errw[d] for
/// the cost change.
[[nodiscard]] int row_delta_hits(const CostasCtx& ctx, const int32_t* row, int d, int x, int y) {
  const int* const perm = ctx.perm;
  const int n = ctx.n;
  const int vx = perm[x], vy = perm[y];
  const int vd = vy - vx;
  int oldd[4], newd[4];
  int np = 0;
  if (x - d >= 0) {
    oldd[np] = vx - perm[x - d];
    newd[np] = oldd[np] + vd;
    ++np;
  }
  if (x + d < n) {
    if (x + d == y) {  // the (x, y) pair itself: both endpoints swap
      oldd[np] = vd;
      newd[np] = -vd;
    } else {
      oldd[np] = perm[x + d] - vx;
      newd[np] = oldd[np] - vd;
    }
    ++np;
  }
  if (y - d >= 0 && y - d != x) {
    oldd[np] = vy - perm[y - d];
    newd[np] = oldd[np] - vd;
    ++np;
  }
  if (y + d < n) {
    oldd[np] = perm[y + d] - vy;
    newd[np] = oldd[np] + vd;
    ++np;
  }
  int hits = 0;
  for (int t = 0; t < np; ++t) {
    int32_t c = row[oldd[t]];
    for (int u = 0; u < t; ++u) c -= static_cast<int32_t>(oldd[u] == oldd[t]);
    if (c >= 2) --hits;
  }
  for (int t = 0; t < np; ++t) {
    int32_t c = row[newd[t]];
    for (int u = 0; u < np; ++u) c -= static_cast<int32_t>(oldd[u] == newd[t]);
    for (int u = 0; u < t; ++u) c += static_cast<int32_t>(newd[u] == newd[t]);
    if (c >= 1) ++hits;
  }
  return hits;
}

[[nodiscard]] inline int64_t lane_delta(const CostasCtx& ctx, const int32_t* row, int d, int i,
                                        int j) {
  return row_delta_hits(ctx, row, d, std::min(i, j), std::max(i, j));
}

#if defined(CAS_SIMD_AVX2) || defined(CAS_SIMD_NEON)
/// Signature shared by the per-ISA culprit-row block kernels.
using DeltaRowBlockFn = int (*)(const CostasCtx&, int, int, const int32_t*, int, int32_t*);

/// Shared driver for the vectorized culprit-row fill: stages the padded
/// permutation copy (so the block kernel's shifted loads perm[j - d] /
/// perm[j + d] stay in bounds at the row edges), runs the block kernel per
/// triangle row, then finishes the block tail and the two lanes the vector
/// pass masked out because they share a triangle pair with the culprit in
/// that row. Keeping this logic in ONE place is what guarantees the ISA
/// legs cannot drift apart in the tail/special-lane handling.
void delta_row_vectorized(const CostasCtx& ctx, int i, int32_t* acc, DeltaRowBlockFn block) {
  const int n = ctx.n;
  thread_local std::vector<int32_t> padded;
  const int pad = ctx.depth;
  padded.assign(static_cast<size_t>(n + 2 * pad), 0);
  for (int k = 0; k < n; ++k) padded[static_cast<size_t>(pad + k)] = ctx.perm[k];
  for (int d = 1; d <= ctx.depth; ++d) {
    const int32_t* row = row_ptr(ctx, d);
    const int32_t w32 = static_cast<int32_t>(ctx.errw[d]);
    const int vec_end = block(ctx, i, d, padded.data(), pad, acc);
    for (int j = vec_end; j < n; ++j)
      if (j != i)
        acc[j] += w32 * static_cast<int32_t>(lane_delta(ctx, row, d, i, j));
    for (const int j : {i - d, i + d})
      if (j >= 0 && j < vec_end)
        acc[j] += w32 * static_cast<int32_t>(lane_delta(ctx, row, d, i, j));
  }
}
#endif

}  // namespace

void costas_delta_row(const CostasCtx& ctx, int i, int64_t* out) {
  const int n = ctx.n;
  // The batched paths accumulate weighted hits in int32 lanes; |delta| is
  // bounded by 4 * depth * max_w <= 4 * (n - 1) * n^2 (quadratic weights,
  // no Chang cut), which stays inside int32 for n <= 812. Costas search
  // sizes sit two orders of magnitude under that; a synthetic giant
  // instance falls back to direct int64 accumulation.
  if (n > 768) {
    for (int j = 0; j < n; ++j) {
      if (j == i) {
        out[j] = kDeltaRowExcluded;
        continue;
      }
      int64_t delta = 0;
      for (int d = 1; d <= ctx.depth; ++d)
        delta += ctx.errw[d] * lane_delta(ctx, row_ptr(ctx, d), d, i, j);
      out[j] = delta;
    }
    return;
  }

  thread_local std::vector<int32_t> acc;
  acc.assign(static_cast<size_t>(n), 0);
  bool vectorized = false;
#if defined(CAS_SIMD_AVX2)
  if (active_isa() == Isa::kAvx2 && n >= 8) {
    delta_row_vectorized(ctx, i, acc.data(), detail::costas_delta_row_block_avx2);
    vectorized = true;
  }
#endif
#if defined(CAS_SIMD_NEON)
  if (active_isa() == Isa::kNeon && n >= 4) {
    // Same driver; the NEON block kernel trades the masked gathers for
    // per-lane scalar occ lookups through a transposed index/mask spill
    // (see kernels_neon.cpp).
    delta_row_vectorized(ctx, i, acc.data(), detail::costas_delta_row_block_neon);
    vectorized = true;
  }
#endif
  if (!vectorized) {
    // Scalar batch: same triangle walk, row setup amortized over all j.
    for (int d = 1; d <= ctx.depth; ++d) {
      const int32_t* row = row_ptr(ctx, d);
      const int32_t w32 = static_cast<int32_t>(ctx.errw[d]);
      for (int j = 0; j < n; ++j)
        if (j != i)
          acc[static_cast<size_t>(j)] +=
              w32 * static_cast<int32_t>(lane_delta(ctx, row, d, i, j));
    }
  }
  for (int j = 0; j < n; ++j)
    out[j] = (j == i) ? kDeltaRowExcluded : static_cast<int64_t>(acc[static_cast<size_t>(j)]);
}

namespace {

/// Scalar reference for one candidate chunk's triangle row: per lane, walk
/// the row's differences through a touched-slot histogram (the
/// evaluate_bounded trick: clear only what was written) and count the
/// positions whose difference was already present. Bit-identical to the
/// vector backends by construction — a collision count is exact integer
/// data, not an approximation.
void batch_row_hits_scalar(const int32_t* base, size_t lane_stride, int n, int d,
                           int lanes, int32_t* hits, int32_t* seen) {
  // seen is a caller-provided all-zero scratch of 2n-1 slots, returned
  // all-zero (diff + n - 1 indexing, mirroring the occ rows).
  const int m = n - d;
  for (int l = 0; l < lanes; ++l) {
    int32_t h = 0;
    for (int a = 0; a < m; ++a) {
      const int32_t diff =
          base[static_cast<size_t>(a + d) * lane_stride + static_cast<size_t>(l)] -
          base[static_cast<size_t>(a) * lane_stride + static_cast<size_t>(l)];
      int32_t& c = seen[diff + n - 1];
      h += static_cast<int32_t>(++c >= 2);
    }
    for (int a = 0; a < m; ++a) {
      const int32_t diff =
          base[static_cast<size_t>(a + d) * lane_stride + static_cast<size_t>(l)] -
          base[static_cast<size_t>(a) * lane_stride + static_cast<size_t>(l)];
      seen[diff + n - 1] = 0;
    }
    hits[l] = h;
  }
}

}  // namespace

int costas_evaluate_batch(const CostasCtx& ctx, const int32_t* values, size_t lane_stride,
                          int count, int64_t bound, int64_t* out, int64_t escape_below,
                          int* escaped_chunks) {
  constexpr int kChunk = 8;
  int aborted_chunks = 0;
  const int n = ctx.n;
  // Scratches, grown once per thread: the vector backends stage one row's
  // per-lane difference columns; the scalar reference keeps a touched-slot
  // histogram. Both stay allocation-free across hot reset loops.
  thread_local std::vector<int32_t> diff_scratch;
  thread_local std::vector<int32_t> seen_scratch;
  const bool want_vector =
#if defined(CAS_SIMD_AVX2) || defined(CAS_SIMD_SSE42) || defined(CAS_SIMD_NEON)
      active_isa() != Isa::kScalar;
#else
      false;
#endif
  if (want_vector) {
    if (diff_scratch.size() < static_cast<size_t>(n) * kChunk)
      diff_scratch.resize(static_cast<size_t>(n) * kChunk);
  } else {
    if (seen_scratch.size() < static_cast<size_t>(2 * n - 1))
      seen_scratch.assign(static_cast<size_t>(2 * n - 1), 0);
  }

  for (int c0 = 0; c0 < count; c0 += kChunk) {
    const int lanes = std::min(kChunk, count - c0);
    const int32_t* const chunk_base = values + c0;
    int64_t partial[kChunk] = {0, 0, 0, 0, 0, 0, 0, 0};
    int32_t hits[kChunk];
    bool aborted = false;
    for (int d = 1; d <= ctx.depth; ++d) {
      // Per-ISA row pass; every variant produces the same exact counts.
      switch (active_isa()) {
#if defined(CAS_SIMD_AVX2)
        case Isa::kAvx2:
          detail::batch_row_hits_avx2(chunk_base, lane_stride, n, d, hits,
                                      diff_scratch.data());
          break;
#endif
#if defined(CAS_SIMD_SSE42)
        case Isa::kSse42:
          detail::batch_row_hits_sse42(chunk_base, lane_stride, n, d, hits,
                                       diff_scratch.data());
          break;
#endif
#if defined(CAS_SIMD_NEON)
        case Isa::kNeon:
          detail::batch_row_hits_neon(chunk_base, lane_stride, n, d, hits,
                                      diff_scratch.data());
          break;
#endif
        default:
          batch_row_hits_scalar(chunk_base, lane_stride, n, d, lanes, hits,
                                seen_scratch.data());
          break;
      }
      const int64_t w = ctx.errw[d];
      int64_t min_partial = INT64_MAX;
      for (int l = 0; l < lanes; ++l) {
        partial[l] += w * hits[l];
        min_partial = std::min(min_partial, partial[l]);
      }
      // Shared-bound pruning: once every live lane has reached the bound,
      // no candidate in this chunk can beat the best-so-far — stop walking
      // rows and report the (truncated) partials.
      if (min_partial >= bound) {
        aborted = true;
        ++aborted_chunks;
        break;
      }
    }
    int64_t chunk_best = INT64_MAX;
    for (int l = 0; l < lanes; ++l) {
      out[c0 + l] = partial[l];
      chunk_best = std::min(chunk_best, partial[l]);
    }
    if (!aborted) {
      // Completed chunk: exact costs. Tighten the shared bound, and stop
      // the whole walk if the caller's escape condition is satisfied —
      // later candidates can never be the FIRST escape.
      bound = std::min(bound, chunk_best);
      if (chunk_best < escape_below) {
        if (escaped_chunks != nullptr) *escaped_chunks = aborted_chunks;
        return c0 + lanes;
      }
    }
  }
  if (escaped_chunks != nullptr) *escaped_chunks = aborted_chunks;
  return count;
}

void costas_errors(const CostasCtx& ctx, int64_t* errs) {
  const int n = ctx.n;
  std::fill(errs, errs + n, int64_t{0});
  for (int d = 1; d <= ctx.depth; ++d) {
#if defined(CAS_SIMD_AVX2)
    if (active_isa() == Isa::kAvx2 && n - d >= 8) {
      detail::costas_errors_row_avx2(ctx, d, errs);
      continue;
    }
#endif
    const int32_t* row = row_ptr(ctx, d);
    const int64_t w = ctx.errw[d];
    for (int a = 0; a + d < n; ++a) {
      const int diff = ctx.perm[a + d] - ctx.perm[a];
      if (row[diff] >= 2) {
        errs[a] += w;
        errs[a + d] += w;
      }
    }
  }
}

}  // namespace cas::simd
