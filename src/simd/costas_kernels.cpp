#include "simd/costas_kernels.hpp"

#include <algorithm>
#include <vector>

#include "simd/backends.hpp"

namespace cas::simd {

namespace {

[[nodiscard]] inline const int32_t* row_ptr(const CostasCtx& ctx, int d) {
  // Offset by n - 1 so the row is indexable by a (possibly negative)
  // difference value, mirroring the scalar delta.
  return ctx.occ + static_cast<size_t>(d - 1) * ctx.stride + static_cast<size_t>(ctx.n - 1);
}

/// Net collision-hit change (unweighted) of swapping x < y within triangle
/// row d — the per-row ledger of the scalar delta (costas/model.cpp),
/// exact for every endpoint/bucket coincidence. Multiply by errw[d] for
/// the cost change.
[[nodiscard]] int row_delta_hits(const CostasCtx& ctx, const int32_t* row, int d, int x, int y) {
  const int* const perm = ctx.perm;
  const int n = ctx.n;
  const int vx = perm[x], vy = perm[y];
  const int vd = vy - vx;
  int oldd[4], newd[4];
  int np = 0;
  if (x - d >= 0) {
    oldd[np] = vx - perm[x - d];
    newd[np] = oldd[np] + vd;
    ++np;
  }
  if (x + d < n) {
    if (x + d == y) {  // the (x, y) pair itself: both endpoints swap
      oldd[np] = vd;
      newd[np] = -vd;
    } else {
      oldd[np] = perm[x + d] - vx;
      newd[np] = oldd[np] - vd;
    }
    ++np;
  }
  if (y - d >= 0 && y - d != x) {
    oldd[np] = vy - perm[y - d];
    newd[np] = oldd[np] - vd;
    ++np;
  }
  if (y + d < n) {
    oldd[np] = perm[y + d] - vy;
    newd[np] = oldd[np] + vd;
    ++np;
  }
  int hits = 0;
  for (int t = 0; t < np; ++t) {
    int32_t c = row[oldd[t]];
    for (int u = 0; u < t; ++u) c -= static_cast<int32_t>(oldd[u] == oldd[t]);
    if (c >= 2) --hits;
  }
  for (int t = 0; t < np; ++t) {
    int32_t c = row[newd[t]];
    for (int u = 0; u < np; ++u) c -= static_cast<int32_t>(oldd[u] == newd[t]);
    for (int u = 0; u < t; ++u) c += static_cast<int32_t>(newd[u] == newd[t]);
    if (c >= 1) ++hits;
  }
  return hits;
}

[[nodiscard]] inline int64_t lane_delta(const CostasCtx& ctx, const int32_t* row, int d, int i,
                                        int j) {
  return row_delta_hits(ctx, row, d, std::min(i, j), std::max(i, j));
}

}  // namespace

void costas_delta_row(const CostasCtx& ctx, int i, int64_t* out) {
  const int n = ctx.n;
  // The batched paths accumulate weighted hits in int32 lanes; |delta| is
  // bounded by 4 * depth * max_w <= 4 * (n - 1) * n^2 (quadratic weights,
  // no Chang cut), which stays inside int32 for n <= 812. Costas search
  // sizes sit two orders of magnitude under that; a synthetic giant
  // instance falls back to direct int64 accumulation.
  if (n > 768) {
    for (int j = 0; j < n; ++j) {
      if (j == i) {
        out[j] = kDeltaRowExcluded;
        continue;
      }
      int64_t delta = 0;
      for (int d = 1; d <= ctx.depth; ++d)
        delta += ctx.errw[d] * lane_delta(ctx, row_ptr(ctx, d), d, i, j);
      out[j] = delta;
    }
    return;
  }

  thread_local std::vector<int32_t> acc;
  acc.assign(static_cast<size_t>(n), 0);
  bool vectorized = false;
#if defined(CAS_SIMD_AVX2)
  if (active_isa() == Isa::kAvx2 && n >= 8) {
    // Padded copy of the permutation so the kernel's shifted loads
    // (perm[j - d], perm[j + d]) stay in bounds at the row edges; the
    // out-of-range lanes are masked before they feed any gather.
    thread_local std::vector<int32_t> padded;
    const int pad = ctx.depth;
    padded.assign(static_cast<size_t>(n + 2 * pad), 0);
    for (int k = 0; k < n; ++k) padded[static_cast<size_t>(pad + k)] = ctx.perm[k];
    for (int d = 1; d <= ctx.depth; ++d) {
      const int32_t* row = row_ptr(ctx, d);
      const int32_t w32 = static_cast<int32_t>(ctx.errw[d]);
      const int vec_end =
          detail::costas_delta_row_block_avx2(ctx, i, d, padded.data(), pad, acc.data());
      // Block-tail lanes, then the two lanes the vector pass masked out
      // because they share a triangle pair with the culprit in this row.
      for (int j = vec_end; j < n; ++j)
        if (j != i)
          acc[static_cast<size_t>(j)] +=
              w32 * static_cast<int32_t>(lane_delta(ctx, row, d, i, j));
      for (const int j : {i - d, i + d})
        if (j >= 0 && j < vec_end)
          acc[static_cast<size_t>(j)] +=
              w32 * static_cast<int32_t>(lane_delta(ctx, row, d, i, j));
    }
    vectorized = true;
  }
#endif
  if (!vectorized) {
    // Scalar batch: same triangle walk, row setup amortized over all j.
    for (int d = 1; d <= ctx.depth; ++d) {
      const int32_t* row = row_ptr(ctx, d);
      const int32_t w32 = static_cast<int32_t>(ctx.errw[d]);
      for (int j = 0; j < n; ++j)
        if (j != i)
          acc[static_cast<size_t>(j)] +=
              w32 * static_cast<int32_t>(lane_delta(ctx, row, d, i, j));
    }
  }
  for (int j = 0; j < n; ++j)
    out[j] = (j == i) ? kDeltaRowExcluded : static_cast<int64_t>(acc[static_cast<size_t>(j)]);
}

void costas_errors(const CostasCtx& ctx, int64_t* errs) {
  const int n = ctx.n;
  std::fill(errs, errs + n, int64_t{0});
  for (int d = 1; d <= ctx.depth; ++d) {
#if defined(CAS_SIMD_AVX2)
    if (active_isa() == Isa::kAvx2 && n - d >= 8) {
      detail::costas_errors_row_avx2(ctx, d, errs);
      continue;
    }
#endif
    const int32_t* row = row_ptr(ctx, d);
    const int64_t w = ctx.errw[d];
    for (int a = 0; a + d < n; ++a) {
      const int diff = ctx.perm[a + d] - ctx.perm[a];
      if (row[diff] >= 2) {
        errs[a] += w;
        errs[a + d] += w;
      }
    }
  }
}

}  // namespace cas::simd
