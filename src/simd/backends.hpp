// Internal contract between the dispatching kernel fronts (reduce.cpp,
// costas_kernels.cpp) and the per-ISA backend translation units. Each
// backend TU is compiled with its target flags (-mavx2 / -msse4.2) and
// ONLY when CMake enabled it, so every declaration here may be missing at
// link time — call sites must guard with the same CAS_SIMD_* macros CMake
// sets on the dispatch-aware sources.
//
// Backend functions implement exactly the semantics documented on their
// public fronts (reduce.hpp, costas_kernels.hpp) and must be bit-identical
// to the scalar reference: the parity fuzz suite holds every backend to
// that bar, and trajectory identity of SIMD-on vs SIMD-off search runs
// depends on it.
#pragma once

#include <cstdint>
#include <cstddef>

namespace cas::simd {

struct CostasCtx;  // costas_kernels.hpp

namespace detail {

// Candidate-batch row walk (costas_evaluate_batch): count, for each of the
// 8 candidate lanes starting at `base` (column-major, stride lane_stride),
// the number of colliding pairs triangle row d contributes — i.e. the
// positions whose difference already appeared earlier in the row. All 8
// lanes are computed unconditionally (padded lanes carry garbage the
// caller discards); `diff_scratch` is caller-provided storage for at least
// n * 8 int32 (the row's per-lane difference columns).
#if defined(CAS_SIMD_AVX2)
int64_t min_value_avx2(const int64_t* v, int n);
int64_t max_value_where_le_avx2(const int64_t* v, const uint64_t* gate, uint64_t bound,
                                int n, bool* any);
/// Accumulates the weighted delta hits of the vectorizable ("no pair shared
/// with the culprit") lanes of triangle row d into acc, leaving masked
/// lanes (j == i, j == i +- d) and the block tail untouched. Returns the
/// first j the caller must finish scalar (the vectorized prefix length).
int costas_delta_row_block_avx2(const CostasCtx& ctx, int i, int d, const int32_t* padded_perm,
                                int pad, int32_t* acc);
void costas_errors_row_avx2(const CostasCtx& ctx, int d, int64_t* errs);
void batch_row_hits_avx2(const int32_t* base, size_t lane_stride, int n, int d,
                         int32_t* hits, int32_t* diff_scratch);
#endif

#if defined(CAS_SIMD_SSE42)
int64_t min_value_sse42(const int64_t* v, int n);
int64_t max_value_where_le_sse42(const int64_t* v, const uint64_t* gate, uint64_t bound,
                                 int n, bool* any);
void batch_row_hits_sse42(const int32_t* base, size_t lane_stride, int n, int d,
                          int32_t* hits, int32_t* diff_scratch);
#endif

#if defined(CAS_SIMD_NEON)
int64_t min_value_neon(const int64_t* v, int n);
int64_t max_value_where_le_neon(const int64_t* v, const uint64_t* gate, uint64_t bound,
                                int n, bool* any);
/// NEON leg of the batched culprit-row fill: the per-lane difference and
/// ledger arithmetic runs 4 lanes wide; the occ-row lookups (NEON has no
/// gather) drop to per-lane scalar loads between the two vector halves.
int costas_delta_row_block_neon(const CostasCtx& ctx, int i, int d, const int32_t* padded_perm,
                                int pad, int32_t* acc);
void batch_row_hits_neon(const int32_t* base, size_t lane_stride, int n, int d,
                         int32_t* hits, int32_t* diff_scratch);
#endif

}  // namespace detail
}  // namespace cas::simd
