// AVX2 backend. Compiled with -mavx2 only when CMake enables it
// (CAS_SIMD_AVX2); the whole file is a no-op otherwise, so a GLOB build on
// a non-x86 host or with -DCAS_SIMD=OFF never sees an AVX2 instruction.
#if defined(CAS_SIMD_AVX2)

#include <immintrin.h>

#include <cstdint>
#include <limits>

#include "simd/backends.hpp"
#include "simd/costas_kernels.hpp"

namespace cas::simd::detail {

namespace {

[[nodiscard]] inline int64_t hmin_epi64(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  const __m128i m1 = _mm_blendv_epi8(lo, hi, _mm_cmpgt_epi64(lo, hi));  // lane-wise min
  const __m128i sw = _mm_unpackhi_epi64(m1, m1);
  const __m128i m2 = _mm_blendv_epi8(m1, sw, _mm_cmpgt_epi64(m1, sw));
  return _mm_cvtsi128_si64(m2);
}

[[nodiscard]] inline int64_t hmax_epi64(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  const __m128i m1 = _mm_blendv_epi8(hi, lo, _mm_cmpgt_epi64(lo, hi));  // lane-wise max
  const __m128i sw = _mm_unpackhi_epi64(m1, m1);
  const __m128i m2 = _mm_blendv_epi8(sw, m1, _mm_cmpgt_epi64(m1, sw));
  return _mm_cvtsi128_si64(m2);
}

}  // namespace

int64_t min_value_avx2(const int64_t* v, int n) {
  __m256i best = _mm256_set1_epi64x(std::numeric_limits<int64_t>::max());
  int k = 0;
  for (; k + 4 <= n; k += 4) {
    const __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + k));
    best = _mm256_blendv_epi8(x, best, _mm256_cmpgt_epi64(x, best));  // min(best, x)
  }
  int64_t out = hmin_epi64(best);
  for (; k < n; ++k)
    if (v[k] < out) out = v[k];
  return out;
}

int64_t max_value_where_le_avx2(const int64_t* v, const uint64_t* gate, uint64_t bound,
                                int n, bool* any) {
  // Unsigned 64-bit compare gate[k] <= bound via the sign-flip trick:
  // a <=u b  ⇔  (a ^ 2^63) <=s (b ^ 2^63).
  const __m256i sign = _mm256_set1_epi64x(static_cast<int64_t>(0x8000000000000000ull));
  const __m256i vbound = _mm256_xor_si256(_mm256_set1_epi64x(static_cast<int64_t>(bound)), sign);
  const int64_t kMin = std::numeric_limits<int64_t>::min();
  __m256i best = _mm256_set1_epi64x(kMin);
  __m256i anyv = _mm256_setzero_si256();
  int k = 0;
  for (; k + 4 <= n; k += 4) {
    const __m256i g = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(gate + k)), sign);
    const __m256i pass = _mm256_andnot_si256(_mm256_cmpgt_epi64(g, vbound), _mm256_set1_epi64x(-1));
    anyv = _mm256_or_si256(anyv, pass);
    const __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + k));
    // Gated lanes take x, others keep the running best's lane.
    const __m256i cand = _mm256_blendv_epi8(best, x, pass);
    best = _mm256_blendv_epi8(cand, best, _mm256_cmpgt_epi64(best, cand));  // max
  }
  int64_t out = hmax_epi64(best);
  bool found = _mm256_movemask_epi8(anyv) != 0;
  for (; k < n; ++k) {
    if (gate[k] > bound) continue;
    found = true;
    if (v[k] > out) out = v[k];
  }
  if (any != nullptr) *any = found;
  return out;
}

int costas_delta_row_block_avx2(const CostasCtx& ctx, int i, int d, const int32_t* padded_perm,
                                int pad, int32_t* acc) {
  const int n = ctx.n;
  const int vec_end = n & ~7;
  const int* const perm = ctx.perm;
  const int32_t* const row =
      ctx.occ + static_cast<size_t>(d - 1) * ctx.stride + static_cast<size_t>(n - 1);
  const int vi = perm[i];
  const bool eA = i - d >= 0;  // culprit pair (i-d, i)
  const bool eB = i + d < n;   // culprit pair (i, i+d)
  const int oldA = eA ? vi - perm[i - d] : 0;
  const int oldB = eB ? perm[i + d] - vi : 0;

  // Removal hits on the culprit's own pairs are lane-independent: ledger
  // order (A, B), with B's count adjusted when both pairs sit in the same
  // bucket.
  int base = 0;
  if (eA && row[oldA] >= 2) --base;
  if (eB && row[oldB] - static_cast<int32_t>(eA && oldB == oldA) >= 2) --base;

  const __m256i all1 = _mm256_set1_epi32(-1);
  const __m256i zero = _mm256_setzero_si256();
  const __m256i one = _mm256_set1_epi32(1);
  const __m256i v_vi = _mm256_set1_epi32(vi);
  const __m256i v_oldA = _mm256_set1_epi32(oldA);
  const __m256i v_oldB = _mm256_set1_epi32(oldB);
  const __m256i v_eA = _mm256_set1_epi32(eA ? -1 : 0);
  const __m256i v_eB = _mm256_set1_epi32(eB ? -1 : 0);
  const __m256i v_i = _mm256_set1_epi32(i);
  const __m256i v_im = _mm256_set1_epi32(i - d);
  const __m256i v_ip = _mm256_set1_epi32(i + d);
  const __m256i v_base = _mm256_set1_epi32(base);
  const __m256i v_w = _mm256_set1_epi32(static_cast<int32_t>(ctx.errw[d]));
  const __m256i v_dm1 = _mm256_set1_epi32(d - 1);
  const __m256i v_nmd = _mm256_set1_epi32(n - d);
  const __m256i lane0 = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);

  // Indicator helpers over 0/-1 masks: adding a mask subtracts the
  // indicator from a count, subtracting it adds.
  const auto eq = [](__m256i a, __m256i b) { return _mm256_cmpeq_epi32(a, b); };
  const auto land = [](__m256i a, __m256i b) { return _mm256_and_si256(a, b); };

  for (int j0 = 0; j0 < vec_end; j0 += 8) {
    const __m256i jv = _mm256_add_epi32(lane0, _mm256_set1_epi32(j0));
    const __m256i vj =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(perm + j0));
    const __m256i pjm = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(padded_perm + pad + j0 - d));
    const __m256i pjp = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(padded_perm + pad + j0 + d));

    // Lane classification: the culprit's own lane and the two lanes whose
    // swap shares a triangle pair with the culprit in THIS row are handled
    // scalar by the caller.
    const __m256i special =
        _mm256_or_si256(eq(jv, v_i), _mm256_or_si256(eq(jv, v_im), eq(jv, v_ip)));
    const __m256i normal = _mm256_andnot_si256(special, all1);
    const __m256i eC = land(_mm256_cmpgt_epi32(jv, v_dm1), normal);  // j - d >= 0
    const __m256i eD = land(_mm256_cmpgt_epi32(v_nmd, jv), normal);  // j + d < n

    const __m256i vd = _mm256_sub_epi32(vj, v_vi);
    const __m256i oldC = _mm256_sub_epi32(vj, pjm);
    const __m256i oldD = _mm256_sub_epi32(pjp, vj);
    const __m256i newA = _mm256_add_epi32(v_oldA, vd);
    const __m256i newB = _mm256_sub_epi32(v_oldB, vd);
    const __m256i newC = _mm256_sub_epi32(v_vi, pjm);
    const __m256i newD = _mm256_sub_epi32(pjp, v_vi);

    const __m256i mA = land(normal, v_eA);
    const __m256i mB = land(normal, v_eB);
    // Masked gathers: lanes outside their pair's existence mask read
    // nothing (their index may be built from padding garbage).
    const auto gat = [&](__m256i idx, __m256i mask) {
      return _mm256_mask_i32gather_epi32(zero, row, idx, mask, 4);
    };
    const __m256i gOldC = gat(oldC, eC);
    const __m256i gOldD = gat(oldD, eD);
    const __m256i gNewA = gat(newA, mA);
    const __m256i gNewB = gat(newB, mB);
    const __m256i gNewC = gat(newC, eC);
    const __m256i gNewD = gat(newD, eD);

    __m256i hits = v_base;

    // Removals of the j-side pairs, counts adjusted for buckets already
    // drained by earlier removals in this row's ledger (order A, B, C, D).
    __m256i cC = _mm256_add_epi32(gOldC, land(eq(oldC, v_oldA), v_eA));
    cC = _mm256_add_epi32(cC, land(eq(oldC, v_oldB), v_eB));
    hits = _mm256_add_epi32(hits, land(eC, _mm256_cmpgt_epi32(cC, one)));  // -1 per hit

    __m256i cD = _mm256_add_epi32(gOldD, land(eq(oldD, v_oldA), v_eA));
    cD = _mm256_add_epi32(cD, land(eq(oldD, v_oldB), v_eB));
    cD = _mm256_add_epi32(cD, land(eq(oldD, oldC), eC));
    hits = _mm256_add_epi32(hits, land(eD, _mm256_cmpgt_epi32(cD, one)));

    // Additions: each new diff sees the live count minus every removed
    // old diff in its bucket plus the earlier additions in ledger order.
    // Self-coincidence (newX == oldX) is impossible: vd != 0 off the
    // culprit lane.
    __m256i cA = _mm256_add_epi32(gNewA, land(eq(newA, v_oldB), v_eB));
    cA = _mm256_add_epi32(cA, land(eq(newA, oldC), eC));
    cA = _mm256_add_epi32(cA, land(eq(newA, oldD), eD));
    hits = _mm256_sub_epi32(hits, land(mA, _mm256_cmpgt_epi32(cA, zero)));  // +1 per hit

    __m256i cB = _mm256_add_epi32(gNewB, land(eq(newB, v_oldA), v_eA));
    cB = _mm256_add_epi32(cB, land(eq(newB, oldC), eC));
    cB = _mm256_add_epi32(cB, land(eq(newB, oldD), eD));
    cB = _mm256_sub_epi32(cB, land(eq(newB, newA), v_eA));
    hits = _mm256_sub_epi32(hits, land(mB, _mm256_cmpgt_epi32(cB, zero)));

    __m256i cCn = _mm256_add_epi32(gNewC, land(eq(newC, v_oldA), v_eA));
    cCn = _mm256_add_epi32(cCn, land(eq(newC, v_oldB), v_eB));
    cCn = _mm256_add_epi32(cCn, land(eq(newC, oldD), eD));
    cCn = _mm256_sub_epi32(cCn, land(eq(newC, newA), v_eA));
    cCn = _mm256_sub_epi32(cCn, land(eq(newC, newB), v_eB));
    hits = _mm256_sub_epi32(hits, land(eC, _mm256_cmpgt_epi32(cCn, zero)));

    __m256i cDn = _mm256_add_epi32(gNewD, land(eq(newD, v_oldA), v_eA));
    cDn = _mm256_add_epi32(cDn, land(eq(newD, v_oldB), v_eB));
    cDn = _mm256_add_epi32(cDn, land(eq(newD, oldC), eC));
    cDn = _mm256_sub_epi32(cDn, land(eq(newD, newA), v_eA));
    cDn = _mm256_sub_epi32(cDn, land(eq(newD, newB), v_eB));
    cDn = _mm256_sub_epi32(cDn, land(eq(newD, newC), eC));
    hits = _mm256_sub_epi32(hits, land(eD, _mm256_cmpgt_epi32(cDn, zero)));

    // Zero the scalar-handled lanes (they must not even see `base`), then
    // bank the weighted hits.
    hits = land(hits, normal);
    __m256i accv = _mm256_loadu_si256(reinterpret_cast<__m256i*>(acc + j0));
    accv = _mm256_add_epi32(accv, _mm256_mullo_epi32(hits, v_w));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + j0), accv);
  }
  return vec_end;
}

void batch_row_hits_avx2(const int32_t* base, size_t lane_stride, int n, int d,
                         int32_t* hits, int32_t* diff_scratch) {
  // One vector = one triangle-row difference of 8 candidate lanes. Stage
  // the row's m = n - d difference vectors in the scratch, then count, per
  // position, whether the same difference appeared at any earlier position
  // (the exact "bucket reaches >= 2" rule of the scalar histogram, phrased
  // as pairwise compares so 8 candidates share every instruction and no
  // lane ever touches memory it must scatter back to).
  const int m = n - d;
  for (int a = 0; a < m; ++a) {
    const __m256i lo = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(base + static_cast<size_t>(a) * lane_stride));
    const __m256i hi = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(base + static_cast<size_t>(a + d) * lane_stride));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(diff_scratch + a * 8),
                        _mm256_sub_epi32(hi, lo));
  }
  __m256i acc = _mm256_setzero_si256();
  for (int a = 1; a < m; ++a) {
    const __m256i da =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(diff_scratch + a * 8));
    __m256i match = _mm256_setzero_si256();
    for (int b = 0; b < a; ++b) {
      match = _mm256_or_si256(
          match, _mm256_cmpeq_epi32(
                     da, _mm256_loadu_si256(
                             reinterpret_cast<const __m256i*>(diff_scratch + b * 8))));
    }
    acc = _mm256_sub_epi32(acc, match);  // mask lanes are -1 per hit
  }
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(hits), acc);
}

void costas_errors_row_avx2(const CostasCtx& ctx, int d, int64_t* errs) {
  const int n = ctx.n;
  const int m = n - d;  // pairs in this row
  const int32_t* const row =
      ctx.occ + static_cast<size_t>(d - 1) * ctx.stride + static_cast<size_t>(n - 1);
  const int64_t w = ctx.errw[d];
  const __m256i v_w64 = _mm256_set1_epi64x(w);
  const __m256i one = _mm256_set1_epi32(1);
  int a = 0;
  for (; a + 8 <= m; a += 8) {
    const __m256i lo_perm =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ctx.perm + a));
    const __m256i hi_perm =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ctx.perm + a + d));
    const __m256i diff = _mm256_sub_epi32(hi_perm, lo_perm);
    // All 8 lanes are in-row (a + 7 < m), so a plain gather is safe.
    const __m256i occ8 = _mm256_i32gather_epi32(row, diff, 4);
    const __m256i coll = _mm256_cmpgt_epi32(occ8, one);  // occ >= 2
    const __m256i add_lo =
        _mm256_and_si256(_mm256_cvtepi32_epi64(_mm256_castsi256_si128(coll)), v_w64);
    const __m256i add_hi =
        _mm256_and_si256(_mm256_cvtepi32_epi64(_mm256_extracti128_si256(coll, 1)), v_w64);
    // Both endpoints of a colliding pair take the weight. The four
    // read-modify-writes may overlap for small d; they are sequenced, so
    // each load observes the previous store.
    const auto bump = [&](int64_t* p, __m256i delta) {
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(p),
          _mm256_add_epi64(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p)), delta));
    };
    bump(errs + a, add_lo);
    bump(errs + a + 4, add_hi);
    bump(errs + a + d, add_lo);
    bump(errs + a + d + 4, add_hi);
  }
  for (; a < m; ++a) {
    const int diff = ctx.perm[a + d] - ctx.perm[a];
    if (row[diff] >= 2) {
      errs[a] += w;
      errs[a + d] += w;
    }
  }
}

}  // namespace cas::simd::detail

#endif  // CAS_SIMD_AVX2
