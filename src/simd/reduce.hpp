// Vectorized reductions over the engines' contiguous Cost tables — the two
// linear passes that dominate an Adaptive Search iteration alongside the
// move-delta scan:
//
//   min_value          — the best (lowest) delta in a filled move row,
//   max_value_where_le — the worst per-variable error among non-tabu
//                        variables (gate[i] <= bound == "not tabu at this
//                        iteration").
//
// Both return the extreme VALUE only. Index selection with uniform
// tie-breaking stays scalar (simd/select.hpp): it is the part that consumes
// the RNG, and keeping it scalar is what makes a search trajectory
// bit-identical whether the value pass ran under AVX2, SSE4.2, NEON, or the
// scalar fallback.
#pragma once

#include <cstdint>
#include <span>

#include "simd/simd.hpp"

namespace cas::simd {

/// Minimum value of v (int64 lanes). Empty span: INT64_MAX.
[[nodiscard]] int64_t min_value(std::span<const int64_t> v);

/// Maximum of v[i] over lanes with gate[i] <= bound (unsigned compare).
/// `*any` reports whether at least one lane passed the gate; the returned
/// value is INT64_MIN when none did. v and gate have equal lengths.
[[nodiscard]] int64_t max_value_where_le(std::span<const int64_t> v,
                                         std::span<const uint64_t> gate, uint64_t bound,
                                         bool* any);

}  // namespace cas::simd
