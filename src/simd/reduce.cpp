#include "simd/reduce.hpp"

#include <limits>

#include "simd/backends.hpp"

namespace cas::simd {

namespace {

int64_t min_value_scalar(const int64_t* v, int n) {
  int64_t best = std::numeric_limits<int64_t>::max();
  for (int k = 0; k < n; ++k)
    if (v[k] < best) best = v[k];
  return best;
}

int64_t max_value_where_le_scalar(const int64_t* v, const uint64_t* gate, uint64_t bound,
                                  int n, bool* any) {
  int64_t best = std::numeric_limits<int64_t>::min();
  bool found = false;
  for (int k = 0; k < n; ++k) {
    if (gate[k] > bound) continue;
    found = true;
    if (v[k] > best) best = v[k];
  }
  if (any != nullptr) *any = found;
  return best;
}

}  // namespace

int64_t min_value(std::span<const int64_t> v) {
  const int n = static_cast<int>(v.size());
  switch (active_isa()) {
#if defined(CAS_SIMD_AVX2)
    case Isa::kAvx2:
      if (n >= 8) return detail::min_value_avx2(v.data(), n);
      break;
#endif
#if defined(CAS_SIMD_SSE42)
    case Isa::kSse42:
      if (n >= 4) return detail::min_value_sse42(v.data(), n);
      break;
#endif
#if defined(CAS_SIMD_NEON)
    case Isa::kNeon:
      if (n >= 4) return detail::min_value_neon(v.data(), n);
      break;
#endif
    default:
      break;
  }
  return min_value_scalar(v.data(), n);
}

int64_t max_value_where_le(std::span<const int64_t> v, std::span<const uint64_t> gate,
                           uint64_t bound, bool* any) {
  const int n = static_cast<int>(v.size());
  switch (active_isa()) {
#if defined(CAS_SIMD_AVX2)
    case Isa::kAvx2:
      if (n >= 8) return detail::max_value_where_le_avx2(v.data(), gate.data(), bound, n, any);
      break;
#endif
#if defined(CAS_SIMD_SSE42)
    case Isa::kSse42:
      if (n >= 4) return detail::max_value_where_le_sse42(v.data(), gate.data(), bound, n, any);
      break;
#endif
#if defined(CAS_SIMD_NEON)
    case Isa::kNeon:
      if (n >= 4) return detail::max_value_where_le_neon(v.data(), gate.data(), bound, n, any);
      break;
#endif
    default:
      break;
  }
  return max_value_where_le_scalar(v.data(), gate.data(), bound, n, any);
}

}  // namespace cas::simd
