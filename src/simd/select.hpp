// Two-pass extreme-element selection with uniform tie-breaking — the
// engine-facing shape of the reduce kernels.
//
// Pass 1 finds the extreme VALUE (vectorized when a backend is active);
// pass 2 is a scalar reservoir walk over the lanes equal to that value,
// spending one rng.below(ties) draw per tie beyond the first. Because pass
// 2 is identical code under every ISA and pass 1 returns the same value
// bit-for-bit (integer reductions), a search trajectory is reproducible
// regardless of which backend ran — the property the seeded SIMD-on/off
// identity test pins.
//
// Compared to the historical one-pass running-extreme scan, the reservoir
// consumes the RNG differently (draws only for ties of the FINAL extreme,
// not of every running prefix extreme), but the selected index is still
// uniform among the tied lanes, which is all Adaptive Search requires.
#pragma once

#include <cstdint>
#include <limits>
#include <span>

#include "core/rng.hpp"
#include "simd/reduce.hpp"

namespace cas::simd {

struct Pick {
  int index = -1;
  int64_t value = 0;
};

/// Argmin over a filled move row with uniform tie-breaking. Lanes holding
/// INT64_MAX (the delta-row exclusion sentinel) can never win unless every
/// lane holds it, in which case index stays -1.
inline Pick pick_min(std::span<const int64_t> row, core::Rng& rng) {
  Pick p;
  const int64_t best = min_value(row);
  if (best == std::numeric_limits<int64_t>::max()) return p;
  p.value = best;
  const int n = static_cast<int>(row.size());
  int ties = 0;
  for (int j = 0; j < n; ++j) {
    if (row[static_cast<size_t>(j)] != best) continue;
    ++ties;
    if (ties == 1 || rng.below(static_cast<uint64_t>(ties)) == 0) p.index = j;
  }
  return p;
}

/// Argmax over v restricted to lanes with gate[i] <= bound (the "not tabu
/// at this iteration" predicate), uniform among ties. index == -1 when no
/// lane passes the gate.
inline Pick pick_max_where_le(std::span<const int64_t> v, std::span<const uint64_t> gate,
                              uint64_t bound, core::Rng& rng) {
  Pick p;
  bool any = false;
  const int64_t best = max_value_where_le(v, gate, bound, &any);
  if (!any) return p;
  p.value = best;
  const int n = static_cast<int>(v.size());
  int ties = 0;
  for (int i = 0; i < n; ++i) {
    if (gate[static_cast<size_t>(i)] > bound || v[static_cast<size_t>(i)] != best) continue;
    ++ties;
    if (ties == 1 || rng.below(static_cast<uint64_t>(ties)) == 0) p.index = i;
  }
  return p;
}

}  // namespace cas::simd
