// SSE4.2 backend (2-lane int64 reductions — the widest integer-compare
// tier below AVX2 on x86). Compiled with -msse4.2 only when CMake enables
// it (CAS_SIMD_SSE42); a no-op otherwise.
#if defined(CAS_SIMD_SSE42)

#include <nmmintrin.h>
#include <smmintrin.h>

#include <cstdint>
#include <limits>

#include "simd/backends.hpp"

namespace cas::simd::detail {

int64_t min_value_sse42(const int64_t* v, int n) {
  __m128i best = _mm_set1_epi64x(std::numeric_limits<int64_t>::max());
  int k = 0;
  for (; k + 2 <= n; k += 2) {
    const __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + k));
    best = _mm_blendv_epi8(x, best, _mm_cmpgt_epi64(x, best));  // lane-wise min
  }
  const __m128i sw = _mm_unpackhi_epi64(best, best);
  best = _mm_blendv_epi8(best, sw, _mm_cmpgt_epi64(best, sw));
  int64_t out = _mm_cvtsi128_si64(best);
  for (; k < n; ++k)
    if (v[k] < out) out = v[k];
  return out;
}

int64_t max_value_where_le_sse42(const int64_t* v, const uint64_t* gate, uint64_t bound,
                                 int n, bool* any) {
  const __m128i sign = _mm_set1_epi64x(static_cast<int64_t>(0x8000000000000000ull));
  const __m128i vbound = _mm_xor_si128(_mm_set1_epi64x(static_cast<int64_t>(bound)), sign);
  __m128i best = _mm_set1_epi64x(std::numeric_limits<int64_t>::min());
  __m128i anyv = _mm_setzero_si128();
  int k = 0;
  for (; k + 2 <= n; k += 2) {
    const __m128i g =
        _mm_xor_si128(_mm_loadu_si128(reinterpret_cast<const __m128i*>(gate + k)), sign);
    const __m128i pass = _mm_andnot_si128(_mm_cmpgt_epi64(g, vbound), _mm_set1_epi64x(-1));
    anyv = _mm_or_si128(anyv, pass);
    const __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + k));
    const __m128i cand = _mm_blendv_epi8(best, x, pass);
    best = _mm_blendv_epi8(cand, best, _mm_cmpgt_epi64(best, cand));  // lane-wise max
  }
  const __m128i sw = _mm_unpackhi_epi64(best, best);
  best = _mm_blendv_epi8(sw, best, _mm_cmpgt_epi64(best, sw));
  int64_t out = _mm_cvtsi128_si64(best);
  bool found = _mm_movemask_epi8(anyv) != 0;
  for (; k < n; ++k) {
    if (gate[k] > bound) continue;
    found = true;
    if (v[k] > out) out = v[k];
  }
  if (any != nullptr) *any = found;
  return out;
}

void batch_row_hits_sse42(const int32_t* base, size_t lane_stride, int n, int d,
                          int32_t* hits, int32_t* diff_scratch) {
  // Same pairwise-compare formulation as the AVX2 leg, run as two 4-lane
  // halves over the fixed 8-lane chunk (see batch_row_hits_avx2).
  const int m = n - d;
  for (int a = 0; a < m; ++a) {
    for (int half = 0; half < 2; ++half) {
      const __m128i lo = _mm_loadu_si128(reinterpret_cast<const __m128i*>(
          base + static_cast<size_t>(a) * lane_stride + half * 4));
      const __m128i hi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(
          base + static_cast<size_t>(a + d) * lane_stride + half * 4));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(diff_scratch + a * 8 + half * 4),
                       _mm_sub_epi32(hi, lo));
    }
  }
  for (int half = 0; half < 2; ++half) {
    __m128i acc = _mm_setzero_si128();
    for (int a = 1; a < m; ++a) {
      const __m128i da = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(diff_scratch + a * 8 + half * 4));
      __m128i match = _mm_setzero_si128();
      for (int b = 0; b < a; ++b) {
        match = _mm_or_si128(
            match, _mm_cmpeq_epi32(da, _mm_loadu_si128(reinterpret_cast<const __m128i*>(
                                           diff_scratch + b * 8 + half * 4))));
      }
      acc = _mm_sub_epi32(acc, match);  // mask lanes are -1 per hit
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(hits + half * 4), acc);
  }
}

}  // namespace cas::simd::detail

#endif  // CAS_SIMD_SSE42
