// SSE4.2 backend (2-lane int64 reductions — the widest integer-compare
// tier below AVX2 on x86). Compiled with -msse4.2 only when CMake enables
// it (CAS_SIMD_SSE42); a no-op otherwise.
#if defined(CAS_SIMD_SSE42)

#include <nmmintrin.h>
#include <smmintrin.h>

#include <cstdint>
#include <limits>

#include "simd/backends.hpp"

namespace cas::simd::detail {

int64_t min_value_sse42(const int64_t* v, int n) {
  __m128i best = _mm_set1_epi64x(std::numeric_limits<int64_t>::max());
  int k = 0;
  for (; k + 2 <= n; k += 2) {
    const __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + k));
    best = _mm_blendv_epi8(x, best, _mm_cmpgt_epi64(x, best));  // lane-wise min
  }
  const __m128i sw = _mm_unpackhi_epi64(best, best);
  best = _mm_blendv_epi8(best, sw, _mm_cmpgt_epi64(best, sw));
  int64_t out = _mm_cvtsi128_si64(best);
  for (; k < n; ++k)
    if (v[k] < out) out = v[k];
  return out;
}

int64_t max_value_where_le_sse42(const int64_t* v, const uint64_t* gate, uint64_t bound,
                                 int n, bool* any) {
  const __m128i sign = _mm_set1_epi64x(static_cast<int64_t>(0x8000000000000000ull));
  const __m128i vbound = _mm_xor_si128(_mm_set1_epi64x(static_cast<int64_t>(bound)), sign);
  __m128i best = _mm_set1_epi64x(std::numeric_limits<int64_t>::min());
  __m128i anyv = _mm_setzero_si128();
  int k = 0;
  for (; k + 2 <= n; k += 2) {
    const __m128i g =
        _mm_xor_si128(_mm_loadu_si128(reinterpret_cast<const __m128i*>(gate + k)), sign);
    const __m128i pass = _mm_andnot_si128(_mm_cmpgt_epi64(g, vbound), _mm_set1_epi64x(-1));
    anyv = _mm_or_si128(anyv, pass);
    const __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + k));
    const __m128i cand = _mm_blendv_epi8(best, x, pass);
    best = _mm_blendv_epi8(cand, best, _mm_cmpgt_epi64(best, cand));  // lane-wise max
  }
  const __m128i sw = _mm_unpackhi_epi64(best, best);
  best = _mm_blendv_epi8(sw, best, _mm_cmpgt_epi64(best, sw));
  int64_t out = _mm_cvtsi128_si64(best);
  bool found = _mm_movemask_epi8(anyv) != 0;
  for (; k < n; ++k) {
    if (gate[k] > bound) continue;
    found = true;
    if (v[k] > out) out = v[k];
  }
  if (any != nullptr) *any = found;
  return out;
}

}  // namespace cas::simd::detail

#endif  // CAS_SIMD_SSE42
