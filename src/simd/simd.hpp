// Runtime ISA dispatch for the SIMD kernel layer (src/simd/).
//
// The kernels come in per-ISA backends (AVX2 / SSE4.2 / NEON) compiled in
// separate translation units with the matching target flags, plus a scalar
// fallback that is always available. Which backend actually runs is decided
// ONCE at startup from the CPU's capabilities (cpuid on x86, compile-time
// on aarch64), so the hot loops pay one predictable branch per kernel call
// and never execute an instruction the machine does not have.
//
// Two override channels exist on top of the detection:
//   * force_isa() — programmatic, clamped to what the CPU supports; used by
//     the scalar-vs-SIMD micro benches and the parity/trajectory tests to
//     run both code paths in one process.
//   * the CAS_SIMD environment variable ("scalar"/"off", "sse42", "avx2",
//     "neon", "auto") — the no-rebuild kill switch for production triage.
//
// Building with -DCAS_SIMD=OFF (CMake) compiles no backends at all and
// pins the dispatch to kScalar; every kernel keeps working through its
// scalar path, which is the bit-identical reference the SIMD paths are
// fuzzed against (see tests/test_simd_parity.cpp).
#pragma once

namespace cas::simd {

/// Instruction-set tiers, ordered weakest to strongest within an
/// architecture family. kScalar is always valid.
enum class Isa {
  kScalar = 0,
  kNeon = 1,   // aarch64 baseline
  kSse42 = 2,  // x86-64 + SSE4.2 (64-bit integer compares)
  kAvx2 = 3,   // x86-64 + AVX2 (256-bit integer ops + gathers)
};

/// The backend the dispatch currently selects. Detected once (CPU caps
/// intersected with the compiled backends and the CAS_SIMD environment
/// variable), then stable unless force_isa() intervenes.
[[nodiscard]] Isa active_isa();

/// Strongest ISA this process could run (compiled backend AND CPU support).
[[nodiscard]] Isa best_supported_isa();

/// Force the dispatch to `isa`, clamped to best_supported_isa(). Returns
/// the ISA actually installed. Used by benches ("measure the scalar path on
/// this AVX2 machine") and by the parity suites; call sites are expected to
/// restore the previous value (see ScopedIsa).
Isa force_isa(Isa isa);

[[nodiscard]] const char* isa_name(Isa isa);

/// RAII guard: force an ISA for a scope, restore on exit.
class ScopedIsa {
 public:
  explicit ScopedIsa(Isa isa) : previous_(active_isa()) { force_isa(isa); }
  ~ScopedIsa() { force_isa(previous_); }
  ScopedIsa(const ScopedIsa&) = delete;
  ScopedIsa& operator=(const ScopedIsa&) = delete;

 private:
  Isa previous_;
};

}  // namespace cas::simd
