#include "simd/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace cas::simd {

namespace {

/// Strongest tier both compiled in AND supported by this CPU. The backend
/// macros (CAS_SIMD_AVX2 / CAS_SIMD_SSE42 / CAS_SIMD_NEON) are set per
/// translation unit by CMake exactly when the matching backend file is
/// compiled, so this function can never select a tier with no code behind
/// it. -DCAS_SIMD=OFF defines CAS_SIMD_DISABLED instead and pins scalar.
Isa detect() {
#if defined(CAS_SIMD_DISABLED)
  return Isa::kScalar;
#else
#if defined(CAS_SIMD_AVX2)
  if (__builtin_cpu_supports("avx2")) return Isa::kAvx2;
#endif
#if defined(CAS_SIMD_SSE42)
  if (__builtin_cpu_supports("sse4.2")) return Isa::kSse42;
#endif
#if defined(CAS_SIMD_NEON)
  return Isa::kNeon;  // aarch64 baseline: always available when compiled
#endif
  return Isa::kScalar;
#endif
}

/// CAS_SIMD environment override, clamped to `cap`. Unknown values are
/// ignored (auto).
Isa apply_env(Isa cap) {
  const char* env = std::getenv("CAS_SIMD");
  if (env == nullptr) return cap;
  const auto is = [env](const char* v) { return std::strcmp(env, v) == 0; };
  if (is("off") || is("0") || is("scalar")) return Isa::kScalar;
  if (is("neon")) return cap >= Isa::kNeon ? Isa::kNeon : Isa::kScalar;
  if (is("sse42")) return cap >= Isa::kSse42 ? Isa::kSse42 : Isa::kScalar;
  if (is("avx2")) return cap >= Isa::kAvx2 ? Isa::kAvx2 : cap;
  return cap;  // "auto" or unrecognized
}

Isa best_cached() {
  static const Isa best = detect();
  return best;
}

std::atomic<Isa>& active_slot() {
  static std::atomic<Isa> active{apply_env(best_cached())};
  return active;
}

}  // namespace

Isa best_supported_isa() { return best_cached(); }

Isa active_isa() { return active_slot().load(std::memory_order_relaxed); }

Isa force_isa(Isa isa) {
  const Isa best = best_cached();
  const Isa clamped = isa <= best ? isa : best;
  active_slot().store(clamped, std::memory_order_relaxed);
  return clamped;
}

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return "scalar";
    case Isa::kNeon: return "neon";
    case Isa::kSse42: return "sse42";
    case Isa::kAvx2: return "avx2";
  }
  return "?";
}

}  // namespace cas::simd
