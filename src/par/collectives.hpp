// The collective algorithms (barrier, broadcast, reduce, allreduce,
// gather) implemented ONCE over a minimal endpoint surface, so the
// in-process communicator (par::Comm's RankCtx) and the socket-backed
// distributed communicator (dist::RankComm) execute byte-identical
// control flow. Trajectory compatibility between the two backends — the
// same cooperation-round decisions given the same exchanged payloads — is
// a consequence of this sharing, and a parity test pins it.
//
// On top of the raw vector<int64_t> collectives sit the typed wrappers the
// cooperative/collective strategies actually call (the mpi_collective
// idiom: named operations over typed values instead of raw buffers):
// allreduce_minloc for "who holds the best cost", broadcast_values for
// elite-configuration shipping, and gather of per-rank RankSummary rows.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

#include "par/mailbox.hpp"

namespace cas::par {

/// Element-wise combiner for reduce/allreduce.
enum class ReduceOp { kSum, kMin, kMax };

/// What the collective algorithms need from a communicator endpoint:
/// identity, a non-blocking post to any rank, and blocking selective
/// receive of collective frames. RankCtx (threads + shared mailboxes) and
/// dist::RankComm (TCP through the coordinator) both satisfy this.
template <typename EP>
concept CollectiveEndpoint = requires(EP ep, const EP cep, int dest, Message msg, int tag,
                                      int64_t seq) {
  { cep.rank() } -> std::convertible_to<int>;
  { cep.size() } -> std::convertible_to<int>;
  ep.send(dest, msg);
  { ep.recv_collective(tag, seq) } -> std::convertible_to<Message>;
  { ep.next_seq() } -> std::convertible_to<int64_t>;
};

namespace detail {

/// Collective payload layout: [seq, data...].
inline std::vector<int64_t> with_seq(int64_t seq, std::span<const int64_t> data) {
  std::vector<int64_t> payload;
  payload.reserve(data.size() + 1);
  payload.push_back(seq);
  payload.insert(payload.end(), data.begin(), data.end());
  return payload;
}

inline std::vector<int64_t> strip_seq(const Message& m) {
  return {m.payload.begin() + 1, m.payload.end()};
}

inline void combine(std::vector<int64_t>& acc, const std::vector<int64_t>& in, ReduceOp op) {
  if (acc.size() != in.size())
    throw std::invalid_argument("reduce: ranks contributed different lengths");
  for (size_t k = 0; k < acc.size(); ++k) {
    switch (op) {
      case ReduceOp::kSum: acc[k] += in[k]; break;
      case ReduceOp::kMin: acc[k] = std::min(acc[k], in[k]); break;
      case ReduceOp::kMax: acc[k] = std::max(acc[k], in[k]); break;
    }
  }
}

}  // namespace detail

// --- raw collectives -------------------------------------------------------
// Every rank of the communicator must call the same collectives in the same
// order (the MPI contract). The caller advances one sequence number per
// collective call; selective receive on (tag, seq) keeps back-to-back
// collectives of the same kind from cross-talking.

/// Block until every rank has entered the barrier.
template <CollectiveEndpoint EP>
void collective_barrier(EP& ep, int64_t seq) {
  const int n = ep.size();
  if (n == 1) return;
  if (ep.rank() == 0) {
    for (int arrived = 1; arrived < n; ++arrived) (void)ep.recv_collective(kTagBarrier, seq);
    for (int r = 1; r < n; ++r) ep.send(r, Message{kTagBarrier, ep.rank(), {seq}});
  } else {
    ep.send(0, Message{kTagBarrier, ep.rank(), {seq}});
    (void)ep.recv_collective(kTagBarrier, seq);
  }
}

/// Root's `values` is distributed to every rank; others' input is ignored.
/// Returns the broadcast payload on all ranks.
template <CollectiveEndpoint EP>
std::vector<int64_t> collective_broadcast(EP& ep, int64_t seq, int root,
                                          std::vector<int64_t> values) {
  if (root < 0 || root >= ep.size()) throw std::out_of_range("broadcast: bad root");
  if (ep.size() == 1) return values;
  if (ep.rank() == root) {
    const auto payload = detail::with_seq(seq, values);
    for (int r = 0; r < ep.size(); ++r) {
      if (r != ep.rank()) ep.send(r, Message{kTagBroadcast, ep.rank(), payload});
    }
    return values;
  }
  return detail::strip_seq(ep.recv_collective(kTagBroadcast, seq));
}

/// Element-wise reduction of every rank's `values` (all must have equal
/// length). The combined vector is returned at the root; other ranks get an
/// empty vector.
template <CollectiveEndpoint EP>
std::vector<int64_t> collective_reduce(EP& ep, int64_t seq, int root,
                                       const std::vector<int64_t>& values, ReduceOp op) {
  if (root < 0 || root >= ep.size()) throw std::out_of_range("reduce: bad root");
  if (ep.size() == 1) return values;
  if (ep.rank() == root) {
    std::vector<int64_t> acc = values;
    for (int contributions = 1; contributions < ep.size(); ++contributions) {
      const Message m = ep.recv_collective(kTagReduce, seq);
      detail::combine(acc, detail::strip_seq(m), op);
    }
    return acc;
  }
  ep.send(root, Message{kTagReduce, ep.rank(), detail::with_seq(seq, values)});
  return {};
}

/// reduce at rank 0 followed by broadcast: every rank receives the
/// combination. Consumes TWO sequence numbers.
template <CollectiveEndpoint EP>
std::vector<int64_t> collective_allreduce(EP& ep, int64_t reduce_seq, int64_t bcast_seq,
                                          const std::vector<int64_t>& values, ReduceOp op) {
  auto combined = collective_reduce(ep, reduce_seq, 0, values, op);
  return collective_broadcast(ep, bcast_seq, 0, std::move(combined));
}

/// Root receives every rank's vector, indexed by source rank; other ranks
/// get an empty result.
template <CollectiveEndpoint EP>
std::vector<std::vector<int64_t>> collective_gather(EP& ep, int64_t seq, int root,
                                                    const std::vector<int64_t>& values) {
  if (root < 0 || root >= ep.size()) throw std::out_of_range("gather: bad root");
  if (ep.rank() != root) {
    ep.send(root, Message{kTagGather, ep.rank(), detail::with_seq(seq, values)});
    return {};
  }
  std::vector<std::vector<int64_t>> out(static_cast<size_t>(ep.size()));
  out[static_cast<size_t>(ep.rank())] = values;
  for (int contributions = 1; contributions < ep.size(); ++contributions) {
    const Message m = ep.recv_collective(kTagGather, seq);
    out[static_cast<size_t>(m.source)] = detail::strip_seq(m);
  }
  return out;
}

// --- typed wrappers --------------------------------------------------------
// These are the operations the cooperative/collective strategies speak.
// Each one burns sequence numbers through the endpoint's next_seq() so the
// raw and typed forms can interleave freely.

/// "Which rank holds the minimum value?" — MPI_MINLOC. Ties break to the
/// LOWEST rank on every backend (value is compared first, then rank), so
/// the decision is deterministic given the exchanged payloads.
struct MinLoc {
  int64_t value = std::numeric_limits<int64_t>::max();
  int rank = -1;
};

template <CollectiveEndpoint EP>
MinLoc allreduce_minloc(EP& ep, int64_t value) {
  // Encode (value, rank) so kMin over the pair-as-lexicographic surrogate
  // cannot be done element-wise; gather-at-root + broadcast keeps the
  // decision in one deterministic place instead.
  const auto rows = collective_gather(ep, ep.next_seq(), 0, {value});
  std::vector<int64_t> decision(2);
  if (ep.rank() == 0) {
    MinLoc best;
    for (size_t r = 0; r < rows.size(); ++r) {
      if (rows[r].empty()) continue;
      if (best.rank < 0 || rows[r][0] < best.value) {
        best.value = rows[r][0];
        best.rank = static_cast<int>(r);
      }
    }
    decision = {best.value, best.rank};
  }
  decision = collective_broadcast(ep, ep.next_seq(), 0, std::move(decision));
  return MinLoc{decision[0], static_cast<int>(decision[1])};
}

/// Broadcast a configuration (permutation) from `root` to every rank.
template <CollectiveEndpoint EP>
std::vector<int> broadcast_config(EP& ep, int root, std::span<const int> config) {
  std::vector<int64_t> wide(config.begin(), config.end());
  const auto out = collective_broadcast(ep, ep.next_seq(), root, std::move(wide));
  return {out.begin(), out.end()};
}

/// Per-rank run summary combined inside the communicator at the end of a
/// distributed walk — what a production MPI build would MPI_Gather before
/// finalize. Wall/reset seconds travel as microseconds (the payloads are
/// integer vectors).
struct RankSummary {
  int64_t iterations = 0;
  int64_t solved = 0;
  int64_t walkers_run = 0;
  int64_t final_cost = -1;
  int64_t wall_micros = 0;
  int64_t winner_local = -1;  // this rank's winning walker index (-1: none)

  [[nodiscard]] std::vector<int64_t> to_payload() const {
    return {iterations, solved, walkers_run, final_cost, wall_micros, winner_local};
  }
  static RankSummary from_payload(const std::vector<int64_t>& p) {
    RankSummary s;
    if (p.size() != 6) throw std::invalid_argument("RankSummary: bad payload length");
    s.iterations = p[0];
    s.solved = p[1];
    s.walkers_run = p[2];
    s.final_cost = p[3];
    s.wall_micros = p[4];
    s.winner_local = p[5];
    return s;
  }
};

/// Gather every rank's summary at rank 0 (empty elsewhere).
template <CollectiveEndpoint EP>
std::vector<RankSummary> gather_summaries(EP& ep, const RankSummary& mine) {
  const auto rows = collective_gather(ep, ep.next_seq(), 0, mine.to_payload());
  std::vector<RankSummary> out;
  if (ep.rank() != 0) return out;
  out.reserve(rows.size());
  for (const auto& row : rows) out.push_back(RankSummary::from_payload(row));
  return out;
}

}  // namespace cas::par
