// The per-rank mailbox shared by every communicator backend: the
// in-process par::Comm (ranks are threads, senders post directly) and the
// socket-backed dist::RankComm (a reader thread posts frames decoded off
// the coordinator connection). Keeping ONE queue implementation is what
// makes the two backends trajectory-compatible — selective receive, tag
// matching, and the termination fast-flag behave identically no matter
// which transport delivered the message.
//
// All blocking receives take an optional deadline so a socket-backed rank
// can fail a collective instead of wedging when a peer dies; the
// in-process backend passes no deadline (its peers are threads of the same
// process and cannot silently vanish).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

namespace cas::par {

struct Message {
  int tag = 0;
  int source = -1;
  std::vector<int64_t> payload;
};

/// Well-known tags, mirroring the paper's protocol.
inline constexpr int kTagSolutionFound = 1;
inline constexpr int kTagTerminate = 2;

/// Tags reserved by the collective operations (selective receive keeps them
/// from interfering with point-to-point traffic such as kTagSolutionFound).
inline constexpr int kTagBarrier = 100;
inline constexpr int kTagBroadcast = 101;
inline constexpr int kTagReduce = 102;
inline constexpr int kTagGather = 103;

/// Mutex-guarded message queue with MPI-style selective receive. Posts are
/// cheap (push + notify); receives scan the queue for the first match so
/// out-of-order arrivals (a collective reply overtaking a point-to-point
/// message, or vice versa) never consume the wrong frame.
class Mailbox {
 public:
  /// Monotonic deadline for the blocking receives; nullopt = wait forever.
  using Deadline = std::optional<std::chrono::steady_clock::time_point>;

  void post(Message msg) {
    {
      std::scoped_lock lock(mu_);
      if (msg.tag == kTagTerminate || msg.tag == kTagSolutionFound) has_termination_ = true;
      queue_.push_back(std::move(msg));
    }
    cv_.notify_all();
  }

  /// Non-blocking: first pending message, if any.
  [[nodiscard]] std::optional<Message> try_take() {
    std::scoped_lock lock(mu_);
    if (queue_.empty()) return std::nullopt;
    return take_at(0);
  }

  /// Blocking receive of the first pending message. Returns nullopt only
  /// on deadline expiry.
  [[nodiscard]] std::optional<Message> take(Deadline deadline = std::nullopt) {
    return take_matching([](const Message&) { return true; }, deadline);
  }

  /// Blocking receive of the first message with this tag, leaving all
  /// others queued.
  [[nodiscard]] std::optional<Message> take_tagged(int tag, Deadline deadline = std::nullopt) {
    return take_matching([tag](const Message& m) { return m.tag == tag; }, deadline);
  }

  /// Blocking selective receive for the collective algorithms: first
  /// message with this tag whose payload starts with sequence number `seq`.
  [[nodiscard]] std::optional<Message> take_collective(int tag, int64_t seq,
                                                      Deadline deadline = std::nullopt) {
    return take_matching(
        [tag, seq](const Message& m) {
          return m.tag == tag && !m.payload.empty() && m.payload.front() == seq;
        },
        deadline);
  }

  /// True once any sender has posted a terminate/solution message here.
  [[nodiscard]] bool termination_pending() const {
    std::scoped_lock lock(mu_);
    return has_termination_;
  }

  /// Reset to empty (a Comm reused across runs).
  void clear() {
    std::scoped_lock lock(mu_);
    queue_.clear();
    has_termination_ = false;
    closed_ = false;
  }

  /// Epoch boundary between successive distributed requests on one
  /// long-lived communicator: drop stray SOLUTION_FOUND / TERMINATE
  /// broadcasts left over from the finished request and re-arm the
  /// termination flag. Collective-tagged messages are KEPT — a fast peer
  /// released from the final barrier may already have sent its first
  /// collective frame of the NEXT request, and that frame can be sitting
  /// here before this rank reaches its own epoch boundary; dropping it
  /// would wedge the next collective. (A completed request leaves no stale
  /// collective frames behind: every collective consumed its messages.)
  /// Unlike clear(), a closed (failed) mailbox stays closed.
  void drain() {
    std::scoped_lock lock(mu_);
    std::erase_if(queue_, [](const Message& m) {
      return m.tag == kTagSolutionFound || m.tag == kTagTerminate;
    });
    has_termination_ = false;
  }

  /// Fail-fast shutdown: every blocked and future receive returns nullopt
  /// immediately (after one final scan of what already arrived). The
  /// socket backend closes the mailbox when its connection dies so ranks
  /// blocked inside a collective unwind instead of waiting out the full
  /// deadline.
  void close() {
    {
      std::scoped_lock lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool is_closed() const {
    std::scoped_lock lock(mu_);
    return closed_;
  }

 private:
  template <typename Pred>
  std::optional<Message> take_matching(Pred&& match, Deadline deadline) {
    std::unique_lock lock(mu_);
    while (true) {
      for (size_t k = 0; k < queue_.size(); ++k) {
        if (match(queue_[k])) return take_at(k);
      }
      if (closed_) return std::nullopt;
      if (deadline) {
        if (cv_.wait_until(lock, *deadline) == std::cv_status::timeout) {
          // One final scan: the notify may have raced the timeout.
          for (size_t k = 0; k < queue_.size(); ++k) {
            if (match(queue_[k])) return take_at(k);
          }
          return std::nullopt;
        }
      } else {
        cv_.wait(lock);
      }
    }
  }

  /// Caller holds mu_.
  Message take_at(size_t k) {
    Message m = std::move(queue_[k]);
    queue_.erase(queue_.begin() + static_cast<ptrdiff_t>(k));
    return m;
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Message> queue_;
  bool has_termination_ = false;
  bool closed_ = false;
};

}  // namespace cas::par
