#include "par/comm.hpp"

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <thread>

namespace cas::par {

int RankCtx::size() const { return comm_->size(); }

void RankCtx::send(int dest, Message msg) const {
  msg.source = rank_;
  comm_->post(dest, std::move(msg));
}

void RankCtx::broadcast_others(const Message& msg) const {
  for (int r = 0; r < comm_->size(); ++r) {
    if (r != rank_) send(r, msg);
  }
}

std::optional<Message> RankCtx::try_recv() const {
  auto& box = *comm_->mailboxes_[static_cast<size_t>(rank_)];
  std::scoped_lock lock(box.mu);
  if (box.queue.empty()) return std::nullopt;
  Message m = std::move(box.queue.front());
  box.queue.erase(box.queue.begin());
  return m;
}

Message RankCtx::recv() const {
  auto& box = *comm_->mailboxes_[static_cast<size_t>(rank_)];
  std::unique_lock lock(box.mu);
  box.cv.wait(lock, [&] { return !box.queue.empty(); });
  Message m = std::move(box.queue.front());
  box.queue.erase(box.queue.begin());
  return m;
}

bool RankCtx::termination_pending() const {
  auto& box = *comm_->mailboxes_[static_cast<size_t>(rank_)];
  std::scoped_lock lock(box.mu);
  return box.has_termination;
}

Message RankCtx::recv_tagged(int tag) const {
  auto& box = *comm_->mailboxes_[static_cast<size_t>(rank_)];
  std::unique_lock lock(box.mu);
  while (true) {
    for (size_t k = 0; k < box.queue.size(); ++k) {
      if (box.queue[k].tag == tag) {
        Message m = std::move(box.queue[k]);
        box.queue.erase(box.queue.begin() + static_cast<ptrdiff_t>(k));
        return m;
      }
    }
    box.cv.wait(lock);
  }
}

Message RankCtx::recv_collective(int tag, int64_t seq) const {
  auto& box = *comm_->mailboxes_[static_cast<size_t>(rank_)];
  std::unique_lock lock(box.mu);
  while (true) {
    for (size_t k = 0; k < box.queue.size(); ++k) {
      const Message& m = box.queue[k];
      if (m.tag == tag && !m.payload.empty() && m.payload.front() == seq) {
        Message out = std::move(box.queue[k]);
        box.queue.erase(box.queue.begin() + static_cast<ptrdiff_t>(k));
        return out;
      }
    }
    box.cv.wait(lock);
  }
}

namespace {

/// Collective payload layout: [seq, data...].
std::vector<int64_t> with_seq(int64_t seq, const std::vector<int64_t>& data) {
  std::vector<int64_t> payload;
  payload.reserve(data.size() + 1);
  payload.push_back(seq);
  payload.insert(payload.end(), data.begin(), data.end());
  return payload;
}

std::vector<int64_t> strip_seq(const Message& m) {
  return {m.payload.begin() + 1, m.payload.end()};
}

void combine(std::vector<int64_t>& acc, const std::vector<int64_t>& in, ReduceOp op) {
  if (acc.size() != in.size())
    throw std::invalid_argument("reduce: ranks contributed different lengths");
  for (size_t k = 0; k < acc.size(); ++k) {
    switch (op) {
      case ReduceOp::kSum: acc[k] += in[k]; break;
      case ReduceOp::kMin: acc[k] = std::min(acc[k], in[k]); break;
      case ReduceOp::kMax: acc[k] = std::max(acc[k], in[k]); break;
    }
  }
}

}  // namespace

void RankCtx::barrier() {
  const auto seq = static_cast<int64_t>(collective_seq_++);
  const int n = size();
  if (n == 1) return;
  if (rank_ == 0) {
    for (int arrived = 1; arrived < n; ++arrived) (void)recv_collective(kTagBarrier, seq);
    for (int r = 1; r < n; ++r) send(r, Message{kTagBarrier, rank_, {seq}});
  } else {
    send(0, Message{kTagBarrier, rank_, {seq}});
    (void)recv_collective(kTagBarrier, seq);
  }
}

std::vector<int64_t> RankCtx::broadcast(int root, std::vector<int64_t> values) {
  const auto seq = static_cast<int64_t>(collective_seq_++);
  if (root < 0 || root >= size()) throw std::out_of_range("broadcast: bad root");
  if (size() == 1) return values;
  if (rank_ == root) {
    const auto payload = with_seq(seq, values);
    for (int r = 0; r < size(); ++r) {
      if (r != rank_) send(r, Message{kTagBroadcast, rank_, payload});
    }
    return values;
  }
  return strip_seq(recv_collective(kTagBroadcast, seq));
}

std::vector<int64_t> RankCtx::reduce(int root, const std::vector<int64_t>& values,
                                     ReduceOp op) {
  const auto seq = static_cast<int64_t>(collective_seq_++);
  if (root < 0 || root >= size()) throw std::out_of_range("reduce: bad root");
  if (size() == 1) return values;
  if (rank_ == root) {
    std::vector<int64_t> acc = values;
    for (int contributions = 1; contributions < size(); ++contributions) {
      const Message m = recv_collective(kTagReduce, seq);
      combine(acc, strip_seq(m), op);
    }
    return acc;
  }
  send(root, Message{kTagReduce, rank_, with_seq(seq, values)});
  return {};
}

std::vector<int64_t> RankCtx::allreduce(const std::vector<int64_t>& values, ReduceOp op) {
  auto combined = reduce(0, values, op);
  return broadcast(0, std::move(combined));
}

std::vector<std::vector<int64_t>> RankCtx::gather(int root,
                                                  const std::vector<int64_t>& values) {
  const auto seq = static_cast<int64_t>(collective_seq_++);
  if (root < 0 || root >= size()) throw std::out_of_range("gather: bad root");
  if (rank_ != root) {
    send(root, Message{kTagGather, rank_, with_seq(seq, values)});
    return {};
  }
  std::vector<std::vector<int64_t>> out(static_cast<size_t>(size()));
  out[static_cast<size_t>(rank_)] = values;
  for (int contributions = 1; contributions < size(); ++contributions) {
    const Message m = recv_collective(kTagGather, seq);
    out[static_cast<size_t>(m.source)] = strip_seq(m);
  }
  return out;
}

Comm::Comm(int num_ranks) : num_ranks_(num_ranks) {
  if (num_ranks < 1) throw std::invalid_argument("Comm: need at least one rank");
  mailboxes_.reserve(static_cast<size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) mailboxes_.push_back(std::make_unique<Mailbox>());
}

void Comm::post(int dest, Message msg) {
  if (dest < 0 || dest >= num_ranks_) throw std::out_of_range("Comm::post: bad destination rank");
  auto& box = *mailboxes_[static_cast<size_t>(dest)];
  {
    std::scoped_lock lock(box.mu);
    if (msg.tag == kTagTerminate || msg.tag == kTagSolutionFound) box.has_termination = true;
    box.queue.push_back(std::move(msg));
  }
  box.cv.notify_one();
}

void Comm::run(const std::function<void(RankCtx&)>& fn) {
  // Reset mailboxes so a Comm can be reused across runs.
  for (auto& boxp : mailboxes_) {
    std::scoped_lock lock(boxp->mu);
    boxp->queue.clear();
    boxp->has_termination = false;
  }
  std::vector<std::jthread> threads;
  threads.reserve(static_cast<size_t>(num_ranks_));
  std::exception_ptr first_error;
  std::mutex error_mu;
  for (int r = 0; r < num_ranks_; ++r) {
    threads.emplace_back([this, r, &fn, &first_error, &error_mu] {
      RankCtx ctx(this, r);
      try {
        fn(ctx);
      } catch (...) {
        std::scoped_lock lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  threads.clear();  // join all
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace cas::par
