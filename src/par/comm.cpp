#include "par/comm.hpp"

#include <mutex>
#include <stdexcept>
#include <thread>

namespace cas::par {

int RankCtx::size() const { return comm_->size(); }

void RankCtx::send(int dest, Message msg) const {
  msg.source = rank_;
  comm_->post(dest, std::move(msg));
}

void RankCtx::broadcast_others(const Message& msg) const {
  for (int r = 0; r < comm_->size(); ++r) {
    if (r != rank_) send(r, msg);
  }
}

std::optional<Message> RankCtx::try_recv() const {
  return comm_->mailboxes_[static_cast<size_t>(rank_)]->try_take();
}

Message RankCtx::recv() const {
  return *comm_->mailboxes_[static_cast<size_t>(rank_)]->take();
}

bool RankCtx::termination_pending() const {
  return comm_->mailboxes_[static_cast<size_t>(rank_)]->termination_pending();
}

Message RankCtx::recv_tagged(int tag) const {
  return *comm_->mailboxes_[static_cast<size_t>(rank_)]->take_tagged(tag);
}

Message RankCtx::recv_collective(int tag, int64_t seq) const {
  return *comm_->mailboxes_[static_cast<size_t>(rank_)]->take_collective(tag, seq);
}

void RankCtx::barrier() { collective_barrier(*this, next_seq()); }

std::vector<int64_t> RankCtx::broadcast(int root, std::vector<int64_t> values) {
  return collective_broadcast(*this, next_seq(), root, std::move(values));
}

std::vector<int64_t> RankCtx::reduce(int root, const std::vector<int64_t>& values,
                                     ReduceOp op) {
  return collective_reduce(*this, next_seq(), root, values, op);
}

std::vector<int64_t> RankCtx::allreduce(const std::vector<int64_t>& values, ReduceOp op) {
  const int64_t reduce_seq = next_seq();
  const int64_t bcast_seq = next_seq();
  return collective_allreduce(*this, reduce_seq, bcast_seq, values, op);
}

std::vector<std::vector<int64_t>> RankCtx::gather(int root,
                                                  const std::vector<int64_t>& values) {
  return collective_gather(*this, next_seq(), root, values);
}

Comm::Comm(int num_ranks) : num_ranks_(num_ranks) {
  if (num_ranks < 1) throw std::invalid_argument("Comm: need at least one rank");
  mailboxes_.reserve(static_cast<size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) mailboxes_.push_back(std::make_unique<Mailbox>());
}

void Comm::post(int dest, Message msg) {
  if (dest < 0 || dest >= num_ranks_) throw std::out_of_range("Comm::post: bad destination rank");
  mailboxes_[static_cast<size_t>(dest)]->post(std::move(msg));
}

void Comm::run(const std::function<void(RankCtx&)>& fn) {
  // Reset mailboxes so a Comm can be reused across runs.
  for (auto& boxp : mailboxes_) boxp->clear();
  std::vector<std::jthread> threads;
  threads.reserve(static_cast<size_t>(num_ranks_));
  std::exception_ptr first_error;
  std::mutex error_mu;
  for (int r = 0; r < num_ranks_; ++r) {
    threads.emplace_back([this, r, &fn, &first_error, &error_mu] {
      RankCtx ctx(this, r);
      try {
        fn(ctx);
      } catch (...) {
        std::scoped_lock lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  threads.clear();  // join all
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace cas::par
