// Cooperative (dependent) multi-walk — the paper's FUTURE WORK (Sec. VI):
//   "more complex parallel execution methods with inter-processes
//    communication, i.e., in the dependent multiple-walk scheme ...
//    (2) re-using some common computations and/or recording previous
//    interesting crossroads in the resolution, from which a restart can be
//    operated."
//
// Implementation: walkers share a Blackboard holding the best configuration
// any walker has reached. Each walker publishes improvements, and at
// diversification time (the reset — the natural "restart from a crossroad"
// point) adopts a perturbed copy of the blackboard configuration with
// probability `adopt_probability` instead of running its own reset.
//
// Communication is deliberately tiny (one configuration + its cost),
// honouring the paper's goal of "minimizing data transfers as much as
// possible". The ablation bench (bench_ablation_cooperation) measures
// whether this helps CAP — the paper leaves that an open question.
#pragma once

#include <cstdint>
#include <limits>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "core/adaptive_search.hpp"
#include "core/problem.hpp"
#include "par/multiwalk.hpp"

namespace cas::par {

/// Problems whose full configuration can be exported/imported (needed to
/// ship configurations between walkers).
template <typename P>
concept SharableProblem = core::LocalSearchProblem<P> && requires(P p, std::span<const int> s) {
  { p.permutation() } -> std::convertible_to<const std::vector<int>&>;
  p.set_permutation(s);
};

/// Thread-safe best-configuration store. Lock-based: offers happen at most
/// once per improvement per walker, so contention is negligible next to the
/// search itself (CP.43: tiny critical sections).
class Blackboard {
 public:
  /// Record `config` if it beats the current best. Returns true if adopted.
  bool offer(core::Cost cost, const std::vector<int>& config) {
    std::scoped_lock lock(mu_);
    ++offers_;
    if (!best_config_.empty() && cost >= best_cost_) return false;
    best_cost_ = cost;
    best_config_ = config;
    ++improvements_;
    return true;
  }

  /// Best configuration so far, if any walker has published one.
  [[nodiscard]] std::optional<std::pair<core::Cost, std::vector<int>>> best() const {
    std::scoped_lock lock(mu_);
    if (best_config_.empty()) return std::nullopt;
    return std::make_pair(best_cost_, best_config_);
  }

  [[nodiscard]] uint64_t offers() const {
    std::scoped_lock lock(mu_);
    return offers_;
  }
  [[nodiscard]] uint64_t improvements() const {
    std::scoped_lock lock(mu_);
    return improvements_;
  }

 private:
  mutable std::mutex mu_;
  core::Cost best_cost_ = 0;
  std::vector<int> best_config_;
  uint64_t offers_ = 0;
  uint64_t improvements_ = 0;
};

/// Wraps a SharableProblem: publishes improvements to the blackboard and,
/// at reset time, restarts from a perturbed copy of the blackboard's best
/// configuration with probability `adopt_probability` (falling back to the
/// inner problem's own reset otherwise).
template <SharableProblem P>
class CooperativeProblem {
 public:
  CooperativeProblem(P inner, Blackboard* board, double adopt_probability)
      : inner_(std::move(inner)), board_(board), adopt_probability_(adopt_probability) {}

  // --- LocalSearchProblem forwarding ---
  [[nodiscard]] int size() const { return inner_.size(); }
  [[nodiscard]] core::Cost cost() const { return inner_.cost(); }
  [[nodiscard]] int value(int i) const { return inner_.value(i); }
  void randomize(core::Rng& rng) {
    inner_.randomize(rng);
    local_best_ = std::numeric_limits<core::Cost>::max();
  }
  [[nodiscard]] core::Cost delta_cost(int i, int j) const { return inner_.delta_cost(i, j); }
  /// Forwarded batched APIs: without these the wrapper would silently
  /// demote an engine running on a cooperative walker to the per-j scalar
  /// loop (HasDeltaRow / HasBatchEval are member-detection concepts), so
  /// the vectorized move scan and the batched reset candidate pipeline
  /// stay active under cooperation.
  void delta_costs_row(int i, std::span<core::Cost> out) const
    requires core::HasDeltaRow<P>
  {
    inner_.delta_costs_row(i, out);
  }
  void evaluate_batch(const core::CandidateBatch& batch, core::Cost bound,
                      std::span<core::Cost> out) const
    requires core::HasBatchEval<P>
  {
    inner_.evaluate_batch(batch, bound, out);
  }
  [[nodiscard]] core::Cost cost_if_swap(int i, int j) const { return inner_.cost_if_swap(i, j); }
  void apply_swap(int i, int j) {
    inner_.apply_swap(i, j);
    // Publish strict improvements over this walker's own best. The offer
    // itself deduplicates against the global best.
    if (inner_.cost() < local_best_) {
      local_best_ = inner_.cost();
      board_->offer(inner_.cost(), inner_.permutation());
      ++publishes_;
    }
  }
  [[nodiscard]] std::span<const core::Cost> errors() const { return inner_.errors(); }
  void compute_errors(std::span<core::Cost> errs) const { inner_.compute_errors(errs); }

  /// Reset hook: adopt the shared crossroad (perturbed, so walkers do not
  /// collapse onto one trajectory) or defer to the inner reset.
  bool custom_reset(core::Rng& rng) {
    last_reset_deferred_ = false;
    if (board_ != nullptr && rng.chance(adopt_probability_)) {
      if (auto shared = board_->best()) {
        const core::Cost entry = inner_.cost();
        if (shared->first < entry) {
          inner_.set_permutation(shared->second);
          perturb(rng);
          ++adoptions_;
          return inner_.cost() < entry;
        }
      }
    }
    if constexpr (core::HasCustomReset<P>) {
      last_reset_deferred_ = true;
      return inner_.custom_reset(rng);
    } else {
      perturb(rng);
      return false;
    }
  }

  /// Reset observability forward: without it the engines' reset_candidates
  /// stat would read 0 under cooperation. A blackboard adoption evaluates
  /// no candidates, so it reports the inner problem's last count only when
  /// the reset actually deferred to it.
  [[nodiscard]] int reset_candidates_evaluated() const
    requires requires(const P& p) { p.reset_candidates_evaluated(); }
  {
    return last_reset_deferred_ ? inner_.reset_candidates_evaluated() : 0;
  }

  /// Same deferral rule for the escape-chunk telemetry: a blackboard
  /// adoption runs no batched walk, so it contributes no chunks.
  [[nodiscard]] int reset_chunks_escaped() const
    requires requires(const P& p) { p.reset_chunks_escaped(); }
  {
    return last_reset_deferred_ ? inner_.reset_chunks_escaped() : 0;
  }

  // --- introspection ---
  [[nodiscard]] const std::vector<int>& permutation() const { return inner_.permutation(); }
  void set_permutation(std::span<const int> p) { inner_.set_permutation(p); }
  [[nodiscard]] uint64_t adoptions() const { return adoptions_; }
  [[nodiscard]] uint64_t publishes() const { return publishes_; }
  [[nodiscard]] P& inner() { return inner_; }

 private:
  void perturb(core::Rng& rng) {
    // One random transposition: the minimum diversification that prevents
    // two adopters from continuing identically.
    const int n = inner_.size();
    const int i = static_cast<int>(rng.below(static_cast<uint64_t>(n)));
    int j = static_cast<int>(rng.below(static_cast<uint64_t>(n)));
    if (j == i) j = (j + 1) % n;
    inner_.apply_swap(i, j);
  }

  P inner_;
  Blackboard* board_;
  double adopt_probability_;
  core::Cost local_best_ = std::numeric_limits<core::Cost>::max();
  uint64_t adoptions_ = 0;
  uint64_t publishes_ = 0;
  bool last_reset_deferred_ = false;
};

struct CooperativeOptions {
  double adopt_probability = 0.25;
  unsigned num_threads = 0;
  /// Shared executor + deadline + external cancellation, forwarded to the
  /// underlying multi-walk runner (see MultiWalkOptions).
  ThreadPool* executor = nullptr;
  double timeout_seconds = 0.0;
  std::atomic<bool>* external_stop = nullptr;
};

/// Cooperative multi-walk driver: like run_multiwalk, but walkers share a
/// blackboard. `make_problem(walker_id)` builds each walker's inner problem;
/// `make_config(walker_id, seed)` its engine configuration.
template <SharableProblem P, typename MakeProblem, typename MakeConfig>
MultiWalkResult run_multiwalk_cooperative(int num_walkers, uint64_t master_seed,
                                          MakeProblem&& make_problem, MakeConfig&& make_config,
                                          const CooperativeOptions& opts = {},
                                          Blackboard* board_out = nullptr) {
  Blackboard local_board;
  Blackboard* board = board_out != nullptr ? board_out : &local_board;
  MultiWalkOptions mw;
  mw.num_threads = opts.num_threads;
  mw.executor = opts.executor;
  mw.timeout_seconds = opts.timeout_seconds;
  mw.external_stop = opts.external_stop;
  return run_multiwalk(
      num_walkers, master_seed,
      [&](int id, uint64_t seed, core::StopToken stop) {
        CooperativeProblem<P> problem(make_problem(id), board, opts.adopt_probability);
        core::AdaptiveSearch<CooperativeProblem<P>> engine(problem, make_config(id, seed));
        return engine.solve(stop);
      },
      mw);
}

}  // namespace cas::par
