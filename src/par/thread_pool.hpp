// Fixed-size thread pool used by the sample-bank collector (sim module) to
// run many independent sequential searches concurrently. Follows the C++
// Core Guidelines concurrency rules: jthreads joined by RAII, shared state
// confined to the mutex-guarded queue, tasks passed by value.
#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace cas::par {

class ThreadPool {
 public:
  /// `num_threads` == 0 uses the hardware concurrency (at least 1).
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; the future resolves with its result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::scoped_lock lock(mu_);
      if (closed_) throw std::runtime_error("ThreadPool: submit after shutdown");
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  [[nodiscard]] unsigned size() const { return static_cast<unsigned>(workers_.size()); }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  bool closed_ = false;
  std::vector<std::jthread> workers_;
};

}  // namespace cas::par
