// Single-walk parallelism: parallel exploration of the min-conflict
// neighborhood inside ONE Adaptive Search walk — the other branch of the
// paper's Sec. V taxonomy ("single-walk methods consist in using
// parallelism inside a single search process, e.g., for parallelizing the
// exploration of the neighborhood", citing Luong et al.'s GPU version).
//
// Each worker thread owns a full replica of the problem; per iteration the
// driver publishes the culprit variable and the replicas scan disjoint
// slices of the swap neighborhood between two std::barrier phases. All
// other AS machinery (tabu, plateau probability, resets) is identical to
// the sequential engine, so the iteration *count* behaves like sequential
// AS while the iteration *latency* is what parallelism can or cannot buy.
//
// The ablation bench shows what the paper's authors knew: for the CAP the
// neighborhood is O(n) cheap moves, so barrier latency swamps the scan and
// single-walk parallelism buys nothing — which is exactly why the paper
// parallelizes across walks instead.
#pragma once

#include <algorithm>
#include <barrier>
#include <limits>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "core/config.hpp"
#include "core/problem.hpp"
#include "core/stats.hpp"
#include "util/timer.hpp"

namespace cas::par {

using core::Cost;

/// Problems usable by the replica scheme additionally expose their full
/// configuration so replicas can resynchronize after a reset.
template <typename P>
concept ReplicableProblem =
    core::LocalSearchProblem<P> && std::copy_constructible<P> &&
    requires(P p, const P& cp, std::span<const int> perm) {
      { cp.permutation() } -> std::convertible_to<const std::vector<int>&>;
      { p.set_permutation(perm) };
    };

template <ReplicableProblem P>
class ParallelNeighborhoodSearch {
 public:
  /// `threads` replicas scan the neighborhood (>= 1).
  ParallelNeighborhoodSearch(P& problem, core::AsConfig config, int threads)
      : problem_(problem),
        cfg_(config),
        rng_(config.seed),
        threads_(threads < 1 ? 1 : threads) {}

  core::RunStats solve(core::StopToken stop = {}) {
    problem_.randomize(rng_);
    return solve_from_current(stop);
  }

  core::RunStats solve_from_current(core::StopToken stop = {}) {
    util::WallTimer timer;
    core::RunStats st;
    const int n = problem_.size();
    tabu_until_.assign(static_cast<size_t>(n), 0);
    results_.assign(static_cast<size_t>(threads_), {});

    // Shared per-round command block, written by the driver strictly
    // between barrier phases, read by the workers.
    cmd_ = Command::kResync;  // round 0: workers copy the randomized state
    culprit_ = -1;
    pending_swap_ = {-1, -1};
    resync_perm_ = problem_.permutation();

    std::barrier phase(threads_ + 1);
    std::vector<std::jthread> workers;
    workers.reserve(static_cast<size_t>(threads_));
    for (int w = 0; w < threads_; ++w) {
      workers.emplace_back([this, w, n, &phase] {
        P replica = problem_;  // private replica, synced via commands
        while (true) {
          phase.arrive_and_wait();  // driver published a command
          if (cmd_ == Command::kStop) {
            phase.arrive_and_wait();
            return;
          }
          if (cmd_ == Command::kResync) {
            replica.set_permutation(resync_perm_);
          } else if (pending_swap_.first >= 0) {
            replica.apply_swap(pending_swap_.first, pending_swap_.second);
          }
          WorkerResult& res = results_[static_cast<size_t>(w)];
          res = {};
          if (culprit_ >= 0) {
            // Disjoint slice of the neighborhood: j = w, w+T, w+2T, ...
            // Replicas stay in lockstep with the driver, so deltas from a
            // replica are deltas for the driver's configuration too. The
            // pure delta_cost also means a replica scan writes nothing —
            // no do/undo churn inside the barrier window.
            for (int j = w; j < n; j += threads_) {
              if (j == culprit_) continue;
              const Cost d = replica.delta_cost(culprit_, j);
              ++res.evaluations;
              if (d < res.best_delta) {
                res.best_delta = d;
                res.ties.clear();
                res.ties.push_back(j);
              } else if (d == res.best_delta) {
                res.ties.push_back(j);
              }
            }
          }
          phase.arrive_and_wait();  // results ready for the driver
        }
      });
    }

    // Drive round 0 (pure resync, no scan: culprit_ == -1).
    phase.arrive_and_wait();
    phase.arrive_and_wait();

    uint64_t next_probe = cfg_.probe_interval;
    bool need_resync = false;
    std::pair<int, int> last_swap{-1, -1};

    while (problem_.cost() > 0) {
      if (cfg_.max_iterations != 0 && st.iterations >= cfg_.max_iterations) break;
      if (st.iterations >= next_probe) {
        if (stop.stop_requested()) break;
        next_probe += cfg_.probe_interval;
      }
      ++st.iterations;

      const int culprit = select_culprit(st.iterations);
      if (culprit < 0) {
        diversify(st);
        need_resync = true;
        continue;
      }

      // Publish the round: replicas first catch up (swap or resync), then
      // scan their slices for this culprit.
      cmd_ = need_resync ? Command::kResync : Command::kScan;
      if (need_resync) resync_perm_ = problem_.permutation();
      pending_swap_ = need_resync ? std::pair<int, int>{-1, -1} : last_swap;
      culprit_ = culprit;
      need_resync = false;
      last_swap = {-1, -1};
      phase.arrive_and_wait();  // workers catch up + scan
      phase.arrive_and_wait();  // results ready

      // Merge the per-worker results with uniform tie-breaking.
      Cost best_delta = std::numeric_limits<Cost>::max();
      merged_ties_.clear();
      for (const auto& res : results_) {
        st.move_evaluations += res.evaluations;
        if (res.ties.empty()) continue;
        if (res.best_delta < best_delta) {
          best_delta = res.best_delta;
          merged_ties_.clear();
        }
        if (res.best_delta == best_delta)
          merged_ties_.insert(merged_ties_.end(), res.ties.begin(), res.ties.end());
      }
      const int best_j =
          merged_ties_.empty()
              ? -1
              : merged_ties_[rng_.below(static_cast<uint64_t>(merged_ties_.size()))];

      if (best_j >= 0 && best_delta < 0) {
        problem_.apply_swap(culprit, best_j);
        ++st.swaps;
        last_swap = {culprit, best_j};
        continue;
      }
      if (best_j >= 0 && best_delta == 0 && rng_.chance(cfg_.plateau_probability)) {
        problem_.apply_swap(culprit, best_j);
        ++st.swaps;
        ++st.plateau_moves;
        last_swap = {culprit, best_j};
        continue;
      }
      if (best_j >= 0 && best_delta == 0) ++st.plateau_refused;

      ++st.local_minima;
      tabu_until_[static_cast<size_t>(culprit)] =
          st.iterations + static_cast<uint64_t>(cfg_.tabu_tenure);
      if (count_tabu(st.iterations) >= cfg_.reset_limit) {
        diversify(st);
        need_resync = true;
      }
    }

    // Shut the replicas down.
    cmd_ = Command::kStop;
    phase.arrive_and_wait();
    phase.arrive_and_wait();
    workers.clear();

    st.solved = problem_.cost() == 0;
    st.final_cost = problem_.cost();
    st.wall_seconds = timer.seconds();
    if (st.solved) {
      st.solution.resize(static_cast<size_t>(n));
      for (int i = 0; i < n; ++i) st.solution[static_cast<size_t>(i)] = problem_.value(i);
    }
    return st;
  }

  [[nodiscard]] int threads() const { return threads_; }

 private:
  enum class Command { kScan, kResync, kStop };

  struct WorkerResult {
    Cost best_delta = std::numeric_limits<Cost>::max();
    std::vector<int> ties;
    uint64_t evaluations = 0;
  };

  int select_culprit(uint64_t iter) {
    const int n = problem_.size();
    const std::span<const Cost> errors = problem_.errors();
    Cost best_err = -1;
    int culprit = -1;
    int ties = 0;
    for (int i = 0; i < n; ++i) {
      if (tabu_until_[static_cast<size_t>(i)] > iter) continue;
      const Cost e = errors[static_cast<size_t>(i)];
      if (e > best_err) {
        best_err = e;
        culprit = i;
        ties = 1;
      } else if (e == best_err) {
        ++ties;
        if (rng_.below(static_cast<uint64_t>(ties)) == 0) culprit = i;
      }
    }
    return culprit;
  }

  int count_tabu(uint64_t iter) const {
    int c = 0;
    for (uint64_t t : tabu_until_)
      if (t > iter) ++c;
    return c;
  }

  void diversify(core::RunStats& st) {
    ++st.resets;
    // Timed like the sequential engine's reset phase: the driver resets
    // alone between barrier rounds, so this is pure single-walk reset
    // latency (served by the model's batched candidate pipeline).
    const util::WallTimer reset_timer;
    if constexpr (core::HasCustomReset<P>) {
      if (cfg_.use_custom_reset) {
        const bool escaped = problem_.custom_reset(rng_);
        if constexpr (requires { problem_.reset_candidates_evaluated(); })
          st.reset_candidates += static_cast<uint64_t>(problem_.reset_candidates_evaluated());
        if constexpr (requires { problem_.reset_chunks_escaped(); })
          st.reset_escape_chunks += static_cast<uint64_t>(problem_.reset_chunks_escaped());
        if (escaped)
          ++st.custom_reset_escapes;
        else if (cfg_.hybrid_reset)
          generic_reset();
        std::fill(tabu_until_.begin(), tabu_until_.end(), uint64_t{0});
        st.reset_seconds += reset_timer.seconds();
        return;
      }
    }
    generic_reset();
    std::fill(tabu_until_.begin(), tabu_until_.end(), uint64_t{0});
    st.reset_seconds += reset_timer.seconds();
  }

  void generic_reset() {
    const int n = problem_.size();
    int k = static_cast<int>(std::max(2.0, cfg_.reset_fraction * n + 0.5));
    k = std::min(k, n);
    for (int t = 0; t < k; ++t) {
      const int i = static_cast<int>(rng_.below(static_cast<uint64_t>(n)));
      int j = static_cast<int>(rng_.below(static_cast<uint64_t>(n - 1)));
      if (j >= i) ++j;
      problem_.apply_swap(i, j);
    }
  }

  P& problem_;
  core::AsConfig cfg_;
  core::Rng rng_;
  int threads_;

  std::vector<uint64_t> tabu_until_;
  std::vector<int> merged_ties_;

  // Shared round state (written by driver strictly between barrier phases).
  Command cmd_ = Command::kScan;
  int culprit_ = -1;
  std::pair<int, int> pending_swap_{-1, -1};
  std::vector<int> resync_perm_;
  std::vector<WorkerResult> results_;
};

}  // namespace cas::par
