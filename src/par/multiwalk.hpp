// Independent multi-walk parallel search (paper Sec. V-A).
//
// "Fork a sequential AS method on every available core. But on the opposite
//  of the classical fork-join paradigm, parallel AS shall terminate as soon
//  as a solution is found, not wait until all the processes have finished."
//
// Two interchangeable implementations are provided:
//   * run_multiwalk(): walkers are threads sharing one atomic stop flag —
//     the lightweight form used by benches and the cluster simulator's
//     validation mode;
//   * run_multiwalk_mpi_style(): walkers are ranks of a par::Comm; the
//     winner broadcasts a SOLUTION_FOUND message and every walker polls its
//     mailbox every `probe_interval` iterations — the exact control flow of
//     the paper's OpenMPI implementation.
// Both produce identical semantics (first solution wins; everyone else is
// cancelled); a test asserts this equivalence.
#pragma once

#include <atomic>
#include <functional>
#include <future>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "core/chaotic_seed.hpp"
#include "core/problem.hpp"
#include "core/stats.hpp"
#include "par/comm.hpp"
#include "par/thread_pool.hpp"
#include "util/timer.hpp"

namespace cas::par {

struct MultiWalkResult {
  bool solved = false;
  int winner = -1;             // walker id of the first solution
  double wall_seconds = 0.0;   // time until the winner finished
  core::RunStats winner_stats;
  std::vector<core::RunStats> walker_stats;  // indexed by walker id

  [[nodiscard]] uint64_t total_iterations() const {
    uint64_t total = 0;
    for (const auto& s : walker_stats) total += s.iterations;
    return total;
  }
};

/// Execution knobs shared by the thread-based runners.
struct MultiWalkOptions {
  /// Cap on concurrently running walkers. 0 = one worker per walker (or
  /// the executor's width when one is given). Values below the walker
  /// count oversubscribe: walkers are claimed from a shared counter and
  /// run in chunks.
  unsigned num_threads = 0;
  /// Run walker chunks on this shared pool instead of spawning fresh
  /// jthreads per call — the form SolverService uses so that many
  /// concurrent solve requests share one set of OS threads instead of
  /// oversubscribing the machine. The caller's thread only blocks waiting
  /// for the chunks; walker tasks never submit further pool work, so
  /// batches cannot deadlock the pool.
  ThreadPool* executor = nullptr;
  /// > 0: every walker's stop token also fires once this many wall-clock
  /// seconds elapse (measured from entry), whichever comes first with the
  /// first-win cancellation. Engines poll every probe_interval iterations,
  /// so the overshoot past the deadline is one probe window.
  double timeout_seconds = 0.0;
  /// Caller-owned cancellation OR'd into every walker's stop token — the
  /// distributed runner's remote-stop: a SOLUTION_FOUND arriving from
  /// another process flips it and every local walker unwinds at its next
  /// probe. Must outlive the call.
  std::atomic<bool>* external_stop = nullptr;
};

/// WalkerFn signature: core::RunStats fn(int walker_id, uint64_t seed,
/// core::StopToken stop). The walker must poll `stop` (engines do this
/// every cfg.probe_interval iterations) and return promptly once stopping.
///
/// Per-walker seeds come from the chaotic-map sequence (paper Sec. III-B3).
template <typename WalkerFn>
MultiWalkResult run_multiwalk(int num_walkers, uint64_t master_seed, WalkerFn&& fn,
                              const MultiWalkOptions& opts) {
  MultiWalkResult result;
  result.walker_stats.resize(static_cast<size_t>(num_walkers));
  const auto seeds =
      core::ChaoticSeedSequence::generate(master_seed, static_cast<size_t>(num_walkers));

  std::atomic<bool> stop_flag{false};
  std::atomic<int> winner{-1};
  std::mutex result_mu;
  util::WallTimer timer;
  double winner_time = 0.0;

  std::atomic<int> next_walker{0};
  unsigned workers = opts.num_threads != 0    ? opts.num_threads
                     : opts.executor != nullptr ? opts.executor->size()
                                                : static_cast<unsigned>(num_walkers);
  workers = std::min<unsigned>(std::max(1u, workers), static_cast<unsigned>(num_walkers));

  const auto worker_body = [&] {
    while (true) {
      const int id = next_walker.fetch_add(1, std::memory_order_relaxed);
      if (id >= num_walkers) return;
      if (stop_flag.load(std::memory_order_relaxed) ||
          (opts.external_stop != nullptr &&
           opts.external_stop->load(std::memory_order_relaxed))) {
        // A solution already exists; unstarted walkers record nothing.
        return;
      }
      core::RunStats st;
      if (opts.timeout_seconds > 0.0 || opts.external_stop != nullptr) {
        // Combined per-walker token: first-win flag OR external stop OR
        // shared deadline. Lives on this worker's stack for the duration
        // of the walk (StopToken stores a pointer to it).
        const std::function<bool()> combined = [&] {
          return stop_flag.load(std::memory_order_relaxed) ||
                 (opts.external_stop != nullptr &&
                  opts.external_stop->load(std::memory_order_relaxed)) ||
                 (opts.timeout_seconds > 0.0 && timer.seconds() >= opts.timeout_seconds);
        };
        st = fn(id, seeds[static_cast<size_t>(id)], core::StopToken(&combined));
      } else {
        st = fn(id, seeds[static_cast<size_t>(id)], core::StopToken(&stop_flag));
      }
      if (st.solved) {
        int expected = -1;
        if (winner.compare_exchange_strong(expected, id)) {
          // First finisher: freeze the clock and cancel everyone else.
          std::scoped_lock lock(result_mu);
          winner_time = timer.seconds();
          stop_flag.store(true, std::memory_order_relaxed);
        }
      }
      std::scoped_lock lock(result_mu);
      result.walker_stats[static_cast<size_t>(id)] = std::move(st);
    }
  };

  if (opts.executor != nullptr) {
    std::vector<std::future<void>> chunks;
    chunks.reserve(workers);
    for (unsigned t = 0; t < workers; ++t) chunks.push_back(opts.executor->submit(worker_body));
    // Every chunk must be joined before this frame unwinds — the chunks
    // reference stack state. If one throws, cancel the rest, drain them
    // all, then rethrow the first error.
    std::exception_ptr first_error;
    for (auto& c : chunks) {
      try {
        c.get();
      } catch (...) {
        if (first_error == nullptr) first_error = std::current_exception();
        stop_flag.store(true, std::memory_order_relaxed);
      }
    }
    if (first_error != nullptr) std::rethrow_exception(first_error);
  } else {
    std::vector<std::jthread> threads;
    threads.reserve(workers);
    for (unsigned t = 0; t < workers; ++t) threads.emplace_back(worker_body);
  }  // join

  const int w = winner.load();
  if (w >= 0) {
    result.solved = true;
    result.winner = w;
    result.wall_seconds = winner_time;
    result.winner_stats = result.walker_stats[static_cast<size_t>(w)];
  } else {
    result.wall_seconds = timer.seconds();
  }
  return result;
}

/// Historical signature: `num_threads` caps the number of concurrent OS
/// threads (0 = one thread per walker), allowing oversubscribed runs where
/// #walkers exceeds cores.
template <typename WalkerFn>
MultiWalkResult run_multiwalk(int num_walkers, uint64_t master_seed, WalkerFn&& fn,
                              unsigned num_threads = 0) {
  MultiWalkOptions opts;
  opts.num_threads = num_threads;
  return run_multiwalk(num_walkers, master_seed, std::forward<WalkerFn>(fn), opts);
}

/// run_multiwalk with a wall-clock budget: every walker's stop token fires
/// either when a winner exists (the paper's first-win cancellation) or when
/// `timeout_seconds` elapse — whichever comes first. The paper's own
/// experiments live under exactly this kind of budget (scheduler walltime
/// caps, Sec. V-B); downstream users get it as a first-class knob.
template <typename WalkerFn>
MultiWalkResult run_multiwalk_timed(int num_walkers, uint64_t master_seed,
                                    double timeout_seconds, WalkerFn&& fn,
                                    unsigned num_threads = 0) {
  MultiWalkOptions opts;
  opts.num_threads = num_threads;
  opts.timeout_seconds = timeout_seconds;
  return run_multiwalk(num_walkers, master_seed, std::forward<WalkerFn>(fn), opts);
}

/// Aggregate statistics computed *inside* the communicator by the
/// collective-enabled runner (what a real MPI deployment would compute with
/// MPI_Reduce instead of shipping every rank's stats to the driver).
struct CollectiveStats {
  int64_t total_iterations = 0;   // sum over ranks
  int64_t max_iterations = 0;     // slowest rank
  int64_t min_iterations = 0;     // fastest rank
  int64_t solved_ranks = 0;       // ranks that independently reached cost 0
  std::vector<int64_t> per_rank_iterations;  // gathered at the driver
};

/// The paper's MPI control flow on the in-process communicator: each rank
/// runs the walker with a stop predicate that probes its mailbox; the
/// winner broadcasts SOLUTION_FOUND to all other ranks.
template <typename WalkerFn>
MultiWalkResult run_multiwalk_mpi_style(int num_walkers, uint64_t master_seed, WalkerFn&& fn) {
  MultiWalkResult result;
  result.walker_stats.resize(static_cast<size_t>(num_walkers));
  const auto seeds =
      core::ChaoticSeedSequence::generate(master_seed, static_cast<size_t>(num_walkers));

  Comm comm(num_walkers);
  std::atomic<int> winner{-1};
  std::mutex result_mu;
  util::WallTimer timer;
  double winner_time = 0.0;

  comm.run([&](RankCtx& ctx) {
    const int id = ctx.rank();
    // Non-blocking mailbox probe, evaluated by the engine every
    // probe_interval iterations — the paper's "every c iterations" test.
    const std::function<bool()> probe = [&ctx] { return ctx.termination_pending(); };
    core::RunStats st = fn(id, seeds[static_cast<size_t>(id)], core::StopToken(&probe));
    if (st.solved) {
      int expected = -1;
      if (winner.compare_exchange_strong(expected, id)) {
        {
          std::scoped_lock lock(result_mu);
          winner_time = timer.seconds();
        }
        ctx.broadcast_others(Message{kTagSolutionFound, id, {}});
      }
    }
    std::scoped_lock lock(result_mu);
    result.walker_stats[static_cast<size_t>(id)] = std::move(st);
  });

  const int w = winner.load();
  if (w >= 0) {
    result.solved = true;
    result.winner = w;
    result.wall_seconds = winner_time;
    result.winner_stats = result.walker_stats[static_cast<size_t>(w)];
  } else {
    result.wall_seconds = timer.seconds();
  }
  return result;
}

/// Full MPI-style deployment exercising the collective layer end to end:
/// the walk itself is identical to run_multiwalk_mpi_style (first winner
/// broadcasts SOLUTION_FOUND), then every rank joins a barrier and the
/// run statistics are combined *inside* the communicator — an allreduce for
/// the totals and a gather at rank 0 for the per-rank breakdown, exactly
/// what a production OpenMPI build would do before MPI_Finalize.
template <typename WalkerFn>
std::pair<MultiWalkResult, CollectiveStats> run_multiwalk_collective(int num_walkers,
                                                                     uint64_t master_seed,
                                                                     WalkerFn&& fn) {
  MultiWalkResult result;
  result.walker_stats.resize(static_cast<size_t>(num_walkers));
  const auto seeds =
      core::ChaoticSeedSequence::generate(master_seed, static_cast<size_t>(num_walkers));

  CollectiveStats agg;
  Comm comm(num_walkers);
  std::atomic<int> winner{-1};
  std::mutex result_mu;
  util::WallTimer timer;
  double winner_time = 0.0;

  comm.run([&](RankCtx& ctx) {
    const int id = ctx.rank();
    const std::function<bool()> probe = [&ctx] { return ctx.termination_pending(); };
    core::RunStats st = fn(id, seeds[static_cast<size_t>(id)], core::StopToken(&probe));
    if (st.solved) {
      int expected = -1;
      if (winner.compare_exchange_strong(expected, id)) {
        {
          std::scoped_lock lock(result_mu);
          winner_time = timer.seconds();
        }
        ctx.broadcast_others(Message{kTagSolutionFound, id, {}});
      }
    }

    // Post-walk epilogue on the communicator. The barrier guarantees no
    // rank is still inside its walk (so every SOLUTION_FOUND has been
    // posted) before statistics are combined.
    ctx.barrier();
    const auto iters = static_cast<int64_t>(st.iterations);
    const auto solved = static_cast<int64_t>(st.solved ? 1 : 0);
    const auto sums = ctx.allreduce({iters, solved}, ReduceOp::kSum);
    const auto maxs = ctx.allreduce({iters}, ReduceOp::kMax);
    const auto mins = ctx.allreduce({iters}, ReduceOp::kMin);
    const auto per_rank = ctx.gather(0, {iters});

    std::scoped_lock lock(result_mu);
    result.walker_stats[static_cast<size_t>(id)] = std::move(st);
    if (id == 0) {
      agg.total_iterations = sums[0];
      agg.solved_ranks = sums[1];
      agg.max_iterations = maxs[0];
      agg.min_iterations = mins[0];
      agg.per_rank_iterations.reserve(per_rank.size());
      for (const auto& v : per_rank) agg.per_rank_iterations.push_back(v.at(0));
    }
  });

  const int w = winner.load();
  if (w >= 0) {
    result.solved = true;
    result.winner = w;
    result.wall_seconds = winner_time;
    result.winner_stats = result.walker_stats[static_cast<size_t>(w)];
  } else {
    result.wall_seconds = timer.seconds();
  }
  return {result, agg};
}

}  // namespace cas::par
