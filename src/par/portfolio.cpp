#include "par/portfolio.hpp"

namespace cas::par {

const char* engine_kind_name(EngineKind kind) {
  switch (kind) {
    case EngineKind::kAdaptiveSearch: return "adaptive-search";
    case EngineKind::kTabuSearch: return "tabu-search";
    case EngineKind::kDialecticSearch: return "dialectic-search";
    case EngineKind::kSimulatedAnnealing: return "simulated-annealing";
  }
  return "?";
}

std::vector<EngineKind> round_robin(const std::vector<EngineKind>& kinds, int num_walkers) {
  std::vector<EngineKind> out;
  out.reserve(static_cast<size_t>(num_walkers));
  for (int w = 0; w < num_walkers; ++w)
    out.push_back(kinds[static_cast<size_t>(w) % kinds.size()]);
  return out;
}

}  // namespace cas::par
