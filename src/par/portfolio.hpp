// Portfolio multi-walk: heterogeneous walkers racing on the same instance.
//
// The paper's parallel scheme runs identical Adaptive Search engines that
// differ only by seed. The classical next step in parallel metaheuristics
// (and the natural control experiment for the paper's design) is the
// *algorithm portfolio*: give each walker a different engine — AS, Tabu
// Search, Dialectic Search, simulated annealing — and let the first
// finisher win. A portfolio hedges: on instances where one method stalls,
// another may be fast, at the price of dedicating cores to engines that
// are (on the CAP) uniformly slower than AS. The portfolio ablation bench
// quantifies that trade: homogeneous AS beats the mixed portfolio on CAP
// precisely because AS dominates every other engine here — evidence FOR
// the paper's homogeneous choice, measured rather than assumed.
//
// Implementation: run_multiwalk() with a walker function that dispatches
// on a per-walker engine assignment; everything else (first-win, stop
// token, chaotic seeds) is the paper's machinery, unchanged.
#pragma once

#include <string>
#include <vector>

#include "core/adaptive_search.hpp"
#include "core/config.hpp"
#include "core/dialectic_search.hpp"
#include "core/simulated_annealing.hpp"
#include "core/tabu_search.hpp"
#include "par/multiwalk.hpp"

namespace cas::par {

enum class EngineKind { kAdaptiveSearch, kTabuSearch, kDialecticSearch, kSimulatedAnnealing };

const char* engine_kind_name(EngineKind kind);

/// Per-engine parameters for portfolio members. Seeds are assigned by the
/// runner from the chaotic sequence (each member still gets its own seed).
struct PortfolioConfig {
  core::AsConfig as;
  core::TsConfig ts;
  core::DsConfig ds;
  core::SaConfig sa;
  // Probe interval override applied to every member so the first-win
  // cancellation stays responsive regardless of engine defaults.
  uint64_t probe_interval = 64;
};

/// The assignment of engines to walkers, e.g. {AS, AS, TS, SA} for four
/// cores. round_robin(kinds, n) builds one of any length.
std::vector<EngineKind> round_robin(const std::vector<EngineKind>& kinds, int num_walkers);

/// Race the portfolio on one CAP-style problem type. P must be
/// constructible from int (instance size) like CostasProblem.
template <typename P>
MultiWalkResult run_portfolio(int n, const std::vector<EngineKind>& assignment,
                              const PortfolioConfig& cfg, uint64_t master_seed) {
  return run_multiwalk(
      static_cast<int>(assignment.size()), master_seed,
      [&](int id, uint64_t seed, core::StopToken stop) -> core::RunStats {
        P problem(n);
        switch (assignment[static_cast<size_t>(id)]) {
          case EngineKind::kAdaptiveSearch: {
            auto c = cfg.as;
            c.seed = seed;
            c.probe_interval = cfg.probe_interval;
            core::AdaptiveSearch<P> engine(problem, c);
            return engine.solve(stop);
          }
          case EngineKind::kTabuSearch: {
            auto c = cfg.ts;
            c.seed = seed;
            c.probe_interval = cfg.probe_interval;
            core::TabuSearch<P> engine(problem, c);
            return engine.solve(stop);
          }
          case EngineKind::kDialecticSearch: {
            auto c = cfg.ds;
            c.seed = seed;
            c.probe_interval = std::max<uint64_t>(1, cfg.probe_interval / 8);
            core::DialecticSearch<P> engine(problem, c);
            return engine.solve(stop);
          }
          case EngineKind::kSimulatedAnnealing: {
            auto c = cfg.sa;
            c.seed = seed;
            c.probe_interval = cfg.probe_interval;
            core::SimulatedAnnealing<P> engine(problem, c);
            return engine.solve(stop);
          }
        }
        return {};
      });
}

}  // namespace cas::par
