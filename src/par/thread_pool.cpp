#include "par/thread_pool.hpp"

namespace cas::par {

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) num_threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
  // jthread destructors join.
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return closed_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (closed_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

}  // namespace cas::par
