// In-process message-passing layer mirroring the MPI subset the paper's
// parallel Adaptive Search uses (Sec. V-A): independent ranks, non-blocking
// probe ("some non-blocking tests are involved every c iterations to check
// if there is a message indicating that some other process has found a
// solution"), and a terminate-everyone broadcast by the winner.
//
// This is the substitution for OpenMPI documented in DESIGN.md §4: ranks
// are threads, each with a mutex-guarded mailbox. The control flow of the
// paper's implementation is preserved exactly; only the transport differs.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

namespace cas::par {

struct Message {
  int tag = 0;
  int source = -1;
  std::vector<int64_t> payload;
};

/// Well-known tags, mirroring the paper's protocol.
inline constexpr int kTagSolutionFound = 1;
inline constexpr int kTagTerminate = 2;

/// Tags reserved by the collective operations (selective receive keeps them
/// from interfering with point-to-point traffic such as kTagSolutionFound).
inline constexpr int kTagBarrier = 100;
inline constexpr int kTagBroadcast = 101;
inline constexpr int kTagReduce = 102;
inline constexpr int kTagGather = 103;

/// Element-wise combiner for reduce/allreduce.
enum class ReduceOp { kSum, kMin, kMax };

class Comm;

/// Per-rank handle passed to the rank function. Thread-safe against
/// concurrent senders; owned by exactly one rank thread.
class RankCtx {
 public:
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const;

  /// Non-blocking send (enqueue into dest's mailbox). Valid dest required.
  void send(int dest, Message msg) const;

  /// Send to every other rank.
  void broadcast_others(const Message& msg) const;

  /// Non-blocking probe-and-receive: first pending message, if any.
  [[nodiscard]] std::optional<Message> try_recv() const;

  /// Blocking receive.
  [[nodiscard]] Message recv() const;

  /// Blocking receive of the first message with the given tag, leaving all
  /// other messages queued (MPI-style tag matching).
  [[nodiscard]] Message recv_tagged(int tag) const;

  /// True once any rank has posted a terminate/solution message to us.
  /// Convenience used by multi-walk loops.
  [[nodiscard]] bool termination_pending() const;

  // --- collectives -------------------------------------------------------
  // Every rank of the communicator must call the same collectives in the
  // same order (the MPI contract). A per-rank sequence number keeps
  // back-to-back collectives of the same kind from cross-talking; selective
  // receive keeps them from consuming point-to-point messages.

  /// Block until every rank has entered the barrier.
  void barrier();

  /// Root's `values` is distributed to every rank; others' input is
  /// ignored. Returns the broadcast payload on all ranks.
  std::vector<int64_t> broadcast(int root, std::vector<int64_t> values);

  /// Element-wise reduction of every rank's `values` (all must have equal
  /// length). The combined vector is returned at the root; other ranks get
  /// an empty vector.
  std::vector<int64_t> reduce(int root, const std::vector<int64_t>& values, ReduceOp op);

  /// reduce() followed by broadcast(): every rank receives the combination.
  std::vector<int64_t> allreduce(const std::vector<int64_t>& values, ReduceOp op);

  /// Root receives every rank's vector, indexed by source rank; other ranks
  /// get an empty result.
  std::vector<std::vector<int64_t>> gather(int root, const std::vector<int64_t>& values);

 private:
  friend class Comm;
  RankCtx(Comm* comm, int rank) : comm_(comm), rank_(rank) {}

  /// Blocking selective receive: first message with this tag whose payload
  /// starts with the sequence number `seq`.
  [[nodiscard]] Message recv_collective(int tag, int64_t seq) const;

  Comm* comm_;
  int rank_;
  uint64_t collective_seq_ = 0;  // advances once per collective call
};

/// A "communicator world" of N ranks, each running `fn` on its own thread.
class Comm {
 public:
  explicit Comm(int num_ranks);

  /// Run fn(ctx) on every rank; returns when all ranks have finished.
  void run(const std::function<void(RankCtx&)>& fn);

  [[nodiscard]] int size() const { return num_ranks_; }

 private:
  friend class RankCtx;

  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::vector<Message> queue;
    bool has_termination = false;
  };

  void post(int dest, Message msg);

  int num_ranks_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
};

}  // namespace cas::par
