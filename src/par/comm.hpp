// In-process message-passing layer mirroring the MPI subset the paper's
// parallel Adaptive Search uses (Sec. V-A): independent ranks, non-blocking
// probe ("some non-blocking tests are involved every c iterations to check
// if there is a message indicating that some other process has found a
// solution"), and a terminate-everyone broadcast by the winner.
//
// This is the substitution for OpenMPI documented in DESIGN.md §4: ranks
// are threads, each with a mutex-guarded mailbox (par/mailbox.hpp). The
// control flow of the paper's implementation is preserved exactly; only the
// transport differs. The collective algorithms live in par/collectives.hpp,
// shared verbatim with the socket-backed distributed communicator
// (dist::RankComm) — one implementation, two transports.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "par/collectives.hpp"
#include "par/mailbox.hpp"

namespace cas::par {

class Comm;

/// Per-rank handle passed to the rank function. Thread-safe against
/// concurrent senders; owned by exactly one rank thread.
class RankCtx {
 public:
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const;

  /// Non-blocking send (enqueue into dest's mailbox). Valid dest required.
  void send(int dest, Message msg) const;

  /// Send to every other rank.
  void broadcast_others(const Message& msg) const;

  /// Non-blocking probe-and-receive: first pending message, if any.
  [[nodiscard]] std::optional<Message> try_recv() const;

  /// Blocking receive.
  [[nodiscard]] Message recv() const;

  /// Blocking receive of the first message with the given tag, leaving all
  /// other messages queued (MPI-style tag matching).
  [[nodiscard]] Message recv_tagged(int tag) const;

  /// True once any rank has posted a terminate/solution message to us.
  /// Convenience used by multi-walk loops.
  [[nodiscard]] bool termination_pending() const;

  /// Blocking selective receive of a collective frame — the
  /// CollectiveEndpoint surface consumed by par/collectives.hpp. Ranks are
  /// threads of this process, so there is no deadline: a peer cannot die
  /// without taking the whole process with it.
  [[nodiscard]] Message recv_collective(int tag, int64_t seq) const;

  /// Advance the per-rank collective sequence number (one per collective
  /// call; allreduce burns two).
  [[nodiscard]] int64_t next_seq() { return static_cast<int64_t>(collective_seq_++); }

  // --- collectives -------------------------------------------------------
  // Every rank of the communicator must call the same collectives in the
  // same order (the MPI contract); the shared algorithms in
  // par/collectives.hpp implement them over this endpoint.

  /// Block until every rank has entered the barrier.
  void barrier();

  /// Root's `values` is distributed to every rank; others' input is
  /// ignored. Returns the broadcast payload on all ranks.
  std::vector<int64_t> broadcast(int root, std::vector<int64_t> values);

  /// Element-wise reduction of every rank's `values` (all must have equal
  /// length). The combined vector is returned at the root; other ranks get
  /// an empty vector.
  std::vector<int64_t> reduce(int root, const std::vector<int64_t>& values, ReduceOp op);

  /// reduce() followed by broadcast(): every rank receives the combination.
  std::vector<int64_t> allreduce(const std::vector<int64_t>& values, ReduceOp op);

  /// Root receives every rank's vector, indexed by source rank; other ranks
  /// get an empty result.
  std::vector<std::vector<int64_t>> gather(int root, const std::vector<int64_t>& values);

 private:
  friend class Comm;
  RankCtx(Comm* comm, int rank) : comm_(comm), rank_(rank) {}

  Comm* comm_;
  int rank_;
  uint64_t collective_seq_ = 0;  // advances once per collective call
};

static_assert(CollectiveEndpoint<RankCtx>);

/// A "communicator world" of N ranks, each running `fn` on its own thread.
class Comm {
 public:
  explicit Comm(int num_ranks);

  /// Run fn(ctx) on every rank; returns when all ranks have finished.
  void run(const std::function<void(RankCtx&)>& fn);

  [[nodiscard]] int size() const { return num_ranks_; }

 private:
  friend class RankCtx;

  void post(int dest, Message msg);

  int num_ranks_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
};

}  // namespace cas::par
