// Time-to-target plots (Aiex, Resende & Ribeiro), reproduced for the
// paper's Figure 4: the empirical probability of having found a solution
// within time t, overlaid with the best shifted-exponential approximation.
#pragma once

#include <string>
#include <vector>

#include "analysis/exponential_fit.hpp"

namespace cas::analysis {

struct TttSeries {
  std::string label;
  std::vector<double> times;  // sorted run times
  std::vector<double> probs;  // empirical probabilities (i - 0.5)/N
  ShiftedExponential fit;     // shifted-exponential approximation
  double ks = 0;              // KS distance between ECDF and fit
  double ks_p = 0;            // approximate p-value
};

/// Build a TTT series from raw run times (unsorted OK).
TttSeries make_ttt(std::string label, std::vector<double> run_times);

/// Probability of success within budget t under the empirical distribution.
double success_probability_within(const TttSeries& s, double t);

/// Render one or more TTT series as an ASCII plot (probability vs time).
std::string render_ttt_plot(const std::vector<TttSeries>& series, int width = 72,
                            int height = 20);

}  // namespace cas::analysis
