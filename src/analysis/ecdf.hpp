// Empirical cumulative distribution function over run-time (or run-length)
// samples. The backbone of the time-to-target analysis (paper Fig. 4) and
// of the min-of-k order statistics used by the cluster simulator.
#pragma once

#include <cstddef>
#include <vector>

namespace cas::analysis {

class Ecdf {
 public:
  /// Takes a copy of the samples and sorts it. Throws on empty input.
  explicit Ecdf(std::vector<double> samples);

  /// F(t) = fraction of samples <= t.
  [[nodiscard]] double operator()(double t) const;

  /// Inverse CDF with linear interpolation (type-7 quantile).
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] const std::vector<double>& sorted() const { return sorted_; }
  [[nodiscard]] size_t size() const { return sorted_.size(); }
  [[nodiscard]] double min() const { return sorted_.front(); }
  [[nodiscard]] double max() const { return sorted_.back(); }
  [[nodiscard]] double mean() const { return mean_; }

 private:
  std::vector<double> sorted_;
  double mean_ = 0;
};

}  // namespace cas::analysis
