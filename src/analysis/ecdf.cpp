#include "analysis/ecdf.hpp"

#include <algorithm>
#include <stdexcept>

#include "analysis/summary.hpp"

namespace cas::analysis {

Ecdf::Ecdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  if (sorted_.empty()) throw std::invalid_argument("Ecdf: empty sample");
  std::sort(sorted_.begin(), sorted_.end());
  double sum = 0;
  for (double x : sorted_) sum += x;
  mean_ = sum / static_cast<double>(sorted_.size());
}

double Ecdf::operator()(double t) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), t);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double Ecdf::quantile(double q) const { return quantile_sorted(sorted_, q); }

}  // namespace cas::analysis
