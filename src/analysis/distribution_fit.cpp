#include "analysis/distribution_fit.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "analysis/ecdf.hpp"

namespace cas::analysis {

namespace {

// Positivity clamp for log/power transforms: run times of 0 mean "below
// clock resolution", not "impossible".
constexpr double kTinyPositive = 1e-12;

std::vector<double> clamped_positive(const std::vector<double>& samples) {
  std::vector<double> out = samples;
  for (double& x : out) x = std::max(x, kTinyPositive);
  return out;
}

double standard_normal_cdf(double z) { return 0.5 * std::erfc(-z / std::numbers::sqrt2); }

/// Inverse standard normal CDF by bisection on the monotone CDF (the
/// callers tolerate ~1e-10; robustness beats speed here).
double standard_normal_quantile(double q) {
  double lo = -40, hi = 40;
  for (int it = 0; it < 200; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (standard_normal_cdf(mid) < q)
      lo = mid;
    else
      hi = mid;
  }
  return 0.5 * (lo + hi);
}

/// Generic KS distance: sup over sample points of |F_n - F|.
template <typename Dist>
double ks_against(const std::vector<double>& samples, const Dist& dist) {
  if (samples.empty()) throw std::invalid_argument("ks_distance: no samples");
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());
  double ks = 0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    const double f = dist.cdf(sorted[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    ks = std::max({ks, std::abs(f - lo), std::abs(f - hi)});
  }
  return ks;
}

}  // namespace

// ---------------------------------------------------------------------------
// Weibull
// ---------------------------------------------------------------------------

double Weibull::cdf(double x) const {
  if (x <= 0) return 0;
  return 1.0 - std::exp(-std::pow(x / scale, shape));
}

double Weibull::pdf(double x) const {
  if (x <= 0) return 0;
  const double z = x / scale;
  return (shape / scale) * std::pow(z, shape - 1) * std::exp(-std::pow(z, shape));
}

double Weibull::quantile(double q) const {
  if (q < 0 || q >= 1) throw std::invalid_argument("Weibull::quantile: q must be in [0,1)");
  return scale * std::pow(-std::log1p(-q), 1.0 / shape);
}

double Weibull::mean() const { return scale * std::tgamma(1.0 + 1.0 / shape); }

Weibull fit_weibull(const std::vector<double>& samples) {
  if (samples.size() < 2) throw std::invalid_argument("fit_weibull: need >= 2 samples");
  const auto x = clamped_positive(samples);
  const double n = static_cast<double>(x.size());
  double mean_log = 0;
  for (double v : x) mean_log += std::log(v);
  mean_log /= n;

  // Profile-likelihood equation in the shape k:
  //   g(k) = sum(x^k ln x)/sum(x^k) - 1/k - mean(ln x) = 0,
  // monotone increasing in k; bracket and bisect.
  const auto g = [&](double k) {
    double swx = 0, sw = 0;
    for (double v : x) {
      const double w = std::pow(v, k);
      sw += w;
      swx += w * std::log(v);
    }
    return swx / sw - 1.0 / k - mean_log;
  };

  double lo = 1e-3, hi = 1.0;
  while (g(hi) < 0 && hi < 1e3) hi *= 2;
  for (int it = 0; it < 200; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (g(mid) < 0)
      lo = mid;
    else
      hi = mid;
  }
  const double shape = 0.5 * (lo + hi);

  double sw = 0;
  for (double v : x) sw += std::pow(v, shape);
  const double scale = std::pow(sw / n, 1.0 / shape);
  return {shape, scale};
}

// ---------------------------------------------------------------------------
// Lognormal
// ---------------------------------------------------------------------------

double Lognormal::cdf(double x) const {
  if (x <= 0) return 0;
  return standard_normal_cdf((std::log(x) - mu) / sigma);
}

double Lognormal::pdf(double x) const {
  if (x <= 0) return 0;
  const double z = (std::log(x) - mu) / sigma;
  return std::exp(-0.5 * z * z) / (x * sigma * std::sqrt(2 * std::numbers::pi));
}

double Lognormal::quantile(double q) const {
  if (q <= 0 || q >= 1) throw std::invalid_argument("Lognormal::quantile: q must be in (0,1)");
  return std::exp(mu + sigma * standard_normal_quantile(q));
}

double Lognormal::mean() const { return std::exp(mu + 0.5 * sigma * sigma); }

Lognormal fit_lognormal(const std::vector<double>& samples) {
  if (samples.size() < 2) throw std::invalid_argument("fit_lognormal: need >= 2 samples");
  const auto x = clamped_positive(samples);
  const double n = static_cast<double>(x.size());
  double mu = 0;
  for (double v : x) mu += std::log(v);
  mu /= n;
  double var = 0;
  for (double v : x) {
    const double d = std::log(v) - mu;
    var += d * d;
  }
  var /= n;  // MLE (biased) variance
  return {mu, std::sqrt(std::max(var, 1e-18))};
}

// ---------------------------------------------------------------------------
// KS + likelihoods + model selection
// ---------------------------------------------------------------------------

double ks_distance(const std::vector<double>& samples, const Weibull& dist) {
  return ks_against(samples, dist);
}

double ks_distance(const std::vector<double>& samples, const Lognormal& dist) {
  return ks_against(samples, dist);
}

double log_likelihood(const std::vector<double>& samples, const ShiftedExponential& dist) {
  double ll = 0;
  for (double v : samples) {
    const double z = v - dist.mu;
    // Support is [mu, inf); below-support samples get a hard penalty
    // instead of -inf so comparisons stay finite.
    if (z < 0) {
      ll += -1e6;
      continue;
    }
    ll += -std::log(dist.lambda) - z / dist.lambda;
  }
  return ll;
}

double log_likelihood(const std::vector<double>& samples, const Weibull& dist) {
  double ll = 0;
  for (double v : clamped_positive(samples)) ll += std::log(std::max(dist.pdf(v), 1e-300));
  return ll;
}

double log_likelihood(const std::vector<double>& samples, const Lognormal& dist) {
  double ll = 0;
  for (double v : clamped_positive(samples)) ll += std::log(std::max(dist.pdf(v), 1e-300));
  return ll;
}

std::vector<ModelFit> compare_models(const std::vector<double>& samples) {
  if (samples.size() < 3) throw std::invalid_argument("compare_models: need >= 3 samples");
  const double n = static_cast<double>(samples.size());
  constexpr double kParams = 2;  // every candidate has 2 free parameters

  const auto add = [&](std::string name, double ll, double ks, double mean) {
    ModelFit f;
    f.name = std::move(name);
    f.log_lik = ll;
    f.aic = 2 * kParams - 2 * ll;
    f.bic = kParams * std::log(n) - 2 * ll;
    f.ks = ks;
    f.mean = mean;
    return f;
  };

  const auto se = fit_shifted_exponential(samples);
  const auto wb = fit_weibull(samples);
  const auto ln = fit_lognormal(samples);

  std::vector<ModelFit> fits;
  fits.push_back(add("shifted-exponential", log_likelihood(samples, se),
                     ks_distance(samples, se), se.mean()));
  fits.push_back(
      add("weibull", log_likelihood(samples, wb), ks_distance(samples, wb), wb.mean()));
  fits.push_back(
      add("lognormal", log_likelihood(samples, ln), ks_distance(samples, ln), ln.mean()));
  std::stable_sort(fits.begin(), fits.end(),
                   [](const ModelFit& a, const ModelFit& b) { return a.aic < b.aic; });
  return fits;
}

std::string best_model_by_aic(const std::vector<double>& samples) {
  return compare_models(samples).front().name;
}

}  // namespace cas::analysis
