// Predicted multi-walk speedup from a fitted run-time distribution.
//
// Verhoeven & Aarts (the paper's [39]): independent multi-walk with
// first-win termination achieves linear speedup exactly when run times are
// exponentially distributed. For the shifted exponential the prediction is
// closed form —
//
//     E[T_k] = mu + lambda / k,
//     speedup(k) = (mu + lambda) / (mu + lambda / k)
//
// — so the speedup is linear while lambda/k >> mu and saturates at
// (mu + lambda)/mu once the shift dominates. This module turns a fitted
// distribution (or a raw sample bank) into the predicted curve, and
// quantifies where the paper's "nearly linear up to 8192 cores" regime must
// end for a given instance: predicted efficiency falls to 50% at
// k = 2 + lambda/mu cores (infinite for the pure exponential, mu = 0).
#pragma once

#include <vector>

#include "analysis/ecdf.hpp"
#include "analysis/exponential_fit.hpp"

namespace cas::analysis {

struct PredictedSpeedup {
  int cores = 1;
  double expected_time = 0;  // E[T_k]
  double speedup = 1;        // E[T_1] / E[T_k]
  double efficiency = 1;     // speedup / cores
};

/// Closed-form prediction from a fitted shifted exponential.
PredictedSpeedup predict_speedup(const ShiftedExponential& fit, int cores);

/// Prediction curve over a list of core counts.
std::vector<PredictedSpeedup> predict_speedup_curve(const ShiftedExponential& fit,
                                                const std::vector<int>& cores);

/// Distribution-free prediction via min-of-k order statistics on the
/// empirical distribution (no parametric assumption). Slower but honest
/// about the bank's tail.
PredictedSpeedup predict_speedup_empirical(const Ecdf& ecdf, int cores);

std::vector<PredictedSpeedup> predict_speedup_curve_empirical(const Ecdf& ecdf,
                                                          const std::vector<int>& cores);

/// The core count at which predicted parallel efficiency drops to 50%:
/// k* = 2 + lambda / mu (infinite when mu <= 0 — the pure-exponential
/// linear regime the paper's instances live in).
double efficiency_knee(const ShiftedExponential& fit);

/// Largest core count whose predicted efficiency stays >= the threshold:
/// from speedup(k)/k >= eff, k <= 1 + (lambda/mu) * (1 - eff)/eff
/// (saturating; infinity when mu <= 0).
double max_cores_at_efficiency(const ShiftedExponential& fit, double efficiency);

/// Expected cumulative machine time of first-win multi-walk: every one of
/// the k walkers runs until the winner finishes, so the bill is
/// k * E[T_k] = k*mu + lambda. This is the quantity a serving layer
/// admits and budgets on (walker-seconds, not wall-seconds): parallelism
/// buys latency but the machine-time floor is lambda however wide you go.
double expected_walker_seconds(const ShiftedExponential& fit, int cores);

}  // namespace cas::analysis
