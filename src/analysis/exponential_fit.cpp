#include "analysis/exponential_fit.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cas::analysis {

double ShiftedExponential::cdf(double x) const {
  if (x <= mu) return 0;
  return 1.0 - std::exp(-(x - mu) / lambda);
}

double ShiftedExponential::quantile(double q) const {
  if (q < 0 || q >= 1) throw std::invalid_argument("ShiftedExponential::quantile: q in [0,1)");
  return mu - lambda * std::log1p(-q);
}

ShiftedExponential ShiftedExponential::min_of(int k) const {
  if (k < 1) throw std::invalid_argument("ShiftedExponential::min_of: k >= 1");
  return ShiftedExponential{mu, lambda / static_cast<double>(k)};
}

ShiftedExponential fit_shifted_exponential(const std::vector<double>& samples) {
  if (samples.size() < 2)
    throw std::invalid_argument("fit_shifted_exponential: need at least 2 samples");
  double mn = samples.front(), sum = 0;
  for (double x : samples) {
    mn = std::min(mn, x);
    sum += x;
  }
  const double mean = sum / static_cast<double>(samples.size());
  ShiftedExponential d;
  d.mu = mn;
  // Guard: degenerate (all-equal) samples get a tiny positive scale.
  d.lambda = std::max(mean - mn, 1e-12);
  return d;
}

ShiftedExponential fit_shifted_exponential_bias_corrected(const std::vector<double>& samples) {
  ShiftedExponential d = fit_shifted_exponential(samples);
  const double correction = d.lambda / static_cast<double>(samples.size());
  const double mu = std::max(0.0, d.mu - correction);
  // Keep the mean invariant: what leaves the shift goes into the scale.
  d.lambda += d.mu - mu;
  d.mu = mu;
  return d;
}

double ks_distance(const std::vector<double>& samples, const ShiftedExponential& dist) {
  if (samples.empty()) throw std::invalid_argument("ks_distance: empty sample");
  std::vector<double> xs = samples;
  std::sort(xs.begin(), xs.end());
  const double n = static_cast<double>(xs.size());
  double ks = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    const double f = dist.cdf(xs[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    ks = std::max(ks, std::max(std::abs(f - lo), std::abs(hi - f)));
  }
  return ks;
}

double ks_p_value(double ks_stat, size_t n) {
  // Kolmogorov asymptotic distribution: p = 2 * sum_{j>=1} (-1)^{j-1}
  // exp(-2 j^2 t^2), with the Stephens finite-n correction to t.
  const double sn = std::sqrt(static_cast<double>(n));
  const double t = ks_stat * (sn + 0.12 + 0.11 / sn);
  double p = 0;
  for (int j = 1; j <= 100; ++j) {
    const double term = std::exp(-2.0 * j * j * t * t);
    p += (j % 2 == 1 ? 2.0 : -2.0) * term;
    if (term < 1e-12) break;
  }
  return std::clamp(p, 0.0, 1.0);
}

}  // namespace cas::analysis
