// Alternative run-time distribution models and model selection.
//
// The paper (Sec. V-B, Fig. 4) asserts that CAP run times are well
// approximated by a *shifted exponential* — the condition under which
// independent multi-walk parallelism is provably linear (Verhoeven &
// Aarts). This module makes that claim falsifiable instead of assumed: it
// fits the two classic heavy-ish-tailed competitors (Weibull, lognormal)
// by maximum likelihood and ranks all three models by AIC/BIC and KS
// distance. The runtime-distribution ablation bench runs the comparison on
// real CAP run-length banks.
#pragma once

#include <string>
#include <vector>

#include "analysis/exponential_fit.hpp"

namespace cas::analysis {

/// Weibull(shape k, scale lambda): F(x) = 1 - exp(-(x/lambda)^k), x >= 0.
/// k = 1 degenerates to the exponential distribution.
struct Weibull {
  double shape = 1;
  double scale = 1;

  [[nodiscard]] double cdf(double x) const;
  [[nodiscard]] double pdf(double x) const;
  [[nodiscard]] double quantile(double q) const;  // q in [0,1)
  [[nodiscard]] double mean() const;              // scale * Gamma(1 + 1/shape)
};

/// Lognormal(mu, sigma): ln X ~ N(mu, sigma^2), x > 0.
struct Lognormal {
  double mu = 0;
  double sigma = 1;

  [[nodiscard]] double cdf(double x) const;
  [[nodiscard]] double pdf(double x) const;
  [[nodiscard]] double quantile(double q) const;  // q in (0,1)
  [[nodiscard]] double mean() const;              // exp(mu + sigma^2/2)
};

/// Weibull maximum-likelihood fit (profile likelihood in the shape,
/// solved by bisection; scale in closed form given the shape). Samples
/// must be positive; zeros are clamped to a tiny epsilon with the same
/// semantics the run-time data has ("faster than the clock tick").
/// Requires at least 2 samples.
Weibull fit_weibull(const std::vector<double>& samples);

/// Lognormal maximum-likelihood fit (closed form on the logs). Same
/// positivity handling as fit_weibull. Requires at least 2 samples.
Lognormal fit_lognormal(const std::vector<double>& samples);

/// KS distances against the sample ECDF (companions to the
/// shifted-exponential overload in exponential_fit.hpp).
double ks_distance(const std::vector<double>& samples, const Weibull& dist);
double ks_distance(const std::vector<double>& samples, const Lognormal& dist);

/// Log-likelihoods of a fitted model on the data.
double log_likelihood(const std::vector<double>& samples, const ShiftedExponential& dist);
double log_likelihood(const std::vector<double>& samples, const Weibull& dist);
double log_likelihood(const std::vector<double>& samples, const Lognormal& dist);

/// One row of the model-selection table.
struct ModelFit {
  std::string name;      // "shifted-exponential", "weibull", "lognormal"
  double log_lik = 0;
  double aic = 0;        // 2k - 2 ln L, k = 2 parameters for all three
  double bic = 0;        // k ln n - 2 ln L
  double ks = 0;         // sup-distance to the ECDF
  double mean = 0;       // fitted mean (sanity anchor)
};

/// Fit all three models and return them sorted by ascending AIC (best
/// first). Requires at least 3 samples.
std::vector<ModelFit> compare_models(const std::vector<double>& samples);

/// Convenience: name of the AIC-best model.
std::string best_model_by_aic(const std::vector<double>& samples);

}  // namespace cas::analysis
