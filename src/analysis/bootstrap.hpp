// Percentile-bootstrap confidence intervals for the summary statistics the
// bench tables report. Used to qualify simulator outputs in EXPERIMENTS.md.
#pragma once

#include <algorithm>
#include <functional>
#include <vector>

#include "analysis/summary.hpp"
#include "core/rng.hpp"

namespace cas::analysis {

struct Interval {
  double lo = 0;
  double hi = 0;
  double point = 0;
};

/// Percentile bootstrap of `statistic` over `samples`.
inline Interval bootstrap_ci(const std::vector<double>& samples,
                             const std::function<double(const std::vector<double>&)>& statistic,
                             int replicates, double confidence, core::Rng& rng) {
  std::vector<double> stats;
  stats.reserve(static_cast<size_t>(replicates));
  std::vector<double> resample(samples.size());
  for (int r = 0; r < replicates; ++r) {
    for (auto& x : resample) x = samples[static_cast<size_t>(rng.below(samples.size()))];
    stats.push_back(statistic(resample));
  }
  std::sort(stats.begin(), stats.end());
  const double alpha = (1.0 - confidence) / 2.0;
  Interval iv;
  iv.lo = quantile_sorted(stats, alpha);
  iv.hi = quantile_sorted(stats, 1.0 - alpha);
  iv.point = statistic(samples);
  return iv;
}

inline Interval bootstrap_mean_ci(const std::vector<double>& samples, int replicates,
                                  double confidence, core::Rng& rng) {
  return bootstrap_ci(
      samples,
      [](const std::vector<double>& xs) {
        double s = 0;
        for (double x : xs) s += x;
        return s / static_cast<double>(xs.size());
      },
      replicates, confidence, rng);
}

}  // namespace cas::analysis
