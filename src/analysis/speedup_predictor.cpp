#include "analysis/speedup_predictor.hpp"

#include <limits>
#include <stdexcept>

#include "analysis/order_stats.hpp"

namespace cas::analysis {

PredictedSpeedup predict_speedup(const ShiftedExponential& fit, int cores) {
  if (cores < 1) throw std::invalid_argument("predict_speedup: cores must be >= 1");
  PredictedSpeedup p;
  p.cores = cores;
  p.expected_time = fit.mu + fit.lambda / cores;
  const double t1 = fit.mu + fit.lambda;
  p.speedup = p.expected_time > 0 ? t1 / p.expected_time : static_cast<double>(cores);
  p.efficiency = p.speedup / cores;
  return p;
}

std::vector<PredictedSpeedup> predict_speedup_curve(const ShiftedExponential& fit,
                                                const std::vector<int>& cores) {
  std::vector<PredictedSpeedup> out;
  out.reserve(cores.size());
  for (int k : cores) out.push_back(predict_speedup(fit, k));
  return out;
}

PredictedSpeedup predict_speedup_empirical(const Ecdf& ecdf, int cores) {
  if (cores < 1) throw std::invalid_argument("predict_speedup_empirical: cores must be >= 1");
  PredictedSpeedup p;
  p.cores = cores;
  p.expected_time = expected_min_of_k(ecdf, cores);
  p.speedup = p.expected_time > 0 ? ecdf.mean() / p.expected_time : static_cast<double>(cores);
  p.efficiency = p.speedup / cores;
  return p;
}

std::vector<PredictedSpeedup> predict_speedup_curve_empirical(const Ecdf& ecdf,
                                                          const std::vector<int>& cores) {
  std::vector<PredictedSpeedup> out;
  out.reserve(cores.size());
  for (int k : cores) out.push_back(predict_speedup_empirical(ecdf, k));
  return out;
}

double expected_walker_seconds(const ShiftedExponential& fit, int cores) {
  return cores * predict_speedup(fit, cores).expected_time;
}

double efficiency_knee(const ShiftedExponential& fit) {
  return max_cores_at_efficiency(fit, 0.5);  // k* = 2 + lambda/mu
}

double max_cores_at_efficiency(const ShiftedExponential& fit, double efficiency) {
  if (efficiency <= 0 || efficiency > 1)
    throw std::invalid_argument("max_cores_at_efficiency: efficiency must be in (0,1]");
  if (fit.mu <= 0) return std::numeric_limits<double>::infinity();
  // speedup(k)/k >= e  <=>  mu k^2 e + lambda k e <= (mu + lambda) k
  //                    <=>  k <= (mu + lambda - lambda e) / (mu e)
  return (fit.mu + fit.lambda * (1 - efficiency)) / (fit.mu * efficiency);
}

}  // namespace cas::analysis
