// Shifted-exponential fitting of run-time distributions.
//
// The paper (Sec. V-B, Fig. 4) approximates the run-time CDF by
// 1 - e^{-(x - mu)/lambda} and notes, citing Verhoeven & Aarts, that an
// exponential run-time distribution is exactly the condition under which
// independent multi-walk achieves linear speedup. We fit by maximum
// likelihood and quantify fit quality with the Kolmogorov-Smirnov distance.
#pragma once

#include <cstddef>
#include <vector>

namespace cas::analysis {

class Ecdf;

struct ShiftedExponential {
  double mu = 0;      // shift (location)
  double lambda = 1;  // scale (mean above the shift)

  [[nodiscard]] double cdf(double x) const;
  [[nodiscard]] double quantile(double q) const;  // q in [0,1)
  [[nodiscard]] double mean() const { return mu + lambda; }

  /// Distribution of the minimum of k independent draws — again shifted
  /// exponential, with scale lambda/k. This identity is what makes
  /// independent multi-walk speedup linear (for mu ~ 0).
  [[nodiscard]] ShiftedExponential min_of(int k) const;
};

/// Maximum-likelihood fit: mu = min(x), lambda = mean(x) - mu.
/// Requires at least 2 samples.
ShiftedExponential fit_shifted_exponential(const std::vector<double>& samples);

/// Bias-corrected fit for tail extrapolation: the sample minimum of N
/// shifted-exponential draws overshoots mu by lambda/N in expectation, so
/// mu_hat = max(0, min - lambda_hat/N). Use this when simulating min-of-k
/// for k comparable to or larger than N (the cluster simulator's fitted
/// tail); the plain MLE would otherwise floor all large-k times at the
/// bank's observed minimum.
ShiftedExponential fit_shifted_exponential_bias_corrected(const std::vector<double>& samples);

/// Two-sided Kolmogorov-Smirnov statistic between the sample ECDF and the
/// fitted distribution: sup_t |F_n(t) - F(t)|.
double ks_distance(const std::vector<double>& samples, const ShiftedExponential& dist);

/// Approximate p-value for the KS statistic at sample size n
/// (Kolmogorov asymptotic series; adequate for n >= ~20 as a fit-quality
/// indicator, not a strict test).
double ks_p_value(double ks_stat, size_t n);

}  // namespace cas::analysis
