// Descriptive statistics for run-time samples: the avg/median/min/max rows
// of the paper's Tables I and III-V.
#pragma once

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace cas::analysis {

struct Summary {
  size_t n = 0;
  double mean = 0;
  double median = 0;
  double min = 0;
  double max = 0;
  double stddev = 0;  // sample standard deviation (n-1)
  double q25 = 0;
  double q75 = 0;
};

/// Quantile with linear interpolation between order statistics (type-7,
/// the R/NumPy default). `sorted` must be ascending and non-empty.
inline double quantile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) throw std::invalid_argument("quantile_sorted: empty sample");
  if (q <= 0) return sorted.front();
  if (q >= 1) return sorted.back();
  const double h = (static_cast<double>(sorted.size()) - 1) * q;
  const size_t lo = static_cast<size_t>(h);
  const double frac = h - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1 - frac) + sorted[lo + 1] * frac;
}

inline Summary summarize(std::vector<double> xs) {
  if (xs.empty()) throw std::invalid_argument("summarize: empty sample");
  std::sort(xs.begin(), xs.end());
  Summary s;
  s.n = xs.size();
  s.min = xs.front();
  s.max = xs.back();
  s.median = quantile_sorted(xs, 0.5);
  s.q25 = quantile_sorted(xs, 0.25);
  s.q75 = quantile_sorted(xs, 0.75);
  double sum = 0;
  for (double x : xs) sum += x;
  s.mean = sum / static_cast<double>(s.n);
  if (s.n > 1) {
    double ss = 0;
    for (double x : xs) ss += (x - s.mean) * (x - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(s.n - 1));
  }
  return s;
}

}  // namespace cas::analysis
