#include "analysis/order_stats.hpp"

#include <cmath>
#include <stdexcept>

namespace cas::analysis {

double expected_min_of_k(const Ecdf& ecdf, int k) {
  if (k < 1) throw std::invalid_argument("expected_min_of_k: k >= 1");
  const auto& xs = ecdf.sorted();
  const double n = static_cast<double>(xs.size());
  // E[min] = integral of P(min > t) over t, telescoped over the sorted
  // sample: P(min > x_(i)) = ((N - i)/N)^k for draws with replacement.
  double e = xs.front();
  for (size_t i = 1; i < xs.size(); ++i) {
    const double surv = std::pow((n - static_cast<double>(i)) / n, k);
    e += (xs[i] - xs[i - 1]) * surv;
  }
  return e;
}

double quantile_min_of_k(const Ecdf& ecdf, int k, double q) {
  if (k < 1) throw std::invalid_argument("quantile_min_of_k: k >= 1");
  if (q <= 0) return ecdf.min();
  if (q >= 1) return ecdf.max();
  const double base_q = 1.0 - std::pow(1.0 - q, 1.0 / static_cast<double>(k));
  return ecdf.quantile(base_q);
}

double sample_min_of_k(const Ecdf& ecdf, int k, core::Rng& rng) {
  const auto& xs = ecdf.sorted();
  // Equivalent to min of k uniform draws: draw the minimum index directly.
  // P(min index >= i) = ((N - i)/N)^k; invert by u ~ U(0,1).
  // Simpler and exact: draw k indices, track the min — O(k); for the large
  // k used by the JUGENE simulation use the O(1) inversion below.
  if (k <= 64) {
    size_t best = static_cast<size_t>(rng.below(xs.size()));
    for (int i = 1; i < k; ++i) best = std::min(best, static_cast<size_t>(rng.below(xs.size())));
    return xs[best];
  }
  // Inversion: F_minidx(i) = 1 - ((N - i - 1)/N)^k over i = 0..N-1.
  const double n = static_cast<double>(xs.size());
  const double u = rng.uniform01();
  // Find smallest i with 1 - ((N-i-1)/N)^k >= u  <=>  (N-i-1)/N <= (1-u)^{1/k}.
  const double s = std::pow(1.0 - u, 1.0 / static_cast<double>(k));
  const double idx = n - 1.0 - s * n;
  size_t i = idx <= 0 ? 0 : static_cast<size_t>(std::ceil(idx));
  if (i >= xs.size()) i = xs.size() - 1;
  return xs[i];
}

double sample_min_of_k_smoothed(const Ecdf& ecdf, int k, core::Rng& rng) {
  const double u = rng.uniform01();
  const double q = 1.0 - std::pow(1.0 - u, 1.0 / static_cast<double>(k));
  return ecdf.quantile(q);
}

std::vector<double> sample_mins(const Ecdf& ecdf, int k, int count, core::Rng& rng) {
  std::vector<double> out;
  out.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) out.push_back(sample_min_of_k(ecdf, k, rng));
  return out;
}

}  // namespace cas::analysis
