// Speedup computation for the scaling figures (paper Figs. 2 and 3):
// speedup(k) = T(reference cores) / T(k cores), where T is the average (or
// median) time of repeated runs.
#pragma once

#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>
#include <vector>

namespace cas::analysis {

struct SpeedupPoint {
  int cores = 0;
  double time = 0;
  double speedup = 0;        // vs the reference core count
  double ideal_speedup = 0;  // cores / reference_cores
  double efficiency = 0;     // speedup / ideal_speedup
};

/// `time_by_cores`: average (or median) time per core count. The smallest
/// core count present is the reference (the paper uses 32 for Fig. 2 and
/// 512/2048 for Fig. 3).
inline std::vector<SpeedupPoint> speedup_series(const std::map<int, double>& time_by_cores) {
  if (time_by_cores.empty()) throw std::invalid_argument("speedup_series: no data");
  const int ref_cores = time_by_cores.begin()->first;
  const double ref_time = time_by_cores.begin()->second;
  std::vector<SpeedupPoint> out;
  for (const auto& [cores, time] : time_by_cores) {
    SpeedupPoint p;
    p.cores = cores;
    p.time = time;
    p.speedup = time > 0 ? ref_time / time : std::numeric_limits<double>::infinity();
    p.ideal_speedup = static_cast<double>(cores) / ref_cores;
    p.efficiency = p.ideal_speedup > 0 ? p.speedup / p.ideal_speedup : 0;
    out.push_back(p);
  }
  return out;
}

}  // namespace cas::analysis
