#include "analysis/ttt.hpp"

#include <algorithm>

#include "util/ascii_plot.hpp"

namespace cas::analysis {

TttSeries make_ttt(std::string label, std::vector<double> run_times) {
  TttSeries s;
  s.label = std::move(label);
  std::sort(run_times.begin(), run_times.end());
  s.times = std::move(run_times);
  const double n = static_cast<double>(s.times.size());
  s.probs.reserve(s.times.size());
  for (size_t i = 0; i < s.times.size(); ++i) {
    s.probs.push_back((static_cast<double>(i) + 0.5) / n);  // plotting positions
  }
  s.fit = fit_shifted_exponential(s.times);
  s.ks = ks_distance(s.times, s.fit);
  s.ks_p = ks_p_value(s.ks, s.times.size());
  return s;
}

double success_probability_within(const TttSeries& s, double t) {
  const auto it = std::upper_bound(s.times.begin(), s.times.end(), t);
  return static_cast<double>(it - s.times.begin()) / static_cast<double>(s.times.size());
}

std::string render_ttt_plot(const std::vector<TttSeries>& series, int width, int height) {
  std::vector<util::Series> plot_series;
  const char glyphs[] = {'o', '+', 'x', '#', '@', '%'};
  int gi = 0;
  for (const auto& s : series) {
    util::Series pts;
    pts.name = s.label;
    pts.glyph = glyphs[gi % 6];
    pts.x = s.times;
    pts.y = s.probs;
    plot_series.push_back(std::move(pts));
    // Fitted CDF as a connected line over the same time range.
    util::Series fit_line;
    fit_line.name = s.label + " (shifted-exp fit)";
    fit_line.glyph = '.';
    fit_line.connect = true;
    const double t0 = s.times.front(), t1 = s.times.back();
    for (int i = 0; i <= 40; ++i) {
      const double t = t0 + (t1 - t0) * i / 40.0;
      fit_line.x.push_back(t);
      fit_line.y.push_back(s.fit.cdf(t));
    }
    plot_series.push_back(std::move(fit_line));
    ++gi;
  }
  util::PlotOptions opt;
  opt.width = width;
  opt.height = height;
  opt.x_label = "time to solution (s)";
  opt.y_label = "P(solved within t)";
  return util::ascii_plot(plot_series, opt);
}

}  // namespace cas::analysis
