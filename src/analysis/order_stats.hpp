// Minimum-of-k order statistics over an empirical run-time distribution.
//
// The key identity behind the cluster simulator (DESIGN.md §4): with
// independent multi-walk and terminate-on-first-solution, the wall-clock
// time on k cores IS the minimum of k i.i.d. draws from the sequential
// run-time distribution. Given a sample bank, these helpers compute the
// expectation, quantiles and Monte-Carlo draws of that minimum without
// running k physical cores.
#pragma once

#include <vector>

#include "analysis/ecdf.hpp"
#include "core/rng.hpp"

namespace cas::analysis {

/// E[min of k i.i.d. draws] from the empirical distribution (draws with
/// replacement). Closed form over the sorted samples:
///   E = x_(1) + sum_{i=1}^{N-1} (x_(i+1) - x_(i)) * ((N - i)/N)^k.
double expected_min_of_k(const Ecdf& ecdf, int k);

/// Quantile of the min-of-k distribution: F_min(t) = 1 - (1 - F(t))^k, so
/// the q-quantile of the minimum is the (1 - (1-q)^{1/k})-quantile of F.
double quantile_min_of_k(const Ecdf& ecdf, int k, double q);

/// One Monte-Carlo draw of min-of-k: k draws with replacement from the
/// sample bank (exact resampling, no interpolation).
double sample_min_of_k(const Ecdf& ecdf, int k, core::Rng& rng);

/// One smoothed draw via inverse-transform: u ~ U(0,1) mapped through the
/// interpolated quantile function at 1 - (1-u)^{1/k}. Used when k is large
/// relative to the bank size so results are not pinned to the bank minimum.
double sample_min_of_k_smoothed(const Ecdf& ecdf, int k, core::Rng& rng);

/// Many draws at once (exact resampling).
std::vector<double> sample_mins(const Ecdf& ecdf, int k, int count, core::Rng& rng);

}  // namespace cas::analysis
