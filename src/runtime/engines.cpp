#include "runtime/engines.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "runtime/knobs.hpp"

namespace cas::runtime {

namespace {

/// The shared spec reader, labelled for engine knob errors.
KnobReader knobs(const EngineParams& p, const char* engine) {
  return KnobReader(p.overrides, std::string("engine '") + engine + "'");
}

/// Budget knobs shared by every engine config struct.
template <typename Config>
void apply_budget(Config& cfg, const EngineParams& p) {
  if (p.probe_interval != 0) cfg.probe_interval = p.probe_interval;
  if (p.max_iterations != 0) cfg.max_iterations = p.max_iterations;
}

}  // namespace

core::AsConfig make_as_config(const EngineParams& p) {
  core::AsConfig cfg = p.base_as;  // the problem's tuned defaults
  KnobReader k = knobs(p, "as");
  k.read("tabu_tenure", cfg.tabu_tenure);
  k.read("plateau_probability", cfg.plateau_probability);
  k.read("reset_limit", cfg.reset_limit);
  k.read("reset_fraction", cfg.reset_fraction);
  k.read("use_custom_reset", cfg.use_custom_reset);
  k.read("keep_tabu_on_reset", cfg.keep_tabu_on_reset);
  k.read("hybrid_reset", cfg.hybrid_reset);
  k.read("restart_interval", cfg.restart_interval);
  k.finish();
  apply_budget(cfg, p);
  return cfg;
}

core::TsConfig make_ts_config(const EngineParams& p) {
  core::TsConfig cfg;
  KnobReader k = knobs(p, "tabu");
  k.read("tenure", cfg.tenure);
  k.read("aspiration", cfg.aspiration);
  k.read("stall_restart", cfg.stall_restart);
  k.finish();
  apply_budget(cfg, p);
  return cfg;
}

core::DsConfig make_ds_config(const EngineParams& p) {
  core::DsConfig cfg;
  KnobReader k = knobs(p, "dialectic");
  k.read("max_no_improve", cfg.max_no_improve);
  k.read("perturbation_fraction", cfg.perturbation_fraction);
  k.finish();
  if (p.max_iterations != 0) cfg.max_iterations = p.max_iterations;
  // The dialectic engine counts greedy passes, not moves; the shared probe
  // interval is scaled down the same way the portfolio runner always did.
  if (p.probe_interval != 0)
    cfg.probe_interval = std::max<uint64_t>(1, p.probe_interval / 8);
  return cfg;
}

core::SaConfig make_sa_config(const EngineParams& p) {
  core::SaConfig cfg;
  KnobReader k = knobs(p, "sa");
  k.read("initial_temperature", cfg.initial_temperature);
  k.read("alpha", cfg.alpha);
  k.read("moves_per_temperature", cfg.moves_per_temperature);
  k.read("freeze_temperature", cfg.freeze_temperature);
  k.finish();
  apply_budget(cfg, p);
  return cfg;
}

core::HcConfig make_hc_config(const EngineParams& p) {
  core::HcConfig cfg;
  KnobReader k = knobs(p, "hill");
  k.finish();
  apply_budget(cfg, p);
  return cfg;
}

core::RhConfig make_rh_config(const EngineParams& p) {
  core::RhConfig cfg;
  KnobReader k = knobs(p, "rickard-healy");
  k.read("stall_limit", cfg.stall_limit);
  k.read("accept_equal", cfg.accept_equal);
  k.finish();
  apply_budget(cfg, p);
  return cfg;
}

core::GaConfig make_ga_config(const EngineParams& p) {
  core::GaConfig cfg;
  KnobReader k = knobs(p, "genetic");
  k.read("population", cfg.population);
  k.read("tournament_k", cfg.tournament_k);
  k.read("crossover_probability", cfg.crossover_probability);
  k.read("mutation_probability", cfg.mutation_probability);
  k.read("elites", cfg.elites);
  k.finish();
  if (p.probe_interval != 0) cfg.probe_interval = p.probe_interval;
  if (p.max_iterations != 0) cfg.max_generations = p.max_iterations;
  return cfg;
}

const Registry<EngineInfo>& engine_catalog() {
  static const Registry<EngineInfo> catalog = [] {
    Registry<EngineInfo> r;
    r.add("as", {"Adaptive Search (the paper's engine; per-problem tuned defaults)",
                 [](const EngineParams& p) { make_as_config(p); }});
    r.add("tabu", {"Tabu Search over the swap neighborhood (Comet comparator)",
                   [](const EngineParams& p) { make_ts_config(p); }});
    r.add("dialectic", {"Dialectic Search (Kadioglu & Sellmann 2009)",
                        [](const EngineParams& p) { make_ds_config(p); }});
    r.add("sa", {"Simulated annealing with geometric cooling",
                 [](const EngineParams& p) { make_sa_config(p); }});
    r.add("hill", {"Random-restart steepest descent baseline",
                   [](const EngineParams& p) { make_hc_config(p); }});
    r.add("rickard-healy", {"Rickard-Healy stochastic search (CISS 2006)",
                            [](const EngineParams& p) { make_rh_config(p); }});
    r.add("genetic", {"Permutation genetic algorithm (population baseline)",
                      [](const EngineParams& p) { make_ga_config(p); }});
    return r;
  }();
  return catalog;
}

}  // namespace cas::runtime
