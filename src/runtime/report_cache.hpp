// Bounded LRU cache of SolveReports keyed by canonical request
// (SolveRequest::canonical_key), with optional TTL expiry.
//
// Policy lives in the SolverService: only deterministic-seed requests whose
// execution succeeded are ever put() here (stochastic requests are
// dedup-only, and an unsolved run bounded by a wall-clock timeout might do
// better on a retry, so it is not a cacheable answer). The cache itself is
// policy-free and NOT internally synchronized — the service serializes
// access under its own mutex. Time is passed in by the caller (monotonic
// seconds), which keeps TTL behaviour testable without sleeping.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

#include "runtime/spec.hpp"

namespace cas::runtime {

class ReportCache {
 public:
  /// capacity 0 disables the cache (get always misses, put is a no-op);
  /// ttl_seconds 0 means entries never expire.
  ReportCache(size_t capacity, double ttl_seconds)
      : capacity_(capacity), ttl_seconds_(ttl_seconds) {}

  /// Lookup; a hit is moved to the front of the LRU order. An entry older
  /// than the TTL is dropped and counted as expired, not served.
  std::optional<SolveReport> get(const std::string& key, double now);

  /// Insert/overwrite; evicts the least-recently-used entry when full.
  void put(const std::string& key, SolveReport report, double now);

  [[nodiscard]] size_t size() const { return entries_.size(); }
  [[nodiscard]] size_t capacity() const { return capacity_; }
  [[nodiscard]] uint64_t hits() const { return hits_; }
  [[nodiscard]] uint64_t misses() const { return misses_; }
  [[nodiscard]] uint64_t evictions() const { return evictions_; }
  [[nodiscard]] uint64_t expired() const { return expired_; }

 private:
  struct Entry {
    std::string key;
    SolveReport report;
    double stored_at = 0;
  };

  size_t capacity_;
  double ttl_seconds_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> entries_;
  uint64_t hits_ = 0, misses_ = 0, evictions_ = 0, expired_ = 0;
};

}  // namespace cas::runtime
