#include "runtime/report_cache.hpp"

namespace cas::runtime {

std::optional<SolveReport> ReportCache::get(const std::string& key, double now) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return std::nullopt;
  }
  if (ttl_seconds_ > 0 && now - it->second->stored_at >= ttl_seconds_) {
    lru_.erase(it->second);
    entries_.erase(it);
    ++expired_;
    ++misses_;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  return it->second->report;
}

void ReportCache::put(const std::string& key, SolveReport report, double now) {
  if (capacity_ == 0) return;
  if (const auto it = entries_.find(key); it != entries_.end()) {
    it->second->report = std::move(report);
    it->second->stored_at = now;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (entries_.size() >= capacity_) {
    entries_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
  lru_.push_front(Entry{key, std::move(report), now});
  entries_[key] = lru_.begin();
}

}  // namespace cas::runtime
