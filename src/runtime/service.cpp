#include "runtime/service.hpp"

#include <thread>

namespace cas::runtime {

util::Json SolverService::Stats::to_json() const {
  util::Json j = util::Json::object();
  j["submitted"] = submitted;
  j["completed"] = completed;
  j["solved"] = solved;
  j["failed"] = failed;
  j["total_iterations"] = total_iterations;
  j["total_wall_seconds"] = total_wall_seconds;
  return j;
}

SolverService::SolverService() : SolverService(Options{}) {}

SolverService::SolverService(Options opts) : pool_(opts.pool_threads) {}

SolverService::~SolverService() {
  std::unique_lock lock(mu_);
  idle_cv_.wait(lock, [this] { return inflight_ == 0; });
}

SolveReport SolverService::run_one(const SolveRequest& req) {
  StrategyContext ctx;
  ctx.executor = &pool_;
  SolveReport report = solve(req, ctx);  // never throws
  {
    std::scoped_lock lock(mu_);
    ++stats_.completed;
    if (!report.error.empty())
      ++stats_.failed;
    else if (report.solved)
      ++stats_.solved;
    stats_.total_iterations += report.total_iterations;
    stats_.total_wall_seconds += report.wall_seconds;
    --inflight_;
    // Notify under the lock: after the unlock the destructor may already
    // have observed inflight_ == 0 and destroyed the condition variable.
    idle_cv_.notify_all();
  }
  return report;
}

std::future<SolveReport> SolverService::submit(SolveRequest req) {
  {
    std::scoped_lock lock(mu_);
    ++stats_.submitted;
    ++inflight_;
  }
  try {
    // One coordinator thread per in-flight request; it spends its life
    // blocked on the request's walker chunks, which run on the shared pool.
    return std::async(std::launch::async,
                      [this, req = std::move(req)] { return run_one(req); });
  } catch (...) {
    // Thread creation failed: no coordinator will ever decrement
    // inflight_, so roll the accounting back or the destructor hangs.
    std::scoped_lock lock(mu_);
    --stats_.submitted;
    --inflight_;
    idle_cv_.notify_all();
    throw;
  }
}

std::vector<SolveReport> SolverService::solve_batch(const std::vector<SolveRequest>& requests) {
  std::vector<std::future<SolveReport>> futures;
  futures.reserve(requests.size());
  for (const auto& req : requests) futures.push_back(submit(req));
  std::vector<SolveReport> reports;
  reports.reserve(futures.size());
  for (auto& f : futures) reports.push_back(f.get());
  return reports;
}

SolverService::Stats SolverService::stats() const {
  std::scoped_lock lock(mu_);
  return stats_;
}

}  // namespace cas::runtime
