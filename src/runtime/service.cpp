#include "runtime/service.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

namespace cas::runtime {

namespace {

double steady_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

util::Json ServiceStats::to_json() const {
  util::Json j = util::Json::object();
  j["submitted"] = submitted;
  j["completed"] = completed;
  j["solved"] = solved;
  j["failed"] = failed;
  j["executions"] = executions;
  j["dedup_hits"] = dedup_hits;
  j["cache_hits"] = cache_hits;
  j["rejected"] = rejected;
  j["cache_size"] = cache_size;
  j["cache_evictions"] = cache_evictions;
  j["cache_expired"] = cache_expired;
  j["estimated_walker_seconds"] = estimated_walker_seconds;
  j["cost_model_calibrations"] = cost_model_calibrations;
  j["diversification_samples"] = diversification_samples;
  j["total_iterations"] = total_iterations;
  j["total_wall_seconds"] = total_wall_seconds;
  // Per-outcome service latency percentiles (milliseconds). An outcome
  // with count 0 reports zeros — the keys are always present so wire
  // consumers need no existence checks.
  const auto latency_json = [](const util::LogHistogram& h) {
    util::Json l = util::Json::object();
    l["count"] = h.count();
    l["mean_ms"] = h.mean() * 1e3;
    l["p50_ms"] = h.percentile(0.50) * 1e3;
    l["p95_ms"] = h.percentile(0.95) * 1e3;
    l["p99_ms"] = h.percentile(0.99) * 1e3;
    l["max_ms"] = h.max() * 1e3;
    return l;
  };
  util::Json lat = util::Json::object();
  lat["executed"] = latency_json(latency_executed);
  lat["dedup"] = latency_json(latency_dedup);
  lat["cache"] = latency_json(latency_cache);
  lat["rejected"] = latency_json(latency_rejected);
  j["latency"] = std::move(lat);
  return j;
}

SolverService::SolverService() : SolverService(Options{}) {}

SolverService::SolverService(Options opts)
    : opts_(std::move(opts)),
      pool_(opts_.pool_threads),
      clock_(opts_.clock ? opts_.clock : steady_seconds),
      cache_(opts_.cache_capacity, opts_.cache_ttl_seconds) {}

SolverService::~SolverService() {
  std::unique_lock lock(mu_);
  idle_cv_.wait(lock, [this] { return inflight_ == 0; });
}

void SolverService::run_leader(const SolveRequest& req, const std::string& key,
                               const std::shared_ptr<Inflight>& entry, bool cacheable_seed,
                               double t0, Callback done) {
  StrategyContext ctx;
  ctx.executor = &pool_;
  // Never throws: both solve() and any injected solve_fn report failures
  // through report.error.
  SolveReport report = opts_.solve_fn ? opts_.solve_fn(req, ctx) : solve(req, ctx);
  report.served_by = "executed";
  std::vector<Follower> followers;
  {
    std::scoped_lock lock(mu_);
    const double now = clock_();
    ++stats_.executions;
    ++stats_.completed;
    if (!report.error.empty())
      ++stats_.failed;
    else if (report.solved)
      ++stats_.solved;
    stats_.total_iterations += report.total_iterations;
    stats_.total_wall_seconds += report.wall_seconds;
    stats_.latency_executed.add(now - t0);
    if (opts_.auto_calibrate) auto_calibrate_locked(report);
    if (entry != nullptr) {
      // The inflight entry leaves the map under the same lock that admits
      // followers, so the follower set is final here.
      followers = std::move(entry->followers);
      inflight_by_key_.erase(key);
      stats_.completed += followers.size();
      if (!report.error.empty())
        stats_.failed += followers.size();
      else if (report.solved)
        stats_.solved += followers.size();
      for (const Follower& f : followers) stats_.latency_dedup.add(now - f.t0);
      // Cacheable: deterministic seed, clean execution, and not an
      // unsolved run whose only bound was the wall clock (a retry might
      // do better — that answer must not be frozen).
      if (cacheable_seed && report.error.empty() &&
          (report.solved || report.request.timeout_seconds <= 0))
        cache_.put(key, report, clock_());
    }
  }
  // Completion callbacks run BEFORE the inflight decrement: the destructor
  // releases only once every callback has returned, so a callback can
  // safely touch structures that outlive the service by construction (the
  // server's completion queue) without racing teardown.
  for (Follower& f : followers) {
    SolveReport copy = report;
    copy.served_by = "dedup";
    copy.request.id = f.id;
    f.done(std::move(copy));
  }
  done(std::move(report));
  {
    // Nothing may touch `this` after this block: once inflight_ hits 0 the
    // destructor is free to run while this detached coordinator finishes
    // returning.
    std::scoped_lock lock(mu_);
    --inflight_;
    // Notify under the lock: after the unlock the destructor may already
    // have observed inflight_ == 0 and destroyed the condition variable.
    idle_cv_.notify_all();
  }
}

void SolverService::auto_calibrate_locked(const SolveReport& report) {
  // Only clean, solved, first-win executions are usable: an unsolved or
  // errored run is a censored observation of the run-time distribution,
  // and non-first-win strategies (cooperative adoption, portfolio
  // heterogeneity, single-walk neighborhood) change the law itself.
  if (!report.error.empty() || !report.solved) return;
  // Diversification is observational, not a run-time law — every clean
  // solved run feeds the per-instance escape-chunk histogram regardless of
  // strategy.
  if (report.winner_stats.wall_seconds > 0) {
    cost_model_.record_diversification(report);
    ++stats_.diversification_samples;
  }
  const SolveRequest& req = report.request;
  if (req.strategy != "sequential" && req.strategy != "multiwalk" && req.strategy != "mpi")
    return;
  const int k = report.walkers_run;
  if (k < 1 || report.wall_seconds <= 0) return;
  // Minimum of k exponential walkers, scaled by k, is distributed like one
  // walker: the sample is a single-walker-equivalent draw.
  const double sample = report.wall_seconds * k;
  auto& samples = calibration_samples_[{req.problem, req.size}];
  constexpr size_t kWindow = 64;
  if (samples.size() >= kWindow) samples.erase(samples.begin());
  samples.push_back(sample);
  if (samples.size() < static_cast<size_t>(std::max(2, opts_.auto_calibrate_min_samples)))
    return;
  cost_model_.calibrate(req.problem, req.size, samples);
  ++stats_.cost_model_calibrations;
}

std::future<SolveReport> SolverService::submit(SolveRequest req) {
  // The blocking form is a thin shim over the streaming one: the callback
  // fulfills a shared promise. The promise outlives the service by
  // construction (the closure owns it), so the callback-before-decrement
  // teardown rule holds trivially.
  auto prom = std::make_shared<std::promise<SolveReport>>();
  std::future<SolveReport> fut = prom->get_future();
  submit_with_callback(std::move(req),
                       [prom](SolveReport r) { prom->set_value(std::move(r)); });
  return fut;
}

void SolverService::submit_with_callback(SolveRequest req, Callback done) {
  const double t0 = clock_();
  // Resolution (and hence the canonical key) happens before any serving
  // decision; an unresolvable request skips dedup/cache/admission and goes
  // straight to execution, where solve() turns the failure into an error
  // report — the established stats semantics for bad requests.
  SolveRequest resolved;
  std::string key;
  bool resolvable = false;
  try {
    resolved = resolve(req);
    key = resolved.canonical_key();
    resolvable = true;
  } catch (const std::exception&) {
  }

  std::unique_lock lock(mu_);
  ++stats_.submitted;
  if (resolvable) {
    // 1. Report cache. A hit is free, so it is served even when the
    //    request would fail admission.
    if (auto hit = cache_.get(key, clock_())) {
      ++stats_.completed;
      if (hit->solved) ++stats_.solved;
      stats_.latency_cache.add(clock_() - t0);
      hit->served_by = "cache";
      hit->request.id = req.id;
      lock.unlock();
      done(std::move(*hit));
      return;
    }
    // 2. In-flight dedup: coalesce onto the running execution; the
    //    leader's completion epilogue fulfills the callback.
    if (const auto it = inflight_by_key_.find(key); it != inflight_by_key_.end()) {
      ++stats_.dedup_hits;
      it->second->followers.push_back({req.id, t0, std::move(done)});
      return;
    }
    // 3. Cost-estimated admission, only for work that would actually run.
    if (opts_.admission_budget_walker_seconds > 0) {
      const CostEstimate est = cost_model_.estimate(resolved);
      if (est.known &&
          est.expected_walker_seconds > opts_.admission_budget_walker_seconds) {
        ++stats_.rejected;
        ++stats_.completed;
        ++stats_.failed;
        stats_.latency_rejected.add(clock_() - t0);
        SolveReport rejection;
        rejection.request = std::move(resolved);
        rejection.served_by = "rejected";
        rejection.error = "admission rejected: estimated " +
                          std::to_string(est.expected_walker_seconds) +
                          " walker-seconds exceeds budget " +
                          std::to_string(opts_.admission_budget_walker_seconds);
        rejection.extras = util::Json::object();
        rejection.extras["cost_estimate"] = est.to_json();
        lock.unlock();
        done(std::move(rejection));
        return;
      }
      if (est.known) stats_.estimated_walker_seconds += est.expected_walker_seconds;
    }
  }
  ++inflight_;
  std::shared_ptr<Inflight> entry;
  if (resolvable) {
    entry = std::make_shared<Inflight>();
    inflight_by_key_[key] = entry;
  }
  lock.unlock();
  // Leaders keep the resolved request (resolve is idempotent inside
  // solve()); unresolvable requests carry the original so the error
  // message names the offending field.
  const SolveRequest& to_run = resolvable ? resolved : req;
  const bool cacheable_seed = resolvable && resolved.seed != 0 && opts_.cache_capacity > 0;
  try {
    // One coordinator thread per executing request; it spends its life
    // blocked on the request's walker chunks, which run on the shared
    // pool. Detached: the destructor's inflight wait is the join (the
    // coordinator's last act is the decrement), so nobody has to hold a
    // future. `key` is copied, not moved: the rollback below still needs
    // it when coordinator creation throws mid-flight.
    std::thread([this, run = to_run, key, entry, cacheable_seed, t0,
                 done = std::move(done)]() mutable {
      run_leader(run, key, entry, cacheable_seed, t0, std::move(done));
    }).detach();
  } catch (...) {
    // Thread creation failed: no coordinator will ever decrement
    // inflight_, so roll the accounting back or the destructor hangs. Any
    // follower that attached in the published-but-unlaunched window must
    // still see its callback run (with an error report) — a swallowed
    // completion would wedge the server front-end's connection state.
    std::vector<Follower> orphans;
    {
      std::scoped_lock relock(mu_);
      --stats_.submitted;
      --inflight_;
      if (entry != nullptr) {
        orphans = std::move(entry->followers);
        inflight_by_key_.erase(key);
        stats_.completed += orphans.size();
        stats_.failed += orphans.size();
      }
      idle_cv_.notify_all();
    }
    for (Follower& f : orphans) {
      SolveReport orphan_report;
      orphan_report.request = resolved;
      orphan_report.request.id = f.id;
      orphan_report.error = "service: coordinator thread creation failed";
      f.done(std::move(orphan_report));
    }
    throw;
  }
}

std::vector<SolveReport> SolverService::solve_batch(const std::vector<SolveRequest>& requests) {
  std::vector<std::future<SolveReport>> futures;
  futures.reserve(requests.size());
  for (const auto& req : requests) futures.push_back(submit(req));
  std::vector<SolveReport> reports;
  reports.reserve(futures.size());
  for (auto& f : futures) reports.push_back(f.get());
  return reports;
}

ServiceStats SolverService::stats() const {
  std::scoped_lock lock(mu_);
  ServiceStats s = stats_;
  s.cache_hits = cache_.hits();
  s.cache_size = cache_.size();
  s.cache_evictions = cache_.evictions();
  s.cache_expired = cache_.expired();
  return s;
}

uint64_t SolverService::inflight() const {
  std::scoped_lock lock(mu_);
  return inflight_;
}

CostEstimate SolverService::estimate(const SolveRequest& req) const {
  try {
    const SolveRequest resolved = resolve(req);
    std::scoped_lock lock(mu_);
    return cost_model_.estimate(resolved);
  } catch (const std::exception&) {
    return {};  // unpriceable: est.known stays false, the caller admits
  }
}

void SolverService::set_admission_budget(double walker_seconds) {
  std::scoped_lock lock(mu_);
  opts_.admission_budget_walker_seconds = walker_seconds;
}

void SolverService::calibrate_cost_model(const std::string& problem, int size,
                                         const std::vector<double>& run_seconds) {
  std::scoped_lock lock(mu_);
  cost_model_.calibrate(problem, size, run_seconds);
}

CostModel SolverService::cost_model() const {
  std::scoped_lock lock(mu_);
  return cost_model_;
}

}  // namespace cas::runtime
