// The engine registry: every sequential search engine (Adaptive Search,
// Tabu, Dialectic, Simulated Annealing, hill climbing, Rickard-Healy,
// genetic) selectable by name and configurable from a JSON knob object.
//
// Two pieces cooperate:
//   * engine_catalog() — the type-erased, string-keyed side: name,
//     description, and a config validator, shared across all problems
//     (what `cas_run --list` prints);
//   * engine_table<P>() — the typed side: for a concrete problem model P,
//     a registry of factories producing ready-to-run closures. The engines
//     are templates over the LocalSearchProblem concept, so the
//     problem × engine cross product is instantiated here, once per
//     problem type, behind a uniform std::function interface.
// A test pins the two key sets against each other so they cannot drift.
#pragma once

#include <functional>
#include <string>

#include "core/adaptive_search.hpp"
#include "core/config.hpp"
#include "core/dialectic_search.hpp"
#include "core/genetic.hpp"
#include "core/hill_climber.hpp"
#include "core/problem.hpp"
#include "core/rickard_healy.hpp"
#include "core/simulated_annealing.hpp"
#include "core/stats.hpp"
#include "core/tabu_search.hpp"
#include "runtime/registry.hpp"
#include "util/json.hpp"

namespace cas::runtime {

/// Everything an engine factory needs besides the per-walker seed.
struct EngineParams {
  /// Engine-specific knob overrides (JSON object or null). Unknown keys
  /// are an error.
  util::Json overrides;
  /// Tuned Adaptive Search defaults for the problem at hand (the paper's
  /// per-problem tuning); JSON overrides are applied on top. Only the AS
  /// factory reads this — other engines start from their struct defaults.
  core::AsConfig base_as;
  uint64_t probe_interval = 0;  // 0 = keep the engine's default
  uint64_t max_iterations = 0;  // 0 = unlimited
};

// --- JSON -> engine config builders (throw on unknown keys) ---
core::AsConfig make_as_config(const EngineParams& p);
core::TsConfig make_ts_config(const EngineParams& p);
core::DsConfig make_ds_config(const EngineParams& p);
core::SaConfig make_sa_config(const EngineParams& p);
core::HcConfig make_hc_config(const EngineParams& p);
core::RhConfig make_rh_config(const EngineParams& p);
core::GaConfig make_ga_config(const EngineParams& p);

/// Type-erased engine metadata: what the CLI lists and validates against.
struct EngineInfo {
  std::string description;
  /// Parses `p.overrides` for its side effects only: throws on unknown or
  /// ill-typed knobs so spec validation can run without a problem instance.
  std::function<void(const EngineParams& p)> validate;
};

/// The shared, string-keyed engine catalog.
const Registry<EngineInfo>& engine_catalog();

/// Typed engine factories for problem model P. A Factory builds a Runner
/// from EngineParams; the Runner executes one walk on a freshly
/// constructed problem instance with the walker's own seed.
template <core::LocalSearchProblem P>
struct EngineTable {
  using Runner = std::function<core::RunStats(P& problem, uint64_t seed, core::StopToken stop)>;
  using Factory = std::function<Runner(const EngineParams&)>;
};

template <core::LocalSearchProblem P>
const Registry<typename EngineTable<P>::Factory>& engine_table() {
  using Runner = typename EngineTable<P>::Runner;
  using Factory = typename EngineTable<P>::Factory;
  static const Registry<Factory> table = [] {
    Registry<Factory> r;
    r.add("as", Factory([](const EngineParams& p) -> Runner {
            auto cfg = make_as_config(p);
            return [cfg](P& problem, uint64_t seed, core::StopToken stop) {
              auto c = cfg;
              c.seed = seed;
              core::AdaptiveSearch<P> engine(problem, c);
              return engine.solve(stop);
            };
          }));
    r.add("tabu", Factory([](const EngineParams& p) -> Runner {
            auto cfg = make_ts_config(p);
            return [cfg](P& problem, uint64_t seed, core::StopToken stop) {
              auto c = cfg;
              c.seed = seed;
              core::TabuSearch<P> engine(problem, c);
              return engine.solve(stop);
            };
          }));
    r.add("dialectic", Factory([](const EngineParams& p) -> Runner {
            auto cfg = make_ds_config(p);
            return [cfg](P& problem, uint64_t seed, core::StopToken stop) {
              auto c = cfg;
              c.seed = seed;
              core::DialecticSearch<P> engine(problem, c);
              return engine.solve(stop);
            };
          }));
    r.add("sa", Factory([](const EngineParams& p) -> Runner {
            auto cfg = make_sa_config(p);
            return [cfg](P& problem, uint64_t seed, core::StopToken stop) {
              auto c = cfg;
              c.seed = seed;
              core::SimulatedAnnealing<P> engine(problem, c);
              return engine.solve(stop);
            };
          }));
    r.add("hill", Factory([](const EngineParams& p) -> Runner {
            auto cfg = make_hc_config(p);
            return [cfg](P& problem, uint64_t seed, core::StopToken stop) {
              auto c = cfg;
              c.seed = seed;
              core::HillClimber<P> engine(problem, c);
              return engine.solve(stop);
            };
          }));
    r.add("rickard-healy", Factory([](const EngineParams& p) -> Runner {
            auto cfg = make_rh_config(p);
            return [cfg](P& problem, uint64_t seed, core::StopToken stop) {
              auto c = cfg;
              c.seed = seed;
              core::RickardHealySearch<P> engine(problem, c);
              return engine.solve(stop);
            };
          }));
    // The GA is the one engine off the incremental API: it needs the
    // stateless whole-permutation evaluate() (PermutationEvaluator), which
    // only some models provide. Problems without it simply don't list
    // "genetic", and a spec asking for it gets the unknown-engine error
    // naming the alternatives.
    if constexpr (core::PermutationEvaluator<P>) {
      r.add("genetic", Factory([](const EngineParams& p) -> Runner {
              auto cfg = make_ga_config(p);
              return [cfg](P& problem, uint64_t seed, core::StopToken stop) {
                auto c = cfg;
                c.seed = seed;
                core::GeneticSearch<P> engine(problem, c);
                return engine.solve(stop);
              };
            }));
    }
    return r;
  }();
  return table;
}

}  // namespace cas::runtime
