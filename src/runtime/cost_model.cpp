#include "runtime/cost_model.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "analysis/speedup_predictor.hpp"

namespace cas::runtime {

util::Json CostEstimate::to_json() const {
  util::Json j = util::Json::object();
  j["known"] = known;
  j["effective_walkers"] = effective_walkers;
  j["expected_wall_seconds"] = expected_wall_seconds;
  j["expected_walker_seconds"] = expected_walker_seconds;
  j["fit_mu"] = fit.mu;
  j["fit_lambda"] = fit.lambda;
  if (diversification_known) {
    util::Json d = util::Json::object();
    d["mean_escape_chunks_per_reset"] = mean_escape_chunks_per_reset;
    d["p95_escape_chunks_per_reset"] = p95_escape_chunks_per_reset;
    d["expected_reset_fraction"] = expected_reset_fraction;
    d["expected_reset_seconds"] = expected_reset_seconds;
    j["diversification"] = std::move(d);
  }
  return j;
}

void CostModel::record_diversification(const SolveReport& report) {
  if (!report.error.empty() || !report.solved) return;
  const core::RunStats& st = report.winner_stats;
  if (st.wall_seconds <= 0) return;
  DiversificationProfile& prof =
      diversification_[{report.request.problem, report.request.size}];
  prof.runs += 1;
  prof.resets += st.resets;
  prof.reset_seconds += st.reset_seconds;
  prof.wall_seconds += st.wall_seconds;
  // Chunks-per-reset is only defined when the run diversified at all; a
  // reset-free run still sharpens the fraction (it pulls it toward zero).
  if (st.resets > 0)
    prof.escape_chunks.add(static_cast<double>(st.reset_escape_chunks) /
                           static_cast<double>(st.resets));
}

uint64_t CostModel::diversification_samples(const std::string& problem, int size) const {
  const auto it = diversification_.find({problem, size});
  return it == diversification_.end() ? 0 : it->second.runs;
}

CostModel::CostModel() {
  // Costas single-walker mean run time by order, measured on the reference
  // machine (RelWithDebInfo, AS engine, tuned defaults; n = 18 geometric
  // extrapolation). mu = 0: the instances live in the paper's
  // pure-exponential regime. Order-of-magnitude admission defaults —
  // recalibrate from live samples for sharper gating.
  Curve& costas = curves_["costas"];
  for (const auto& [n, mean_seconds] :
       std::vector<std::pair<int, double>>{{8, 5e-5},
                                           {10, 1.5e-4},
                                           {12, 4e-4},
                                           {13, 1.6e-3},
                                           {14, 5e-3},
                                           {15, 2.5e-2},
                                           {16, 0.12},
                                           {17, 1.25},
                                           {18, 10.0}})
    costas[n] = analysis::ShiftedExponential{0.0, mean_seconds};
}

void CostModel::calibrate(const std::string& problem, int size,
                          const std::vector<double>& run_seconds) {
  curves_[problem][size] = analysis::fit_shifted_exponential(run_seconds);
}

analysis::ShiftedExponential CostModel::fit_for(const Curve& curve, int size) const {
  const auto exact = curve.find(size);
  if (exact != curve.end()) return exact->second;

  // Log-linear in size between/beyond calibration points: the Sec. II
  // density collapse makes geometric growth the right prior for lambda.
  const auto interp = [](const std::pair<int, analysis::ShiftedExponential>& a,
                         const std::pair<int, analysis::ShiftedExponential>& b, int s) {
    const double t = static_cast<double>(s - a.first) / (b.first - a.first);
    analysis::ShiftedExponential f;
    f.lambda = std::exp(std::log(a.second.lambda) +
                        t * (std::log(b.second.lambda) - std::log(a.second.lambda)));
    f.mu = std::max(0.0, a.second.mu + t * (b.second.mu - a.second.mu));
    return f;
  };
  const auto hi = curve.upper_bound(size);
  if (hi == curve.begin()) {  // below the curve: extrapolate down the first segment
    const auto a = *curve.begin();
    if (curve.size() == 1) return a.second;
    return interp(a, *std::next(curve.begin()), size);
  }
  if (hi == curve.end()) {  // above the curve: extrapolate up the last segment
    const auto b = *std::prev(curve.end());
    if (curve.size() == 1) return b.second;
    return interp(*std::prev(curve.end(), 2), b, size);
  }
  return interp(*std::prev(hi), *hi, size);
}

CostEstimate CostModel::estimate(const SolveRequest& resolved) const {
  CostEstimate est;
  const auto curve = curves_.find(resolved.problem);
  if (curve == curves_.end() || curve->second.empty()) return est;  // unknown: admit

  est.known = true;
  est.fit = fit_for(curve->second, resolved.size);
  const int k = std::max(1, resolved.walkers);
  est.effective_walkers = k;
  // Walkers may time-share fewer OS threads; the bill is unchanged but
  // wall time stretches by the oversubscription factor.
  const int concurrency =
      resolved.num_threads > 0 ? std::min<int>(static_cast<int>(resolved.num_threads), k) : k;

  if (resolved.strategy == "neighborhood") {
    // Single-walk parallelism: replicas accelerate ONE walk, so there is
    // no min-of-k latency win to price; machine time is replicas x wall.
    est.expected_wall_seconds = est.fit.mean();
    est.expected_walker_seconds = k * est.expected_wall_seconds;
  } else {
    est.expected_wall_seconds = analysis::predict_speedup(est.fit, k).expected_time;
    est.expected_walker_seconds = analysis::expected_walker_seconds(est.fit, k);
    if (concurrency < k)
      est.expected_wall_seconds *= static_cast<double>(k) / concurrency;
  }

  // Budget caps bound the bill from above.
  if (resolved.timeout_seconds > 0) {
    est.expected_wall_seconds = std::min(est.expected_wall_seconds, resolved.timeout_seconds);
    est.expected_walker_seconds =
        std::min(est.expected_walker_seconds, concurrency * resolved.timeout_seconds);
  }
  if (resolved.max_iterations > 0 && iterations_per_second_ > 0) {
    const double per_walker_cap = static_cast<double>(resolved.max_iterations) / iterations_per_second_;
    est.expected_wall_seconds =
        std::min(est.expected_wall_seconds, per_walker_cap * k / concurrency);
    est.expected_walker_seconds = std::min(est.expected_walker_seconds, k * per_walker_cap);
  }

  // Diversification pricing: apply the instance's observed reset-time
  // share to the (possibly budget-capped) wall estimate.
  const auto div = diversification_.find({resolved.problem, resolved.size});
  if (div != diversification_.end() && div->second.runs > 0) {
    const DiversificationProfile& prof = div->second;
    est.diversification_known = true;
    est.mean_escape_chunks_per_reset = prof.escape_chunks.mean();
    est.p95_escape_chunks_per_reset = prof.escape_chunks.percentile(0.95);
    est.expected_reset_fraction =
        prof.wall_seconds > 0 ? std::min(1.0, prof.reset_seconds / prof.wall_seconds) : 0.0;
    est.expected_reset_seconds = est.expected_reset_fraction * est.expected_wall_seconds;
  }
  return est;
}

}  // namespace cas::runtime
