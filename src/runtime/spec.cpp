#include "runtime/spec.hpp"

#include <stdexcept>

#include "runtime/knobs.hpp"

namespace cas::runtime {

namespace {

// util::Json stores numbers as doubles, exact only up to 2^53. Seeds (and
// in principle the other uint64 budgets) can exceed that, so they
// round-trip as strings beyond the exact range — a silently rounded seed
// in the echoed request would make the report useless as a reproducibility
// record.
constexpr uint64_t kMaxExactJsonInt = uint64_t{1} << 53;

util::Json u64_to_json(uint64_t v) {
  if (v <= kMaxExactJsonInt) return util::Json(v);
  return util::Json(std::to_string(v));
}

void read_u64(KnobReader& r, const std::string& key, uint64_t& out) {
  if (const auto* v = r.take(key))
    out = v->is_string() ? std::stoull(v->as_string()) : static_cast<uint64_t>(v->as_int());
}

}  // namespace

util::Json SolveRequest::to_json() const {
  util::Json j = util::Json::object();
  if (!id.empty()) j["id"] = id;
  j["problem"] = problem;
  j["size"] = size;
  if (!problem_config.is_null()) j["problem_config"] = problem_config;
  j["engine"] = engine;
  if (!engine_config.is_null()) j["engine_config"] = engine_config;
  j["strategy"] = strategy;
  j["walkers"] = walkers;
  if (num_threads != 0) j["num_threads"] = static_cast<uint64_t>(num_threads);
  if (!strategy_config.is_null()) j["strategy_config"] = strategy_config;
  j["seed"] = u64_to_json(seed);
  if (timeout_seconds > 0) j["timeout_seconds"] = timeout_seconds;
  if (max_iterations != 0) j["max_iterations"] = u64_to_json(max_iterations);
  if (probe_interval != 0) j["probe_interval"] = u64_to_json(probe_interval);
  return j;
}

SolveRequest SolveRequest::from_json(const util::Json& j) {
  SolveRequest req;
  KnobReader r(j, "request");
  r.read("id", req.id);
  r.read("problem", req.problem);
  r.read("size", req.size);
  if (const auto* v = r.take("problem_config")) req.problem_config = *v;
  r.read("engine", req.engine);
  if (const auto* v = r.take("engine_config")) req.engine_config = *v;
  r.read("strategy", req.strategy);
  r.read("walkers", req.walkers);
  r.read("num_threads", req.num_threads);
  if (const auto* v = r.take("strategy_config")) req.strategy_config = *v;
  read_u64(r, "seed", req.seed);
  r.read("timeout_seconds", req.timeout_seconds);
  read_u64(r, "max_iterations", req.max_iterations);
  read_u64(r, "probe_interval", req.probe_interval);
  r.finish();
  return req;
}

util::Json SolveRequest::canonical_json() const {
  util::Json j = util::Json::object();
  j["problem"] = problem;
  j["size"] = size;
  j["engine"] = engine;
  j["strategy"] = strategy;
  j["walkers"] = walkers;
  j["num_threads"] = static_cast<uint64_t>(num_threads);
  j["seed"] = u64_to_json(seed);
  j["timeout_seconds"] = timeout_seconds;
  j["max_iterations"] = u64_to_json(max_iterations);
  j["probe_interval"] = u64_to_json(probe_interval);
  // Configs: null members dropped, and a config that canonicalizes to an
  // empty object is the same request as one with no config at all.
  const auto put_config = [&j](const char* key, const util::Json& cfg) {
    if (cfg.is_null()) return;
    util::Json c = cfg.canonicalized();
    if (c.is_object() && c.size() == 0) return;
    j[key] = std::move(c);
  };
  put_config("problem_config", problem_config);
  put_config("engine_config", engine_config);
  put_config("strategy_config", strategy_config);
  return j;
}

std::string SolveRequest::canonical_key() const { return canonical_json().dump(0); }

util::Json SolveReport::to_json() const {
  util::Json j = util::Json::object();
  j["request"] = request.to_json();
  if (!served_by.empty()) j["served_by"] = served_by;
  if (!error.empty()) {
    j["error"] = error;
    // Rejections carry their pricing (extras.cost_estimate) — the whole
    // point of shedding with an estimate is that the client sees it.
    if (!extras.is_null()) j["extras"] = extras;
    return j;
  }
  j["solved"] = solved;
  j["winner"] = winner;
  j["wall_seconds"] = wall_seconds;
  j["total_iterations"] = total_iterations;
  j["walkers_run"] = walkers_run;
  if (solved) {
    j["winner_iterations"] = winner_stats.iterations;
    j["winner_local_minima"] = winner_stats.local_minima;
    j["winner_resets"] = winner_stats.resets;
    // Reset-phase observability (the batched reset pipeline): how often the
    // custom reset escaped, how many candidate configurations it examined,
    // and the wall time the winner spent diversifying.
    j["winner_custom_reset_escapes"] = winner_stats.custom_reset_escapes;
    j["winner_reset_candidates"] = winner_stats.reset_candidates;
    j["winner_reset_escape_chunks"] = winner_stats.reset_escape_chunks;
    j["winner_reset_seconds"] = winner_stats.reset_seconds;
    util::Json sol = util::Json::array();
    for (int v : winner_stats.solution) sol.push_back(v);
    j["solution"] = std::move(sol);
    if (checked) j["check_passed"] = check_passed;
  }
  if (!extras.is_null()) j["extras"] = extras;
  return j;
}

}  // namespace cas::runtime
