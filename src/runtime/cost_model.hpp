// Cost-estimated admission for the SolverService.
//
// The paper's Sec. V-B observation — run times are (shifted-)exponentially
// distributed — is what makes request cost PREDICTABLE: the same fitted
// distribution that predicts multi-walk speedup (analysis/speedup_predictor)
// predicts the expected machine-time bill of a request. For first-win
// multi-walk over a fit {mu, lambda} the bill is
//
//     E[walker-seconds] = k * E[T_k] = k*mu + lambda
//
// i.e. parallelism buys latency, but the machine-time floor is lambda no
// matter how many walkers race. A serving layer can therefore admit, queue,
// or reject a request BEFORE burning pool time on it.
//
// Calibration: per-problem curves of single-walker run-time fits keyed by
// instance size. Costas ships a built-in curve (machine-measured means in
// the exponential regime, mu = 0; order-of-magnitude defaults, not paper
// claims). Unknown problems/sizes beyond the curve extrapolate
// geometrically — the solution-density collapse of Sec. II makes log-linear
// growth the right prior. calibrate() overrides any point from measured
// samples via analysis/exponential_fit, so a long-running service can keep
// its model honest from its own completed reports.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "analysis/exponential_fit.hpp"
#include "runtime/spec.hpp"

namespace cas::runtime {

struct CostEstimate {
  /// False when no calibration curve covers the problem — the service
  /// admits such requests (the model only gates what it can price).
  bool known = false;
  int effective_walkers = 1;
  double expected_wall_seconds = 0;    // E[T_k] for the strategy/walkers
  double expected_walker_seconds = 0;  // k * E[T_k] — the machine-time bill
  /// Single-walker run-time model the estimate came from (seconds).
  analysis::ShiftedExponential fit;

  [[nodiscard]] util::Json to_json() const;
};

class CostModel {
 public:
  /// Built-in calibration (currently: the Costas curve).
  CostModel();

  /// Price a resolve()d request. Budget caps tighten the estimate: a
  /// wall-clock timeout bounds the bill at k * timeout, an iteration cap
  /// at k * max_iterations / iterations_per_second.
  [[nodiscard]] CostEstimate estimate(const SolveRequest& resolved) const;

  /// Fit measured single-walker run times (seconds) and install the result
  /// as the calibration point for (problem, size), overriding any built-in
  /// value. Requires >= 2 samples (analysis::fit_shifted_exponential).
  void calibrate(const std::string& problem, int size, const std::vector<double>& run_seconds);

  /// Engine iteration rate used to convert max_iterations caps to seconds.
  void set_iterations_per_second(double rate) { iterations_per_second_ = rate; }
  [[nodiscard]] double iterations_per_second() const { return iterations_per_second_; }

 private:
  /// size -> single-walker run-time fit (seconds).
  using Curve = std::map<int, analysis::ShiftedExponential>;

  [[nodiscard]] analysis::ShiftedExponential fit_for(const Curve& curve, int size) const;

  std::map<std::string, Curve> curves_;
  double iterations_per_second_ = 1.2e5;
};

}  // namespace cas::runtime
