// Cost-estimated admission for the SolverService.
//
// The paper's Sec. V-B observation — run times are (shifted-)exponentially
// distributed — is what makes request cost PREDICTABLE: the same fitted
// distribution that predicts multi-walk speedup (analysis/speedup_predictor)
// predicts the expected machine-time bill of a request. For first-win
// multi-walk over a fit {mu, lambda} the bill is
//
//     E[walker-seconds] = k * E[T_k] = k*mu + lambda
//
// i.e. parallelism buys latency, but the machine-time floor is lambda no
// matter how many walkers race. A serving layer can therefore admit, queue,
// or reject a request BEFORE burning pool time on it.
//
// Calibration: per-problem curves of single-walker run-time fits keyed by
// instance size. Costas ships a built-in curve (machine-measured means in
// the exponential regime, mu = 0; order-of-magnitude defaults, not paper
// claims). Unknown problems/sizes beyond the curve extrapolate
// geometrically — the solution-density collapse of Sec. II makes log-linear
// growth the right prior. calibrate() overrides any point from measured
// samples via analysis/exponential_fit, so a long-running service can keep
// its model honest from its own completed reports.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "analysis/exponential_fit.hpp"
#include "runtime/spec.hpp"
#include "util/histogram.hpp"

namespace cas::runtime {

struct CostEstimate {
  /// False when no calibration curve covers the problem — the service
  /// admits such requests (the model only gates what it can price).
  bool known = false;
  int effective_walkers = 1;
  double expected_wall_seconds = 0;    // E[T_k] for the strategy/walkers
  double expected_walker_seconds = 0;  // k * E[T_k] — the machine-time bill
  /// Single-walker run-time model the estimate came from (seconds).
  analysis::ShiftedExponential fit;

  /// Diversification pricing — present once the per-(problem, size)
  /// escape-chunk histogram has at least one recorded run. Escape chunks
  /// measure how much batched-reset work each diversification event burned
  /// before escaping; the fraction is the observed share of wall time
  /// spent diversifying on THIS instance, so reset-heavy sizes carry a
  /// visibly larger reset bill at the same total estimate.
  bool diversification_known = false;
  double mean_escape_chunks_per_reset = 0;
  double p95_escape_chunks_per_reset = 0;
  double expected_reset_fraction = 0;  // share of wall time inside resets
  double expected_reset_seconds = 0;   // fraction * expected_wall_seconds

  [[nodiscard]] util::Json to_json() const;
};

class CostModel {
 public:
  /// Built-in calibration (currently: the Costas curve).
  CostModel();

  /// Price a resolve()d request. Budget caps tighten the estimate: a
  /// wall-clock timeout bounds the bill at k * timeout, an iteration cap
  /// at k * max_iterations / iterations_per_second.
  [[nodiscard]] CostEstimate estimate(const SolveRequest& resolved) const;

  /// Fit measured single-walker run times (seconds) and install the result
  /// as the calibration point for (problem, size), overriding any built-in
  /// value. Requires >= 2 samples (analysis::fit_shifted_exponential).
  void calibrate(const std::string& problem, int size, const std::vector<double>& run_seconds);

  /// Aggregate one clean solved run's diversification counters into the
  /// per-(problem, size) profile: the winner's escape chunks per reset feed
  /// a log histogram, and reset/wall seconds accumulate into the observed
  /// diversification fraction. No-op for errored or unsolved reports
  /// (winner_stats is meaningless there).
  void record_diversification(const SolveReport& report);

  /// Runs recorded into the (problem, size) diversification profile.
  [[nodiscard]] uint64_t diversification_samples(const std::string& problem, int size) const;

  /// Engine iteration rate used to convert max_iterations caps to seconds.
  void set_iterations_per_second(double rate) { iterations_per_second_ = rate; }
  [[nodiscard]] double iterations_per_second() const { return iterations_per_second_; }

 private:
  /// size -> single-walker run-time fit (seconds).
  using Curve = std::map<int, analysis::ShiftedExponential>;

  /// Per-instance diversification profile. The histogram holds escape
  /// chunks per reset (one sample per recorded run); the accumulators hold
  /// the observed reset-time share. Strictly per (problem, size) — reset
  /// behaviour does not extrapolate across sizes the way run time does, so
  /// an unseen size simply reports diversification_known = false.
  struct DiversificationProfile {
    util::LogHistogram escape_chunks{1.0, 1e9, 6};
    double reset_seconds = 0;
    double wall_seconds = 0;
    uint64_t resets = 0;
    uint64_t runs = 0;
  };

  [[nodiscard]] analysis::ShiftedExponential fit_for(const Curve& curve, int size) const;

  std::map<std::string, Curve> curves_;
  std::map<std::pair<std::string, int>, DiversificationProfile> diversification_;
  double iterations_per_second_ = 1.2e5;
};

}  // namespace cas::runtime
