// Shared reader for JSON spec objects with the runtime's fail-loudly
// contract: every key must be consumed, unknown keys throw naming the
// offender (the util::Flags behaviour, extended to JSON). One
// implementation for request specs, engine knobs, strategy knobs, and
// problem options.
#pragma once

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace cas::runtime {

class KnobReader {
 public:
  /// `what` prefixes every error, e.g. "engine 'as'" or "request".
  /// Null is accepted (no knobs given); any other non-object throws.
  KnobReader(const util::Json& obj, std::string what) : obj_(obj), what_(std::move(what)) {
    if (!obj.is_null() && !obj.is_object())
      throw std::invalid_argument(what_ + ": expected a JSON object");
  }

  /// Mark `key` consumed; returns its value or nullptr when absent.
  const util::Json* take(const std::string& key) {
    consumed_.push_back(key);
    return obj_.find(key);
  }

  // Typed convenience: overwrite `out` iff the key is present.
  void read(const std::string& key, int& out) {
    if (const auto* v = take(key)) out = static_cast<int>(v->as_int());
  }
  void read(const std::string& key, unsigned& out) {
    if (const auto* v = take(key)) out = static_cast<unsigned>(v->as_int());
  }
  void read(const std::string& key, uint64_t& out) {
    if (const auto* v = take(key)) out = static_cast<uint64_t>(v->as_int());
  }
  void read(const std::string& key, double& out) {
    if (const auto* v = take(key)) out = v->as_number();
  }
  void read(const std::string& key, bool& out) {
    if (const auto* v = take(key)) out = v->as_bool();
  }
  void read(const std::string& key, std::string& out) {
    if (const auto* v = take(key)) out = v->as_string();
  }

  /// Reject any key never taken.
  void finish() const {
    if (!obj_.is_object()) return;
    for (const auto& [k, _] : obj_.as_object()) {
      if (std::find(consumed_.begin(), consumed_.end(), k) == consumed_.end())
        throw std::invalid_argument(what_ + ": unknown key '" + k + "'");
    }
  }

 private:
  const util::Json& obj_;
  std::string what_;
  std::vector<std::string> consumed_;
};

}  // namespace cas::runtime
