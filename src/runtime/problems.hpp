// The problem registry: all seven CSP models (Costas plus the six side
// problems), each constructible by name and size from a SolveRequest, with
// its paper-tuned Adaptive Search defaults, an independent solution
// verifier where one exists, and type-erased walker factories the
// strategies consume.
//
// The entries hide the concrete model types: a registered problem exposes
//   * make_walker()            — a fresh, self-contained walker closure per
//                                {engine, config}; every walker invocation
//                                builds its own private problem replica,
//   * make_cooperative_walker  — blackboard-sharing walker (only for models
//                                whose full configuration is exportable),
//   * run_neighborhood         — the single-walk parallel engine (only for
//                                replicable models),
// so the strategy layer and SolverService never mention a model type.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/adaptive_search.hpp"
#include "core/problem.hpp"
#include "core/stats.hpp"
#include "par/cooperative.hpp"
#include "runtime/registry.hpp"
#include "runtime/spec.hpp"

namespace cas::runtime {

/// A multi-walk walker: runs one complete search with the given per-walker
/// seed, polling `stop` (the first-win cancellation) every probe interval.
using Walker = std::function<core::RunStats(int walker_id, uint64_t seed, core::StopToken stop)>;

/// Everything needed to reconstruct a mid-walk Adaptive Search walker in
/// another process: the engine state (RNG, tabu, counters — see
/// core::AsWalkState) plus the problem's current configuration by position.
/// The checkpoint layer serializes this; restore() + advance() continues
/// the original trajectory exactly.
struct WalkSnapshot {
  std::vector<int> config;  // problem value at each position
  core::AsWalkState engine;
};

/// A walk that can be paused at an iteration boundary, snapshotted, and
/// resumed later — on this instance or a freshly built one in a different
/// process. Owns a private problem replica. Adaptive Search only.
class ResumableWalk {
 public:
  virtual ~ResumableWalk() = default;
  /// Start a fresh walk (randomize + reset counters). Call this or
  /// restore() before the first advance().
  virtual void begin() = 0;
  /// Run up to `iter_budget` more iterations (0 = no segment cap; the
  /// engine's own budget/stop rules apply either way). Returns solved.
  virtual bool advance(uint64_t iter_budget, core::StopToken stop) = 0;
  [[nodiscard]] virtual WalkSnapshot snapshot() const = 0;
  virtual void restore(const WalkSnapshot& s) = 0;
  [[nodiscard]] virtual const core::RunStats& stats() const = 0;
};

struct ProblemEntry {
  std::string description;
  int default_size = 0;
  /// Round a requested size up to the nearest feasible instance (Langford's
  /// n = 0,3 mod 4; partition's multiples of 4). Null = any size >= min.
  std::function<int(int)> adjust_size;

  /// Build a walker for the request's {engine, engine_config}. Throws on
  /// unknown engines or malformed knobs. The returned closure is safe to
  /// invoke concurrently from many threads.
  std::function<Walker(const SolveRequest& req)> make_walker;

  /// Cooperative (blackboard) multi-walk, delegating to
  /// par::run_multiwalk_cooperative — null when the model cannot export
  /// its configuration. Adaptive Search only, like the par runner.
  std::function<par::MultiWalkResult(const SolveRequest& req, double adopt_probability,
                                     const par::MultiWalkOptions& exec, par::Blackboard* board)>
      run_cooperative;

  /// Single-walk parallel neighborhood search — null when the model is not
  /// replicable. `threads` replicas scan the swap neighborhood.
  std::function<core::RunStats(const SolveRequest& req, int threads, core::StopToken stop)>
      run_neighborhood;

  /// Build a factory of pausable walks for checkpointed/elastic execution:
  /// each call with a per-walker seed yields a self-contained ResumableWalk
  /// (private problem replica) that advances in segments, snapshots, and
  /// restores. Throws unless req.engine == "as".
  std::function<std::function<std::unique_ptr<ResumableWalk>(uint64_t seed)>(
      const SolveRequest& req)>
      make_resumable_walker;

  /// Independent verifier for a reported solution (presentation values as
  /// produced by RunStats::solution). Null = no checker beyond cost == 0.
  std::function<bool(const std::vector<int>& solution)> check;
};

/// The string-keyed problem catalog: costas, queens, all-interval,
/// magic-square, langford, partition, alpha.
const Registry<ProblemEntry>& problem_registry();

}  // namespace cas::runtime
