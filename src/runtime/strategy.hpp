// The Strategy abstraction: one SolveRequest -> SolveReport contract over
// every parallel execution scheme the par layer implements —
//
//   sequential    one walker, no parallelism (the paper's Table I setting)
//   multiwalk     independent multi-walk threads, first win cancels the rest
//                 (paper Sec. V-A); honours num_threads oversubscription,
//                 a shared executor, and the wall-clock deadline
//   mpi           the paper's OpenMPI control flow on the in-process
//                 communicator (winner broadcasts SOLUTION_FOUND)
//   collective    mpi plus the allreduce/gather statistics epilogue
//   portfolio     heterogeneous engines racing on the same instance
//   cooperative   dependent multi-walk sharing a best-configuration
//                 blackboard (the paper's Sec. VI future work)
//   neighborhood  single-walk parallelism: replicas scan the move
//                 neighborhood of ONE walk (the other Sec. V branch)
//
// Strategies are registry entries, so `cas_run --strategy=...` and the
// SolverService pick them by name at runtime; the templated par runners sit
// beneath this layer and are not duplicated.
#pragma once

#include "par/thread_pool.hpp"
#include "runtime/registry.hpp"
#include "runtime/spec.hpp"

namespace cas::runtime {

/// Execution environment handed to a strategy by the caller. The
/// multi-walk-based strategies (sequential, multiwalk, portfolio,
/// cooperative) run their walkers on `executor` when provided (the
/// SolverService's shared pool) instead of spawning fresh threads. The
/// communicator/replica strategies (mpi, collective, neighborhood)
/// inherently own one thread per rank/replica: they ignore the executor
/// and reject a num_threads cap rather than silently dishonour it.
struct StrategyContext {
  par::ThreadPool* executor = nullptr;
};

struct StrategyInfo {
  std::string description;
  /// Executes the (already resolved) request; fills everything in `report`
  /// except `request`, which the caller has set. Throws on malformed
  /// strategy_config.
  std::function<void(const SolveRequest& req, const StrategyContext& ctx, SolveReport& report)>
      run;
};

/// The string-keyed strategy catalog.
const Registry<StrategyInfo>& strategy_registry();

/// Validate a request and fill derived defaults: problem/engine/strategy
/// names must exist, the size is defaulted and rounded to a feasible
/// instance, walkers >= 1. Throws std::invalid_argument with a message
/// naming the valid alternatives.
SolveRequest resolve(SolveRequest req);

/// Resolve and execute one request. Never throws: validation and execution
/// failures come back in SolveReport::error.
SolveReport solve(const SolveRequest& req, const StrategyContext& ctx = {});

}  // namespace cas::runtime
