#include "runtime/strategy.hpp"

#include <memory>
#include <random>
#include <stdexcept>

#include "par/cooperative.hpp"
#include "par/multiwalk.hpp"
#include "runtime/engines.hpp"
#include "runtime/knobs.hpp"
#include "runtime/problems.hpp"
#include "util/timer.hpp"

namespace cas::runtime {

namespace {

/// Wrap a walker so its stop token also fires at a shared wall-clock
/// deadline — used by the strategies whose underlying runner has no
/// timeout knob of its own (mpi, collective). The timer starts when the
/// wrapper is built, i.e. at strategy entry.
Walker with_deadline(Walker inner, double timeout_seconds) {
  if (timeout_seconds <= 0) return inner;
  auto timer = std::make_shared<util::WallTimer>();
  return [inner = std::move(inner), timer, timeout_seconds](int id, uint64_t seed,
                                                            core::StopToken outer) {
    const std::function<bool()> combined = [timer, timeout_seconds, outer] {
      return outer.stop_requested() || timer->seconds() >= timeout_seconds;
    };
    return inner(id, seed, core::StopToken(&combined));
  };
}

par::MultiWalkOptions multiwalk_options(const SolveRequest& req, const StrategyContext& ctx) {
  par::MultiWalkOptions opts;
  opts.num_threads = req.num_threads;
  opts.executor = ctx.executor;
  opts.timeout_seconds = req.timeout_seconds;
  return opts;
}

void fill_from_result(SolveReport& report, const par::MultiWalkResult& res,
                      const ProblemEntry& entry) {
  report.solved = res.solved;
  report.winner = res.winner;
  report.wall_seconds = res.wall_seconds;
  report.total_iterations = res.total_iterations();
  report.winner_stats = res.winner_stats;
  report.walkers_run = 0;
  for (const auto& st : res.walker_stats)
    if (st.iterations > 0 || st.solved) ++report.walkers_run;
  if (res.solved && entry.check != nullptr) {
    report.checked = true;
    report.check_passed = entry.check(res.winner_stats.solution);
  }
}

const ProblemEntry& entry_of(const SolveRequest& req) {
  return problem_registry().at(req.problem, "problem");
}

/// Spec reader over strategy_config, labelled for this strategy's errors.
KnobReader strategy_knobs(const SolveRequest& req) {
  return KnobReader(req.strategy_config, "strategy '" + req.strategy + "'");
}

/// The communicator-backed and replica-backed runners manage their own
/// threads (one per rank / replica); a num_threads cap cannot be honoured
/// there, and silently ignoring an accepted knob breaks the runtime's
/// fail-loudly contract. The shared executor likewise cannot carry their
/// walkers — that is recorded visibly in the report's extras instead of
/// erroring, because batches may legitimately mix these strategies in.
void reject_num_threads(const SolveRequest& req) {
  if (req.num_threads != 0)
    throw std::invalid_argument("strategy '" + req.strategy +
                                "' runs one thread per walker; num_threads is not supported");
}

void note_strategy_owned_threads(const StrategyContext& ctx, SolveReport& report) {
  if (ctx.executor == nullptr) return;
  if (report.extras.is_null()) report.extras = util::Json::object();
  report.extras["thread_ownership"] =
      "strategy-managed: one thread per rank/replica (shared executor not used)";
}

void run_multiwalk_strategy(const SolveRequest& req, const StrategyContext& ctx,
                            SolveReport& report) {
  strategy_knobs(req).finish();
  const auto& entry = entry_of(req);
  const auto res =
      par::run_multiwalk(req.walkers, req.seed, entry.make_walker(req), multiwalk_options(req, ctx));
  fill_from_result(report, res, entry);
}

void run_mpi_strategy(const SolveRequest& req, const StrategyContext& ctx,
                      SolveReport& report) {
  strategy_knobs(req).finish();
  reject_num_threads(req);
  const auto& entry = entry_of(req);
  const auto res = par::run_multiwalk_mpi_style(
      req.walkers, req.seed, with_deadline(entry.make_walker(req), req.timeout_seconds));
  fill_from_result(report, res, entry);
  note_strategy_owned_threads(ctx, report);
}

void run_collective_strategy(const SolveRequest& req, const StrategyContext& ctx,
                             SolveReport& report) {
  strategy_knobs(req).finish();
  reject_num_threads(req);
  const auto& entry = entry_of(req);
  const auto [res, agg] = par::run_multiwalk_collective(
      req.walkers, req.seed, with_deadline(entry.make_walker(req), req.timeout_seconds));
  fill_from_result(report, res, entry);
  util::Json extras = util::Json::object();
  extras["allreduce_total_iterations"] = agg.total_iterations;
  extras["allreduce_max_iterations"] = agg.max_iterations;
  extras["allreduce_min_iterations"] = agg.min_iterations;
  extras["solved_ranks"] = agg.solved_ranks;
  report.extras = std::move(extras);
  note_strategy_owned_threads(ctx, report);
}

void run_portfolio_strategy(const SolveRequest& req, const StrategyContext& ctx,
                            SolveReport& report) {
  // The portfolio's engine mix comes exclusively from strategy_config; a
  // non-default engine field would be silently ignored, so reject it.
  if (req.engine != "as")
    throw std::invalid_argument(
        "strategy 'portfolio' selects engines via strategy_config {\"engines\": [...]}; "
        "the request's engine field is not used");
  // Default mix: the four engines of the par::run_portfolio ablation.
  std::vector<std::string> engines{"as", "tabu", "dialectic", "sa"};
  KnobReader knobs = strategy_knobs(req);
  if (const auto* j = knobs.take("engines")) {
    engines.clear();
    for (const auto& e : j->as_array()) engines.push_back(e.as_string());
    if (engines.empty())
      throw std::invalid_argument("portfolio: 'engines' must name at least one engine");
  }
  knobs.finish();
  const auto& entry = entry_of(req);
  // One walker factory per portfolio member; walker id picks round-robin.
  std::vector<Walker> members;
  members.reserve(engines.size());
  for (const auto& engine : engines) {
    SolveRequest member = req;
    member.engine = engine;
    engine_catalog().at(engine, "engine");  // fail before any thread starts
    members.push_back(entry.make_walker(member));
  }
  const auto res = par::run_multiwalk(
      req.walkers, req.seed,
      [&](int id, uint64_t seed, core::StopToken stop) {
        return members[static_cast<size_t>(id) % members.size()](id, seed, stop);
      },
      multiwalk_options(req, ctx));
  fill_from_result(report, res, entry);
  util::Json extras = util::Json::object();
  if (res.winner >= 0)
    extras["winner_engine"] = engines[static_cast<size_t>(res.winner) % engines.size()];
  report.extras = std::move(extras);
}

void run_cooperative_strategy(const SolveRequest& req, const StrategyContext& ctx,
                              SolveReport& report) {
  double adopt = 0.25;
  KnobReader knobs = strategy_knobs(req);
  knobs.read("adopt_probability", adopt);
  knobs.finish();
  const auto& entry = entry_of(req);
  if (entry.run_cooperative == nullptr)
    throw std::invalid_argument("problem '" + req.problem +
                                "' cannot share configurations (no cooperative walker)");
  par::Blackboard board;
  const auto res = entry.run_cooperative(req, adopt, multiwalk_options(req, ctx), &board);
  fill_from_result(report, res, entry);
  util::Json extras = util::Json::object();
  extras["blackboard_offers"] = board.offers();
  extras["blackboard_improvements"] = board.improvements();
  report.extras = std::move(extras);
}

void run_neighborhood_strategy(const SolveRequest& req, const StrategyContext& ctx,
                               SolveReport& report) {
  strategy_knobs(req).finish();
  reject_num_threads(req);
  const auto& entry = entry_of(req);
  if (entry.run_neighborhood == nullptr)
    throw std::invalid_argument("problem '" + req.problem +
                                "' is not replicable (no neighborhood walker)");
  // `walkers` is the scan width: replica threads inside the single walk.
  util::WallTimer timer;
  core::RunStats st;
  if (req.timeout_seconds > 0) {
    const std::function<bool()> deadline = [&] {
      return timer.seconds() >= req.timeout_seconds;
    };
    st = entry.run_neighborhood(req, req.walkers, core::StopToken(&deadline));
  } else {
    st = entry.run_neighborhood(req, req.walkers, core::StopToken());
  }
  report.solved = st.solved;
  report.winner = st.solved ? 0 : -1;
  report.wall_seconds = st.wall_seconds;
  report.total_iterations = st.iterations;
  report.walkers_run = 1;
  report.winner_stats = std::move(st);
  if (report.solved && entry.check != nullptr) {
    report.checked = true;
    report.check_passed = entry.check(report.winner_stats.solution);
  }
  note_strategy_owned_threads(ctx, report);
}

}  // namespace

const Registry<StrategyInfo>& strategy_registry() {
  static const Registry<StrategyInfo> registry = [] {
    Registry<StrategyInfo> r;
    // resolve() pins walkers to 1 for "sequential", so the echoed request
    // always describes what actually ran; the execution is plain multiwalk.
    r.add("sequential", {"one walker, no parallelism (paper Table I setting)",
                         [](const SolveRequest& req, const StrategyContext& ctx,
                            SolveReport& rep) { run_multiwalk_strategy(req, ctx, rep); }});
    r.add("multiwalk", {"independent multi-walk, first win cancels (paper Sec. V-A)",
                        [](const SolveRequest& req, const StrategyContext& ctx,
                           SolveReport& rep) { run_multiwalk_strategy(req, ctx, rep); }});
    r.add("mpi", {"the paper's OpenMPI control flow on the in-process communicator",
                  [](const SolveRequest& req, const StrategyContext& ctx, SolveReport& rep) {
                    run_mpi_strategy(req, ctx, rep);
                  }});
    r.add("collective", {"mpi plus allreduce/gather statistics epilogue",
                         [](const SolveRequest& req, const StrategyContext& ctx,
                            SolveReport& rep) { run_collective_strategy(req, ctx, rep); }});
    r.add("portfolio", {"heterogeneous engines racing on one instance",
                        [](const SolveRequest& req, const StrategyContext& ctx,
                           SolveReport& rep) { run_portfolio_strategy(req, ctx, rep); }});
    r.add("cooperative", {"dependent multi-walk over a shared blackboard (Sec. VI)",
                          [](const SolveRequest& req, const StrategyContext& ctx,
                             SolveReport& rep) { run_cooperative_strategy(req, ctx, rep); }});
    r.add("neighborhood", {"single-walk parallel neighborhood scan (other Sec. V branch)",
                           [](const SolveRequest& req, const StrategyContext& ctx,
                              SolveReport& rep) { run_neighborhood_strategy(req, ctx, rep); }});
    return r;
  }();
  return registry;
}

SolveRequest resolve(SolveRequest req) {
  const auto& entry = problem_registry().at(req.problem, "problem");
  engine_catalog().at(req.engine, "engine").validate(
      [&] {
        EngineParams p;
        p.overrides = req.engine_config;
        return p;
      }());
  strategy_registry().at(req.strategy, "strategy");
  if (req.size <= 0) req.size = entry.default_size;
  if (entry.adjust_size != nullptr) req.size = entry.adjust_size(req.size);
  if (req.strategy == "sequential") req.walkers = 1;
  if (req.walkers < 1) throw std::invalid_argument("walkers must be >= 1");
  if (req.timeout_seconds < 0) throw std::invalid_argument("timeout_seconds must be >= 0");
  return req;
}

namespace {

/// Fresh nonzero seed for stochastic (seed = 0) requests. Drawn per
/// execution — NOT in resolve(), so a request's canonical key (computed on
/// the resolved form) still reads seed 0 and identical stochastic requests
/// coalesce under dedup while bypassing the report cache.
uint64_t draw_seed() {
  std::random_device rd;
  uint64_t s = 0;
  while (s == 0) s = (static_cast<uint64_t>(rd()) << 32) | rd();
  return s;
}

}  // namespace

SolveReport solve(const SolveRequest& req, const StrategyContext& ctx) {
  SolveReport report;
  report.request = req;
  try {
    report.request = resolve(req);
    // The echoed request carries the drawn seed, so any individual
    // stochastic run stays replayable as a deterministic request.
    if (report.request.seed == 0) report.request.seed = draw_seed();
    const auto& strategy = strategy_registry().at(report.request.strategy, "strategy");
    strategy.run(report.request, ctx, report);
  } catch (const std::exception& e) {
    report.error = e.what();
  }
  return report;
}

}  // namespace cas::runtime
