// The solver runtime's wire types: a declarative SolveRequest (what to
// solve, with what engine, under which parallel strategy) and the
// SolveReport every strategy produces. Both round-trip through util::Json,
// which is what makes the cas_run CLI and the SolverService batch API
// driveable from a scenario file with no recompilation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/stats.hpp"
#include "util/json.hpp"

namespace cas::runtime {

struct SolveRequest {
  /// Optional label echoed in the report (batch bookkeeping).
  std::string id;

  // --- problem selection ---
  std::string problem = "costas";
  /// Instance size in the problem's natural unit (Costas order, queens
  /// board, Langford order, ...). 0 = the problem's default; sizes that
  /// hit an infeasible instance (Langford, partition) are rounded up to
  /// the nearest valid one.
  int size = 0;
  /// Problem-specific options, e.g. {"err": "unit", "chang": false} for
  /// Costas. Null/absent = model defaults.
  util::Json problem_config;

  // --- engine selection ---
  std::string engine = "as";
  /// Engine knob overrides on top of the problem's tuned defaults, e.g.
  /// {"plateau_probability": 0.8}. Unknown keys are an error.
  util::Json engine_config;

  // --- parallel strategy ---
  std::string strategy = "multiwalk";
  int walkers = 4;
  /// Cap on concurrent OS threads (0 = one per walker / executor width).
  /// Only meaningful for the multi-walk-based strategies; mpi, collective,
  /// and neighborhood own one thread per rank/replica and reject it.
  unsigned num_threads = 0;
  /// Strategy-specific knobs, e.g. {"adopt_probability": 0.25} for
  /// cooperative or {"engines": ["as", "tabu"]} for portfolio.
  util::Json strategy_config;

  // --- budget ---
  /// Master seed (per-walker seeds derive from it). Seed 0 marks the
  /// request STOCHASTIC: every execution draws a fresh seed (the report
  /// echoes the drawn one, so any individual run stays replayable). The
  /// SolverService caches only deterministic-seed requests; stochastic
  /// ones are dedup-only.
  uint64_t seed = 2012;
  double timeout_seconds = 0.0;       // 0 = unlimited
  uint64_t max_iterations = 0;        // per walker; 0 = unlimited
  uint64_t probe_interval = 0;        // 0 = engine default

  [[nodiscard]] util::Json to_json() const;
  /// Build from a spec object; unknown keys are an error (typos in
  /// scenario files fail loudly, mirroring util::Flags).
  static SolveRequest from_json(const util::Json& j);

  /// Canonical serialization for request identity (the SolverService's
  /// dedup/cache key). Unlike to_json, every field is emitted explicitly —
  /// absent-vs-default spellings collapse — and `id` is EXCLUDED: it is a
  /// bookkeeping label, not part of the work, so two requests differing
  /// only in id are the same computation. Configs are canonicalized (null
  /// members dropped; empty objects treated as absent). Call on a
  /// resolve()d request so size defaults are normalized too.
  [[nodiscard]] util::Json canonical_json() const;
  /// `canonical_json().dump(0)` — hashes/compares equal iff the requests
  /// describe identical work.
  [[nodiscard]] std::string canonical_key() const;
};

struct SolveReport {
  SolveRequest request;  // with defaults resolved (size filled in, ...)

  bool solved = false;
  int winner = -1;               // walker id of the first solution (-1: none)
  double wall_seconds = 0.0;     // time until the winner finished
  uint64_t total_iterations = 0; // summed over all walkers
  core::RunStats winner_stats;   // meaningful iff solved
  int walkers_run = 0;           // walkers that actually executed

  /// Solution checked against the problem's independent verifier (e.g.
  /// costas::is_costas); `checked` is false when no verifier exists.
  bool checked = false;
  bool check_passed = false;

  /// Strategy-specific extras (e.g. collective aggregate stats, blackboard
  /// improvement counts). Null when the strategy has none.
  util::Json extras;

  /// Serving provenance, stamped by the SolverService: "executed" (a real
  /// strategy run), "dedup" (coalesced onto a concurrent identical
  /// request's execution), "cache" (served from the report cache), or
  /// "rejected" (denied admission by the cost model). Empty when the
  /// report came from a bare runtime::solve call.
  std::string served_by;

  /// Non-empty when the request failed validation or execution; all other
  /// fields are then meaningless.
  std::string error;

  [[nodiscard]] util::Json to_json() const;
};

}  // namespace cas::runtime
