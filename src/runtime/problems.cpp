#include "runtime/problems.hpp"

#include <cctype>
#include <cstdlib>
#include <set>
#include <stdexcept>

#include "costas/checker.hpp"
#include "costas/model.hpp"
#include "par/neighborhood.hpp"
#include "problems/all_interval.hpp"
#include "problems/alpha.hpp"
#include "problems/langford.hpp"
#include "problems/magic_square.hpp"
#include "problems/partition.hpp"
#include "problems/queens.hpp"
#include "runtime/engines.hpp"
#include "runtime/knobs.hpp"

namespace cas::runtime {

namespace {

EngineParams engine_params_for(const SolveRequest& req, core::AsConfig base_as) {
  EngineParams p;
  p.overrides = req.engine_config;
  p.base_as = base_as;
  p.probe_interval = req.probe_interval;
  p.max_iterations = req.max_iterations;
  return p;
}

void require_no_problem_config(const SolveRequest& req) {
  if (req.problem_config.is_null()) return;
  if (req.problem_config.is_object() && req.problem_config.size() == 0) return;
  throw std::invalid_argument("problem '" + req.problem + "' takes no problem_config");
}

/// The typed half of a registry entry: how to build the model and which
/// tuned Adaptive Search defaults it gets (the per-problem tuning the
/// csp_gallery example always hardcoded).
template <typename P>
struct Binding {
  std::function<P(const SolveRequest&)> make;
  std::function<core::AsConfig(const SolveRequest&)> base_as;
};

/// The type-erased pausable walk: a private replica plus an Adaptive Search
/// engine bound to it. Non-movable (the engine holds a reference into
/// problem_), so it always lives behind the factory's unique_ptr.
template <typename P>
class AsResumableWalk final : public ResumableWalk {
 public:
  AsResumableWalk(P problem, core::AsConfig cfg)
      : problem_(std::move(problem)), engine_(problem_, cfg) {}

  void begin() override { engine_.begin_walk(); }

  bool advance(uint64_t iter_budget, core::StopToken stop) override {
    return engine_.advance_walk(iter_budget, stop);
  }

  [[nodiscard]] WalkSnapshot snapshot() const override {
    WalkSnapshot s;
    const int n = problem_.size();
    s.config.resize(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) s.config[static_cast<size_t>(i)] = problem_.value(i);
    engine_.export_walk(s.engine);
    return s;
  }

  void restore(const WalkSnapshot& s) override {
    const int n = problem_.size();
    if (static_cast<int>(s.config.size()) != n)
      throw std::invalid_argument("walk snapshot does not match the instance size");
    // Realign the replica's configuration to the snapshot through
    // apply_swap so the model's incremental bookkeeping stays valid. Every
    // registered model is a permutation of distinct values, so a
    // selection pass settles each position exactly once.
    for (int i = 0; i < n; ++i) {
      if (problem_.value(i) == s.config[static_cast<size_t>(i)]) continue;
      int j = i + 1;
      while (j < n && problem_.value(j) != s.config[static_cast<size_t>(i)]) ++j;
      if (j >= n)
        throw std::invalid_argument("walk snapshot is not a permutation of this instance");
      problem_.apply_swap(i, j);
    }
    engine_.import_walk(s.engine);
  }

  [[nodiscard]] const core::RunStats& stats() const override { return engine_.walk_stats(); }

 private:
  P problem_;
  core::AdaptiveSearch<P> engine_;
};

template <typename P>
ProblemEntry entry_for(std::string description, int default_size,
                       std::function<int(int)> adjust_size, Binding<P> b,
                       std::function<bool(const std::vector<int>&)> check) {
  ProblemEntry e;
  e.description = std::move(description);
  e.default_size = default_size;
  e.adjust_size = std::move(adjust_size);
  e.check = std::move(check);

  e.make_walker = [b](const SolveRequest& req) -> Walker {
    const auto& factory = engine_table<P>().at(req.engine, "engine");
    auto runner = factory(engine_params_for(req, b.base_as(req)));
    b.make(req);  // eager probe: bad sizes/options throw HERE, on the
                  // caller's thread, never inside a walker thread
    return [b, req, runner](int /*walker_id*/, uint64_t seed, core::StopToken stop) {
      P problem = b.make(req);  // private replica per walker
      return runner(problem, seed, stop);
    };
  };

  if constexpr (par::SharableProblem<P>) {
    e.run_cooperative = [b](const SolveRequest& req, double adopt_probability,
                            const par::MultiWalkOptions& exec, par::Blackboard* board) {
      if (req.engine != "as")
        throw std::invalid_argument(
            "strategy 'cooperative' runs Adaptive Search walkers; set engine to 'as'");
      const auto base_cfg = make_as_config(engine_params_for(req, b.base_as(req)));
      b.make(req);  // eager probe, as in make_walker
      par::CooperativeOptions opts;
      opts.adopt_probability = adopt_probability;
      opts.num_threads = exec.num_threads;
      opts.executor = exec.executor;
      opts.timeout_seconds = exec.timeout_seconds;
      opts.external_stop = exec.external_stop;
      return par::run_multiwalk_cooperative<P>(
          req.walkers, req.seed, [b, req](int /*walker_id*/) { return b.make(req); },
          [base_cfg](int /*walker_id*/, uint64_t seed) {
            auto cfg = base_cfg;
            cfg.seed = seed;
            return cfg;
          },
          opts, board);
    };
  }

  e.make_resumable_walker = [b](const SolveRequest& req) {
    if (req.engine != "as")
      throw std::invalid_argument(
          "resumable walks run Adaptive Search walkers; set engine to 'as'");
    const auto base_cfg = make_as_config(engine_params_for(req, b.base_as(req)));
    b.make(req);  // eager probe, as in make_walker
    return [b, req, base_cfg](uint64_t seed) -> std::unique_ptr<ResumableWalk> {
      auto cfg = base_cfg;
      cfg.seed = seed;
      return std::make_unique<AsResumableWalk<P>>(b.make(req), cfg);
    };
  };

  if constexpr (par::ReplicableProblem<P>) {
    e.run_neighborhood = [b](const SolveRequest& req, int threads, core::StopToken stop) {
      if (req.engine != "as")
        throw std::invalid_argument(
            "strategy 'neighborhood' parallelizes the Adaptive Search scan; set engine to 'as'");
      P problem = b.make(req);
      auto cfg = make_as_config(engine_params_for(req, b.base_as(req)));
      cfg.seed = req.seed;
      par::ParallelNeighborhoodSearch<P> engine(problem, cfg, threads);
      return engine.solve(stop);
    };
  }

  return e;
}

// --- independent solution verifiers (presentation values) ---

bool check_queens(const std::vector<int>& sol) {
  const int n = static_cast<int>(sol.size());
  std::set<int> rows, up, down;
  for (int i = 0; i < n; ++i) {
    if (!rows.insert(sol[static_cast<size_t>(i)]).second) return false;
    if (!up.insert(i + sol[static_cast<size_t>(i)]).second) return false;
    if (!down.insert(i - sol[static_cast<size_t>(i)]).second) return false;
  }
  return true;
}

bool check_all_interval(const std::vector<int>& sol) {
  const int n = static_cast<int>(sol.size());
  std::set<int> values(sol.begin(), sol.end());
  if (static_cast<int>(values.size()) != n || *values.begin() != 0 ||
      *values.rbegin() != n - 1)
    return false;
  std::set<int> diffs;
  for (int i = 0; i + 1 < n; ++i) {
    if (!diffs.insert(std::abs(sol[static_cast<size_t>(i + 1)] - sol[static_cast<size_t>(i)]))
             .second)
      return false;
  }
  return true;
}

bool check_langford(const std::vector<int>& sol) {
  // sol[i] = the number (1..n) occupying slot i of 2n slots; the two copies
  // of k must sit k + 1 slots apart.
  const int slots = static_cast<int>(sol.size());
  const int n = slots / 2;
  std::vector<int> first(static_cast<size_t>(n + 1), -1);
  std::vector<int> count(static_cast<size_t>(n + 1), 0);
  for (int i = 0; i < slots; ++i) {
    const int k = sol[static_cast<size_t>(i)];
    if (k < 1 || k > n) return false;
    if (first[static_cast<size_t>(k)] < 0)
      first[static_cast<size_t>(k)] = i;
    else if (i - first[static_cast<size_t>(k)] != k + 1)
      return false;
    ++count[static_cast<size_t>(k)];
  }
  for (int k = 1; k <= n; ++k)
    if (count[static_cast<size_t>(k)] != 2) return false;
  return true;
}

bool check_magic_square(const std::vector<int>& sol) {
  int order = 0;
  while (order * order < static_cast<int>(sol.size())) ++order;
  if (order * order != static_cast<int>(sol.size())) return false;
  const int n = order * order;
  std::set<int> values(sol.begin(), sol.end());
  if (static_cast<int>(values.size()) != n || *values.begin() != 1 || *values.rbegin() != n)
    return false;
  const long long target = static_cast<long long>(order) * (n + 1) / 2;
  const auto cell = [&](int r, int c) {
    return static_cast<long long>(sol[static_cast<size_t>(r * order + c)]);
  };
  long long d1 = 0, d2 = 0;
  for (int r = 0; r < order; ++r) {
    long long row = 0, col = 0;
    for (int c = 0; c < order; ++c) {
      row += cell(r, c);
      col += cell(c, r);
    }
    if (row != target || col != target) return false;
    d1 += cell(r, r);
    d2 += cell(r, order - 1 - r);
  }
  return d1 == target && d2 == target;
}

bool check_partition(const std::vector<int>& sol) {
  const int n = static_cast<int>(sol.size());
  std::set<int> values(sol.begin(), sol.end());
  if (static_cast<int>(values.size()) != n || *values.begin() != 1 || *values.rbegin() != n)
    return false;
  long long sum = 0, sq = 0;
  for (int i = 0; i < n / 2; ++i) {
    const long long v = sol[static_cast<size_t>(i)];
    const long long w = sol[static_cast<size_t>(i + n / 2)];
    sum += v - w;
    sq += v * v - w * w;
  }
  return sum == 0 && sq == 0;
}

bool check_alpha(const std::vector<int>& sol) {
  // sol[i] = the number assigned to letter 'A' + i; a valid assignment is
  // a permutation of 1..26 satisfying every equation of the classic
  // twenty-equation instance.
  if (sol.size() != 26) return false;
  std::set<int> values(sol.begin(), sol.end());
  if (values.size() != 26 || *values.begin() != 1 || *values.rbegin() != 26) return false;
  for (const auto& eq : problems::AlphaProblem::default_equations()) {
    long long sum = 0;
    for (char c : eq.word) {
      const int idx = std::toupper(static_cast<unsigned char>(c)) - 'A';
      if (idx < 0 || idx >= 26) return false;
      sum += sol[static_cast<size_t>(idx)];
    }
    if (sum != eq.target) return false;
  }
  return true;
}

costas::CostasOptions costas_options_from(const SolveRequest& req) {
  costas::CostasOptions opts;
  KnobReader k(req.problem_config, "costas problem_config");
  if (const auto* v = k.take("err")) {
    const std::string& e = v->as_string();
    if (e == "unit")
      opts.err = costas::ErrFunction::kUnit;
    else if (e == "quadratic")
      opts.err = costas::ErrFunction::kQuadratic;
    else
      throw std::invalid_argument("costas err: expected 'unit' or 'quadratic'");
  }
  k.read("chang", opts.use_chang);
  k.finish();
  return opts;
}

}  // namespace

const Registry<ProblemEntry>& problem_registry() {
  static const Registry<ProblemEntry> registry = [] {
    Registry<ProblemEntry> r;

    r.add("costas",
          entry_for<costas::CostasProblem>(
              "Costas Array Problem (the paper's target; tuned model of Sec. IV)", 14,
              [](int n) { return std::max(1, n); },
              {[](const SolveRequest& req) {
                 return costas::CostasProblem(req.size, costas_options_from(req));
               },
               [](const SolveRequest& req) { return costas::recommended_config(req.size, 0); }},
              [](const std::vector<int>& sol) { return costas::is_costas(sol); }));

    r.add("queens", entry_for<problems::QueensProblem>(
                        "N-Queens as a permutation problem (rows fixed, diagonals free)", 100,
                        [](int n) { return std::max(1, n); },
                        {[](const SolveRequest& req) {
                           require_no_problem_config(req);
                           return problems::QueensProblem(req.size);
                         },
                         [](const SolveRequest&) {
                           core::AsConfig cfg;
                           cfg.tabu_tenure = 4;
                           cfg.reset_limit = 4;
                           cfg.reset_fraction = 0.05;
                           return cfg;
                         }},
                        check_queens));

    r.add("all-interval", entry_for<problems::AllIntervalProblem>(
                              "All-Interval Series (CSPLib prob007)", 14,
                              [](int n) { return std::max(2, n); },
                              {[](const SolveRequest& req) {
                                 require_no_problem_config(req);
                                 return problems::AllIntervalProblem(req.size);
                               },
                               [](const SolveRequest&) {
                                 core::AsConfig cfg;
                                 cfg.tabu_tenure = 3;
                                 cfg.reset_limit = 2;
                                 cfg.reset_fraction = 0.15;
                                 cfg.plateau_probability = 0.5;
                                 return cfg;
                               }},
                              check_all_interval));

    r.add("magic-square", entry_for<problems::MagicSquareProblem>(
                              "Magic Square (CSPLib prob019); size = the order", 5,
                              [](int n) { return std::max(3, n); },
                              {[](const SolveRequest& req) {
                                 require_no_problem_config(req);
                                 return problems::MagicSquareProblem(req.size);
                               },
                               [](const SolveRequest&) {
                                 core::AsConfig cfg;
                                 cfg.tabu_tenure = 5;
                                 cfg.reset_limit = 3;
                                 cfg.reset_fraction = 0.1;
                                 cfg.plateau_probability = 0.93;
                                 return cfg;
                               }},
                              check_magic_square));

    r.add("langford",
          entry_for<problems::LangfordProblem>(
              "Langford pairing L(2,n); size rounded up to n = 0 or 3 (mod 4)", 16,
              [](int n) {
                n = std::max(3, n);
                while (!problems::LangfordProblem::solvable(n)) ++n;
                return n;
              },
              {[](const SolveRequest& req) {
                 require_no_problem_config(req);
                 return problems::LangfordProblem(req.size);
               },
               [](const SolveRequest&) { return core::AsConfig{}; }},
              check_langford));

    r.add("partition",
          entry_for<problems::PartitionProblem>(
              "Number partitioning (equal sums and sums of squares); size rounded up to a "
              "multiple of 4",
              40,
              [](int n) {
                n = std::max(4, n);
                return n % 4 == 0 ? n : n + (4 - n % 4);
              },
              {[](const SolveRequest& req) {
                 require_no_problem_config(req);
                 return problems::PartitionProblem(req.size);
               },
               [](const SolveRequest&) { return core::AsConfig{}; }},
              check_partition));

    r.add("alpha", entry_for<problems::AlphaProblem>(
                       "The alpha cryptarithm (26 letters, 20 equations); size is fixed", 26,
                       [](int) { return 26; },
                       {[](const SolveRequest& req) {
                          require_no_problem_config(req);
                          return problems::AlphaProblem();
                        },
                        [](const SolveRequest&) {
                          return problems::AlphaProblem::recommended_config(0);
                        }},
                       check_alpha));

    return r;
  }();
  return registry;
}

}  // namespace cas::runtime
