// String-keyed registry — the shared building block of the solver runtime.
// Problems, engines, and strategies are all looked up by name so that a
// {problem, engine, strategy} triple is constructible from pure data (a
// scenario spec), never from compile-time wiring.
//
// Registries are built once (function-local statics in the respective
// modules) and read-only afterwards, so lookups are lock-free.
#pragma once

#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace cas::runtime {

template <typename Value>
class Registry {
 public:
  /// Register `value` under `key`. Duplicate keys are a programming error.
  Registry& add(std::string key, Value value) {
    const auto [it, inserted] = entries_.emplace(std::move(key), std::move(value));
    if (!inserted) throw std::logic_error("Registry: duplicate key '" + it->first + "'");
    return *this;
  }

  /// Pointer to the entry, or nullptr when unknown.
  [[nodiscard]] const Value* find(const std::string& key) const {
    const auto it = entries_.find(key);
    return it == entries_.end() ? nullptr : &it->second;
  }

  /// Entry lookup that fails loudly, naming the valid alternatives — the
  /// error surface the cas_run CLI shows for a typo'd spec.
  [[nodiscard]] const Value& at(const std::string& key, const std::string& what) const {
    if (const Value* v = find(key)) return *v;
    std::string msg = "unknown " + what + " '" + key + "' (known: ";
    bool first = true;
    for (const auto& [k, _] : entries_) {
      if (!first) msg += ", ";
      msg += k;
      first = false;
    }
    msg += ")";
    throw std::invalid_argument(msg);
  }

  [[nodiscard]] bool contains(const std::string& key) const { return find(key) != nullptr; }

  /// Registered keys in sorted order (std::map iteration).
  [[nodiscard]] std::vector<std::string> keys() const {
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& [k, _] : entries_) out.push_back(k);
    return out;
  }

  [[nodiscard]] size_t size() const { return entries_.size(); }

  [[nodiscard]] auto begin() const { return entries_.begin(); }
  [[nodiscard]] auto end() const { return entries_.end(); }

 private:
  std::map<std::string, Value> entries_;
};

}  // namespace cas::runtime
