// SolverService: the server-shaped entry point of the runtime. Accepts
// many concurrent SolveRequests and executes them over ONE shared
// par::ThreadPool, so a batch of requests time-shares the machine instead
// of each spawning its own walker threads (the oversubscription the
// ROADMAP's production framing forbids).
//
// On top of the PR-2 fan-out, the service is a real serving layer:
//
//   dedup      concurrent requests with the same canonical key
//              (SolveRequest::canonical_key — id excluded, defaults
//              normalized) coalesce onto ONE execution; every follower
//              receives the leader's report stamped served_by = "dedup".
//   cache      completed reports of deterministic-seed requests land in a
//              bounded LRU (optional TTL); a resubmission is served from
//              memory, stamped served_by = "cache". Stochastic requests
//              (seed 0 — a fresh seed is drawn per execution) are
//              dedup-only; an unsolved timeout-bounded run is also never
//              cached (a retry might do better).
//   admission  a CostModel priced off the analysis layer's run-time
//              distribution fits predicts each request's expected
//              walker-seconds; with a budget configured, requests priced
//              over it are rejected up front (served_by = "rejected",
//              error names the estimate) instead of burning pool time.
//              The model auto-calibrates from the service's OWN completed
//              reports: every clean solved first-win execution contributes
//              a single-walker-equivalent sample (wall * walkers — for an
//              exponential run-time law the minimum of k walkers scaled by
//              k IS a single-walker draw), and once a (problem, size) cell
//              has enough samples its built-in/extrapolated price is
//              replaced by a fit of what this machine actually measured.
//
// Each request keeps its own first-win cancellation: run_multiwalk gives
// every request a private stop flag, so a winner in one request never
// cancels walkers of another — a test races >= 8 concurrent requests to
// pin exactly that isolation.
//
// Requests are driven by lightweight coordinator threads (one per
// executing request, blocked in future::get most of their life); walker
// work is pool-only and never submits further pool tasks, so batches
// cannot deadlock the pool. Dedup followers and cache hits consume no
// coordinator at all.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "par/thread_pool.hpp"
#include "runtime/cost_model.hpp"
#include "runtime/report_cache.hpp"
#include "runtime/spec.hpp"
#include "runtime/strategy.hpp"
#include "util/histogram.hpp"

namespace cas::runtime {

/// Aggregate statistics over a SolverService's lifetime — the surface the
/// streaming front-end exports. Identities:
///   submitted = completed + (still in flight)
///   completed = executions + dedup_hits + cache_hits + rejected
///   failed    = completions with a non-empty error (rejections included)
struct ServiceStats {
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t solved = 0;
  uint64_t failed = 0;  // completed with a non-empty error

  uint64_t executions = 0;   // real strategy runs
  uint64_t dedup_hits = 0;   // coalesced onto an in-flight execution
  uint64_t cache_hits = 0;   // served from the report cache
  uint64_t rejected = 0;     // denied admission by the cost model

  uint64_t cache_size = 0;       // point-in-time entry count
  uint64_t cache_evictions = 0;  // LRU capacity evictions
  uint64_t cache_expired = 0;    // TTL expiries observed on lookup

  /// Sum of CostModel estimates over admitted executions (0 unless an
  /// admission budget is configured).
  double estimated_walker_seconds = 0.0;
  /// Times the cost model was refit from the service's own completed
  /// reports (auto-calibration).
  uint64_t cost_model_calibrations = 0;
  /// Clean solved runs whose reset counters fed the cost model's
  /// per-instance diversification histogram.
  uint64_t diversification_samples = 0;

  // Real work only: dedup/cache servings do not double-count.
  uint64_t total_iterations = 0;
  double total_wall_seconds = 0.0;  // summed per-execution wall time

  /// Per-outcome service latency (seconds, submission -> completion):
  /// log-spaced streaming histograms, so cas_serve / cas_load report
  /// p50/p95/p99 straight off to_json without private hooks. Indexed by
  /// served_by outcome: executed, dedup, cache, rejected.
  util::LogHistogram latency_executed;
  util::LogHistogram latency_dedup;
  util::LogHistogram latency_cache;
  util::LogHistogram latency_rejected;

  [[nodiscard]] util::Json to_json() const;
};

class SolverService {
 public:
  struct Options {
    /// Walker pool width; 0 = hardware concurrency.
    unsigned pool_threads = 0;
    /// Report-cache entries; 0 disables caching (dedup stays on).
    size_t cache_capacity = 128;
    /// Cache entry lifetime; 0 = never expires.
    double cache_ttl_seconds = 0.0;
    /// Reject requests whose estimated walker-seconds exceed this;
    /// 0 = admit everything. Dedup followers and cache hits are always
    /// served — they cost nothing.
    double admission_budget_walker_seconds = 0.0;
    /// Refit the cost model's (problem, size) price from the service's own
    /// completed reports. Samples come from clean SOLVED executions of the
    /// first-win strategies (sequential/multiwalk/mpi), normalized to
    /// single-walker-equivalents (wall * walkers); unsolved or errored
    /// runs are censored observations and never contribute.
    bool auto_calibrate = true;
    /// Samples a (problem, size) cell needs before its first refit; each
    /// later sample refits again over a rolling window of the most recent
    /// 64.
    int auto_calibrate_min_samples = 8;
    /// Monotonic clock (seconds) for cache TTL; null = steady_clock.
    /// Injection point for the TTL tests.
    std::function<double()> clock;
    /// Replacement executor for leader runs; null = runtime::solve on the
    /// shared pool. The distributed front-end injects dist::solve_distributed
    /// here, so the serving layer (dedup, cache, admission, stats) wraps the
    /// multi-process runner without the runtime depending on dist. Must
    /// honour the solve() contract: never throw, failures in report.error.
    std::function<SolveReport(const SolveRequest&, const StrategyContext&)> solve_fn;
  };

  using Stats = ServiceStats;

  SolverService();
  explicit SolverService(Options opts);
  /// Blocks until every in-flight request has completed.
  ~SolverService();

  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  /// Completion callback for the streaming submission API. Invoked exactly
  /// once per request with its final report.
  using Callback = std::function<void(SolveReport)>;

  /// Asynchronously execute one request on the shared pool. The future
  /// never carries an exception: failures surface as SolveReport::error.
  std::future<SolveReport> submit(SolveRequest req);

  /// Streaming form of submit — the server front-end's entry point, where
  /// completions must land in an event loop's wakeup queue instead of a
  /// blocking future. `done` runs exactly once:
  ///   * synchronously on the CALLER's thread for the free serving paths
  ///     (cache hit, admission rejection) — they complete inside this call;
  ///   * on the request's coordinator thread for executions and for dedup
  ///     followers (fulfilled from their leader's completion epilogue).
  /// The callback must not block for long and must not wait on the service
  /// being destroyed (the destructor waits for all callbacks to return).
  /// If submission itself throws (coordinator thread creation failed, the
  /// accounting is rolled back), `done` is never invoked.
  void submit_with_callback(SolveRequest req, Callback done);

  /// Execute a batch concurrently; reports come back in request order.
  std::vector<SolveReport> solve_batch(const std::vector<SolveRequest>& requests);

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] par::ThreadPool& pool() { return pool_; }
  /// Requests currently executing (leaders only; followers/cache/rejects
  /// never occupy a slot).
  [[nodiscard]] uint64_t inflight() const;

  /// Price a request on the live cost model WITHOUT submitting it — the
  /// server front-end's load-shedding hook (reject with the estimate
  /// before queueing). Returns an unknown estimate for unresolvable
  /// requests; never throws.
  [[nodiscard]] CostEstimate estimate(const SolveRequest& req) const;

  /// Reconfigure the admission budget at runtime (0 = admit everything).
  void set_admission_budget(double walker_seconds);
  /// Refit the admission price list for (problem, size) from measured
  /// single-walker run times. Synchronized against concurrent submits —
  /// the cost model is only ever touched under the service mutex, so a
  /// long-running service can recalibrate from its own completed reports
  /// while traffic flows.
  void calibrate_cost_model(const std::string& problem, int size,
                            const std::vector<double>& run_seconds);
  /// Snapshot of the admission price list (copy: the live model is only
  /// accessed under the service mutex).
  [[nodiscard]] CostModel cost_model() const;

 private:
  /// One dedup follower: completion callback plus its own submission
  /// timestamp (for the latency histogram) and request id (reports are
  /// restamped under the follower's id).
  struct Follower {
    std::string id;
    double t0 = 0;
    Callback done;
  };

  /// One coalescing group: the leader executes, followers' callbacks are
  /// fulfilled from the leader's completion epilogue.
  struct Inflight {
    std::vector<Follower> followers;
  };

  void run_leader(const SolveRequest& resolved, const std::string& key,
                  const std::shared_ptr<Inflight>& entry, bool cacheable_seed, double t0,
                  Callback done);

  /// Feed one completed execution into the auto-calibration buffers and
  /// refit the cost model's cell once it has enough samples. Caller holds
  /// mu_.
  void auto_calibrate_locked(const SolveReport& report);

  Options opts_;
  par::ThreadPool pool_;
  CostModel cost_model_;
  std::function<double()> clock_;

  mutable std::mutex mu_;
  std::condition_variable idle_cv_;
  ServiceStats stats_;
  ReportCache cache_;
  std::map<std::string, std::shared_ptr<Inflight>> inflight_by_key_;
  uint64_t inflight_ = 0;
  /// (problem, size) -> rolling single-walker-equivalent run-time samples
  /// feeding the cost model's auto-calibration.
  std::map<std::pair<std::string, int>, std::vector<double>> calibration_samples_;
};

}  // namespace cas::runtime
