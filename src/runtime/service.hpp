// SolverService: the server-shaped entry point of the runtime. Accepts
// many concurrent SolveRequests and executes them over ONE shared
// par::ThreadPool, so a batch of requests time-shares the machine instead
// of each spawning its own walker threads (the oversubscription the
// ROADMAP's production framing forbids).
//
// Each request keeps its own first-win cancellation: run_multiwalk gives
// every request a private stop flag, so a winner in one request never
// cancels walkers of another — a test races >= 8 concurrent requests to
// pin exactly that isolation.
//
// Requests are driven by lightweight coordinator threads (one per
// in-flight request, blocked in future::get most of their life); walker
// work is pool-only and never submits further pool tasks, so batches
// cannot deadlock the pool.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <future>
#include <mutex>
#include <vector>

#include "par/thread_pool.hpp"
#include "runtime/spec.hpp"
#include "runtime/strategy.hpp"

namespace cas::runtime {

class SolverService {
 public:
  struct Options {
    /// Walker pool width; 0 = hardware concurrency.
    unsigned pool_threads = 0;
  };

  /// Aggregate statistics over the service's lifetime.
  struct Stats {
    uint64_t submitted = 0;
    uint64_t completed = 0;
    uint64_t solved = 0;
    uint64_t failed = 0;  // completed with a non-empty error
    uint64_t total_iterations = 0;
    double total_wall_seconds = 0.0;  // summed per-request wall time

    [[nodiscard]] util::Json to_json() const;
  };

  SolverService();
  explicit SolverService(Options opts);
  /// Blocks until every in-flight request has completed.
  ~SolverService();

  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  /// Asynchronously execute one request on the shared pool. The future
  /// never carries an exception: failures surface as SolveReport::error.
  std::future<SolveReport> submit(SolveRequest req);

  /// Execute a batch concurrently; reports come back in request order.
  std::vector<SolveReport> solve_batch(const std::vector<SolveRequest>& requests);

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] par::ThreadPool& pool() { return pool_; }

 private:
  SolveReport run_one(const SolveRequest& req);

  par::ThreadPool pool_;
  mutable std::mutex mu_;
  std::condition_variable idle_cv_;
  Stats stats_;
  uint64_t inflight_ = 0;
};

}  // namespace cas::runtime
