// Aggregate header for the solver runtime: registries (problems, engines,
// strategies), the SolveRequest -> SolveReport strategy layer, and the
// batch-capable SolverService with its serving machinery (canonical-key
// dedup, the LRU report cache, and cost-estimated admission). This is the
// layer the cas_run CLI drives from declarative scenario specs.
#pragma once

#include "runtime/cost_model.hpp"
#include "runtime/engines.hpp"
#include "runtime/problems.hpp"
#include "runtime/registry.hpp"
#include "runtime/report_cache.hpp"
#include "runtime/service.hpp"
#include "runtime/spec.hpp"
#include "runtime/strategy.hpp"
