// radar_waveform — why Costas arrays matter (the paper's Sec. II history:
// "these arrays have been developed in the 1960's to compute a set of sonar
// and radar frequencies avoiding noise").
//
// A Costas array of order n defines a frequency-hopping waveform: at time
// slot i, transmit frequency f_{perm[i]}. Its discrete auto-ambiguity
// function counts time/Doppler coincidences between the waveform and a
// shifted copy of itself; the Costas property is EXACTLY the statement that
// every off-origin cell holds at most 1 — the ideal "thumbtack" ambiguity
// shape that lets a radar resolve range and velocity simultaneously.
//
// This example builds a waveform (algebraic construction or search),
// contrasts its full sidelobe matrix with a naive linear chirp (whose
// diagonal ridge makes range/Doppler ambiguous), and checks the
// cross-ambiguity of two different Costas waveforms sharing a band
// (multi-user operation).
//
//   $ ./radar_waveform --n 16
#include <cstdio>
#include <numeric>
#include <vector>

#include "core/adaptive_search.hpp"
#include "costas/ambiguity.hpp"
#include "costas/checker.hpp"
#include "costas/construction.hpp"
#include "costas/model.hpp"
#include "util/flags.hpp"

using namespace cas;

namespace {

void report(const char* name, const std::vector<int>& perm, bool matrix) {
  const int n = static_cast<int>(perm.size());
  std::printf("--- %s (n=%d) ---\n", name, n);
  std::printf("hop pattern: ");
  for (int v : perm) std::printf("%d ", v);
  std::printf("\nCostas: %s\n", costas::is_costas(perm) ? "yes" : "no");
  const auto amb = costas::auto_ambiguity(perm);
  const auto st = costas::sidelobe_stats(amb);
  std::printf("worst-case sidelobe: %d %s\n", st.max_sidelobe,
              st.max_sidelobe <= 1 ? "(ideal thumbtack ambiguity)"
                                   : "(ambiguous: echoes can alias in range/Doppler)");
  std::printf("mainlobe/max-sidelobe ratio: %.1f; %lld hits spread over %lld cells\n",
              st.thumbtack_ratio, static_cast<long long>(st.total_hits),
              static_cast<long long>(st.occupied_cells));
  if (matrix) {
    std::printf("delay-Doppler hit matrix (origin center; '.'=0):\n%s",
                costas::render_ambiguity(amb).c_str());
  }
  std::printf("\n");
}

std::vector<int> make_costas(int n, uint64_t seed) {
  if (auto c = costas::construct_any(n)) {
    std::printf("(construction: %s)\n", costas::available_constructions(n).front().c_str());
    return *c;
  }
  std::printf("(no algebraic construction for n=%d; searching with Adaptive Search)\n", n);
  costas::CostasProblem problem(n);
  core::AdaptiveSearch<costas::CostasProblem> engine(problem,
                                                     costas::recommended_config(n, seed));
  const auto st = engine.solve();
  return st.solved ? st.solution : std::vector<int>{};
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(
      "radar_waveform — Costas arrays as frequency-hop radar waveforms:\n"
      "auto-ambiguity sidelobes (the application that motivated Costas\n"
      "arrays; paper Sec. II) and cross-ambiguity between two users.");
  flags.add_int("n", 16, "waveform length (number of time slots)");
  flags.add_int("seed", 1, "seed for the search fallback");
  flags.add_bool("matrix", true, "print the full delay-Doppler hit matrix");
  if (!flags.parse(argc, argv)) return 0;
  const int n = static_cast<int>(flags.get_int("n"));
  const auto seed = static_cast<uint64_t>(flags.get_int("seed"));
  const bool matrix = flags.get_bool("matrix") && n <= 24;

  // Naive waveform: linear chirp. Every shifted copy of a chirp lands on
  // the chirp again — the classic ambiguity ridge.
  std::vector<int> chirp(static_cast<size_t>(n));
  std::iota(chirp.begin(), chirp.end(), 1);
  report("linear chirp", chirp, matrix);

  const auto wave_a = make_costas(n, seed);
  if (wave_a.empty()) {
    std::printf("search failed\n");
    return 1;
  }
  report("Costas waveform A", wave_a, matrix);

  // A second, independent waveform for the same band: multi-user radar.
  costas::CostasProblem problem(n);
  core::AdaptiveSearch<costas::CostasProblem> engine(
      problem, costas::recommended_config(n, seed + 1));
  const auto search = engine.solve();
  if (search.solved && search.solution != wave_a) {
    report("Costas waveform B (independent search)", search.solution, false);
    const auto cross = costas::cross_ambiguity(wave_a, search.solution);
    std::printf("cross-ambiguity A vs B: worst coincidence count %d of n=%d\n",
                cross.max_anywhere(), n);
    std::printf("(low cross-ambiguity means the two users barely interfere;\n"
                " Costas pairs are not guaranteed orthogonal, but stay far\n"
                " below the n-high auto-ambiguity mainlobe)\n");
  }
  return 0;
}
