// parallel_scaling — the paper's experiment at YOUR machine's scale, with
// REAL threads (no simulation): run independent multi-walk at 1, 2, 4, ...
// walkers and watch expected time-to-solution shrink.
//
// This is the ground-truth companion to the cluster simulator: on a
// many-core host it directly reproduces the left edge of Table III; the
// simulator extrapolates the rest via order statistics (DESIGN.md §4).
//
// Built on the solver runtime: each cell is a declarative SolveRequest
// executed by the registered strategy ("multiwalk" or "mpi"), so this
// driver is a thin scenario loop over runtime::solve.
//
//   $ ./parallel_scaling --n 16 --reps 10 --max-walkers 8
#include <cstdio>
#include <vector>

#include "analysis/summary.hpp"
#include "runtime/runtime.hpp"
#include "util/flags.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace cas;

int main(int argc, char** argv) {
  util::Flags flags(
      "parallel_scaling — real-thread independent multi-walk scaling on this host.");
  flags.add_int("n", 15, "CAP instance size");
  flags.add_int("reps", 10, "repetitions per walker count");
  flags.add_int("max-walkers", 8, "largest multi-walk width (powers of two up to this)");
  flags.add_int("seed", 2012, "master seed");
  flags.add_bool("mpi-style", false, "use the MPI-style communicator implementation");
  if (!flags.parse(argc, argv)) return 0;

  const int n = static_cast<int>(flags.get_int("n"));
  const int reps = static_cast<int>(flags.get_int("reps"));
  const int max_walkers = static_cast<int>(flags.get_int("max-walkers"));
  const auto seed = static_cast<uint64_t>(flags.get_int("seed"));

  std::printf("CAP n=%d, %d repetitions per point, hardware threads: %u\n\n", n, reps,
              std::thread::hardware_concurrency());
  std::printf("Note: beyond the physical core count walkers time-share, so wall-clock\n"
              "gains flatten — the simulator (bench_table3_ha8000) models what a\n"
              "machine with genuinely more cores would do.\n\n");

  runtime::SolveRequest base;
  base.problem = "costas";
  base.size = n;
  base.strategy = flags.get_bool("mpi-style") ? "mpi" : "multiwalk";

  util::Table table("Real-thread multi-walk (wall seconds)");
  table.header({"walkers", "avg", "med", "min", "max", "speedup", "winner iters (avg)"});
  double ref = -1;
  for (int w = 1; w <= max_walkers; w *= 2) {
    std::vector<double> times;
    double winner_iters = 0;
    for (int r = 0; r < reps; ++r) {
      runtime::SolveRequest req = base;
      req.walkers = w;
      req.seed = seed + static_cast<uint64_t>(r) * 7919 + static_cast<uint64_t>(w);
      const auto report = runtime::solve(req);
      if (!report.error.empty() || !report.solved) {
        std::fprintf(stderr, "unsolved run (should not happen): %s\n", report.error.c_str());
        return 1;
      }
      times.push_back(report.wall_seconds);
      winner_iters += static_cast<double>(report.winner_stats.iterations);
    }
    const auto s = analysis::summarize(times);
    if (ref < 0) ref = s.mean;
    table.row({util::strf("%d", w), util::strf("%.3f", s.mean), util::strf("%.3f", s.median),
               util::strf("%.3f", s.min), util::strf("%.3f", s.max),
               util::strf("%.2fx", ref / s.mean),
               util::with_commas(static_cast<long long>(winner_iters / reps))});
  }
  std::printf("%s\n", table.to_text().c_str());
  return 0;
}
