// construction_atlas — the state of knowledge on Costas arrays, order by
// order (paper Sec. II: enumerations to n = 29, algebraic constructions
// for most but not all orders, and the famous open cases n = 32, 33).
//
// For every order up to --limit the atlas prints: the published total and
// symmetry-class counts (cross-checked against this library's enumerator
// for small n), which algebraic constructions cover the order, a sample
// array when one can be built, and the existence status. The output makes
// the paper's motivation visible at a glance: the count C(n) collapses
// after its n = 16 peak while n! explodes, and the construction families
// leave gaps (19, 31, then 32/33 ...) that only search can fill.
//
//   $ ./construction_atlas --limit 36
#include <cstdio>

#include "costas/checker.hpp"
#include "costas/construction.hpp"
#include "costas/database.hpp"
#include "costas/enumerate.hpp"
#include "util/flags.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace cas;

int main(int argc, char** argv) {
  util::Flags flags(
      "construction_atlas — per-order status of the Costas array problem:\n"
      "published counts, construction coverage, open cases.");
  flags.add_int("limit", 36, "largest order to report");
  flags.add_int("verify", 8, "cross-check counts against the enumerator up to this order");
  if (!flags.parse(argc, argv)) return 0;
  const int limit = static_cast<int>(flags.get_int("limit"));
  const int verify = static_cast<int>(flags.get_int("verify"));

  util::Table table("published enumeration counts; '-' = beyond the enumerated range");
  table.header({"n", "C(n)", "classes", "density", "constructions", "status"});
  for (int n = 1; n <= limit; ++n) {
    const auto count = costas::known_costas_count(n);
    const auto classes = costas::known_class_count(n);
    const auto density = costas::known_density(n);
    const auto methods = costas::available_constructions(n);
    const char* status = "";
    switch (costas::existence_status(n)) {
      case costas::ExistenceStatus::kEnumerated: status = "enumerated"; break;
      case costas::ExistenceStatus::kConstructible: status = "constructible"; break;
      case costas::ExistenceStatus::kUnknown:
        status = (n == 32 || n == 33) ? "OPEN PROBLEM" : "no construction here";
        break;
    }
    table.row({util::strf("%d", n),
               count ? util::with_commas(static_cast<long long>(*count)) : "-",
               classes ? util::with_commas(static_cast<long long>(*classes)) : "-",
               density ? util::strf("%.1e", *density) : "-",
               methods.empty() ? "(none)" : util::strf("%zu known", methods.size()), status});
  }
  std::printf("%s\n", table.to_text().c_str());

  // Cross-check the database against this library's own enumerator.
  std::printf("enumerator cross-check (n <= %d):\n", verify);
  for (int n = 1; n <= verify; ++n) {
    const auto arrays = costas::all_costas(n);
    const bool ok =
        static_cast<int64_t>(arrays.size()) == costas::known_costas_count(n).value_or(-1);
    std::printf("  n=%-2d enumerated %6zu arrays  %s\n", n, arrays.size(),
                ok ? "== database" : "!= database (BUG)");
  }

  // Show one certified array per constructible order in a narrow band.
  std::printf("\nsample constructions (first row of each family):\n");
  for (int n : {10, 16, 22, 26, 30}) {
    if (n > limit) break;
    if (auto arr = costas::construct_any(n)) {
      std::printf("  n=%-2d [%s]  %s\n", n,
                  costas::available_constructions(n).empty()
                      ? "search"
                      : costas::available_constructions(n).front().c_str(),
                  costas::is_costas(*arr) ? "valid" : "INVALID (BUG)");
    }
  }

  const auto open = costas::unknown_orders_up_to(limit);
  std::printf("\norders with no construction covered here: ");
  for (int n : open) std::printf("%d ", n);
  std::printf("\n%s\n%s\n", costas::describe_order(32).c_str(),
              costas::describe_order(33).c_str());
  return 0;
}
