// csp_gallery — Adaptive Search is domain-independent (paper Sec. III: the
// same engine that solves Costas is cited solving N-Queens ~40x faster than
// Comet and Magic Square 100-500x faster). This example runs the one engine
// over every CSP model the runtime's problem registry knows — the same
// benchmark set Diaz's reference AS library ships — each as a declarative
// SolveRequest, with the per-problem tuned configuration and the
// independent solution checker coming from the registry instead of being
// hardcoded here.
//
//   $ ./csp_gallery --queens 256 --costas 16 --engine as
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "runtime/runtime.hpp"
#include "util/flags.hpp"

using namespace cas;

int main(int argc, char** argv) {
  util::Flags flags(
      "csp_gallery — one engine, every registered CSP model (N-Queens,\n"
      "All-Interval prob007, Magic Square prob019, Langford, partition,\n"
      "alpha, Costas), driven through the solver runtime.");
  flags.add_int("queens", 256, "N-Queens board size");
  flags.add_int("interval", 20, "All-Interval series length");
  flags.add_int("magic", 6, "Magic Square order");
  flags.add_int("langford", 16, "Langford L(2,n) order (rounded up to 0 or 3 mod 4)");
  flags.add_int("partition", 40, "Number-partitioning size (rounded up to multiple of 4)");
  flags.add_int("costas", 16, "Costas array order");
  flags.add_string("engine", "as", "engine to race across the gallery (see cas_run --list)");
  flags.add_int("seed", 7, "random seed");
  if (!flags.parse(argc, argv)) return 0;
  const auto seed = static_cast<uint64_t>(flags.get_int("seed"));

  const std::vector<std::pair<std::string, int>> gallery{
      {"queens", static_cast<int>(flags.get_int("queens"))},
      {"all-interval", static_cast<int>(flags.get_int("interval"))},
      {"magic-square", static_cast<int>(flags.get_int("magic"))},
      {"langford", static_cast<int>(flags.get_int("langford"))},
      {"partition", static_cast<int>(flags.get_int("partition"))},
      {"alpha", 0},
      {"costas", static_cast<int>(flags.get_int("costas"))},
  };

  int failures = 0;
  for (const auto& [problem, size] : gallery) {
    runtime::SolveRequest req;
    req.problem = problem;
    req.size = size;
    req.engine = flags.get_string("engine");
    req.strategy = "sequential";
    req.seed = seed;
    const auto report = runtime::solve(req);
    if (!report.error.empty()) {
      std::printf("%-22s ERROR: %s\n", problem.c_str(), report.error.c_str());
      ++failures;
      continue;
    }
    std::printf("%-22s %s in %8.3f s, %10llu iterations, %8llu local minima (size %d)\n",
                problem.c_str(), report.solved ? "solved" : "FAILED", report.wall_seconds,
                static_cast<unsigned long long>(report.winner_stats.iterations),
                static_cast<unsigned long long>(report.winner_stats.local_minima),
                report.request.size);
    if (!report.solved) ++failures;
    if (report.checked && !report.check_passed) {
      std::printf("  WARNING: checker disagrees!\n");
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}
