// csp_gallery — Adaptive Search is domain-independent (paper Sec. III: the
// same engine that solves Costas is cited solving N-Queens ~40x faster than
// Comet and Magic Square 100-500x faster). This example runs the one engine
// over seven different CSP models through the same LocalSearchProblem
// interface: N-Queens, All-Interval Series, Magic Square, Langford pairing,
// number partitioning, the alpha cipher, and Costas — the same benchmark
// set Diaz's reference AS library ships.
//
//   $ ./csp_gallery --queens 256 --interval 20 --magic 6 --costas 16
#include <cstdio>

#include "core/adaptive_search.hpp"
#include "costas/checker.hpp"
#include "costas/model.hpp"
#include "problems/all_interval.hpp"
#include "problems/alpha.hpp"
#include "problems/langford.hpp"
#include "problems/magic_square.hpp"
#include "problems/partition.hpp"
#include "problems/queens.hpp"
#include "util/flags.hpp"
#include "util/timer.hpp"

using namespace cas;

namespace {

template <core::LocalSearchProblem P>
core::RunStats run(const char* name, P& problem, core::AsConfig cfg, bool expect_valid) {
  core::AdaptiveSearch<P> engine(problem, cfg);
  const auto st = engine.solve();
  std::printf("%-22s %s in %8.3f s, %10llu iterations, %8llu local minima%s\n", name,
              st.solved ? "solved" : "FAILED", st.wall_seconds,
              static_cast<unsigned long long>(st.iterations),
              static_cast<unsigned long long>(st.local_minima),
              expect_valid ? "" : " (?)");
  return st;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(
      "csp_gallery — one Adaptive Search engine, four constraint problems\n"
      "(N-Queens, All-Interval prob007, Magic Square prob019, Costas).");
  flags.add_int("queens", 256, "N-Queens board size");
  flags.add_int("interval", 20, "All-Interval series length");
  flags.add_int("magic", 6, "Magic Square order");
  flags.add_int("langford", 16, "Langford L(2,n) order (n = 0 or 3 mod 4)");
  flags.add_int("partition", 40, "Number-partitioning size (multiple of 4)");
  flags.add_int("costas", 16, "Costas array order");
  flags.add_int("seed", 7, "random seed");
  if (!flags.parse(argc, argv)) return 0;
  const auto seed = static_cast<uint64_t>(flags.get_int("seed"));

  {
    problems::QueensProblem p(static_cast<int>(flags.get_int("queens")));
    core::AsConfig cfg;
    cfg.seed = seed;
    cfg.tabu_tenure = 4;
    cfg.reset_limit = 4;
    cfg.reset_fraction = 0.05;
    const auto st = run("N-Queens", p, cfg, true);
    if (st.solved && !p.valid()) std::printf("  WARNING: checker disagrees!\n");
  }
  {
    problems::AllIntervalProblem p(static_cast<int>(flags.get_int("interval")));
    core::AsConfig cfg;
    cfg.seed = seed;
    cfg.tabu_tenure = 3;
    cfg.reset_limit = 2;
    cfg.reset_fraction = 0.15;
    cfg.plateau_probability = 0.5;
    const auto st = run("All-Interval", p, cfg, true);
    if (st.solved && !p.valid()) std::printf("  WARNING: checker disagrees!\n");
  }
  {
    problems::MagicSquareProblem p(static_cast<int>(flags.get_int("magic")));
    core::AsConfig cfg;
    cfg.seed = seed;
    cfg.tabu_tenure = 5;
    cfg.reset_limit = 3;
    cfg.reset_fraction = 0.1;
    cfg.plateau_probability = 0.93;  // the paper's plateau tuning showcase
    const auto st = run("Magic Square", p, cfg, true);
    if (st.solved && !p.valid()) std::printf("  WARNING: checker disagrees!\n");
  }
  {
    int ln = static_cast<int>(flags.get_int("langford"));
    if (!problems::LangfordProblem::solvable(ln)) {
      const int requested = ln;
      while (!problems::LangfordProblem::solvable(ln)) ++ln;
      std::printf("Langford L(2,%d) has no solutions (n must be 0 or 3 mod 4); using %d\n",
                  requested, ln);
    }
    problems::LangfordProblem p(ln);
    core::AsConfig cfg;
    cfg.seed = seed;
    const auto st = run("Langford", p, cfg, true);
    if (st.solved && !p.valid()) std::printf("  WARNING: checker disagrees!\n");
  }
  {
    problems::PartitionProblem p(static_cast<int>(flags.get_int("partition")));
    core::AsConfig cfg;
    cfg.seed = seed;
    const auto st = run("Number Partitioning", p, cfg, true);
    if (st.solved && !p.valid()) std::printf("  WARNING: checker disagrees!\n");
  }
  {
    problems::AlphaProblem p;
    const auto st = run("Alpha cipher", p, problems::AlphaProblem::recommended_config(seed), true);
    if (st.solved && !p.valid()) std::printf("  WARNING: checker disagrees!\n");
    if (st.solved)
      std::printf("  A=%d B=%d C=%d ... Z=%d (the unique rec.puzzles assignment)\n",
                  p.value_of('A'), p.value_of('B'), p.value_of('C'), p.value_of('Z'));
  }
  {
    costas::CostasProblem p(static_cast<int>(flags.get_int("costas")));
    const auto st = run("Costas", p, costas::recommended_config(
                                          static_cast<int>(flags.get_int("costas")), seed),
                        true);
    if (st.solved && !costas::is_costas(st.solution)) std::printf("  WARNING: checker disagrees!\n");
  }
  return 0;
}
