// Exhaustive enumeration of Costas arrays — the ground truth behind the
// paper's Sec. II ("among the 29! permutations there are only 164 Costas
// arrays" for n=29). This example counts all arrays and symmetry classes
// for small orders and prints the density of solutions in permutation
// space, the quantity whose collapse makes large instances brutally hard
// for search (and is why the paper's Table I times explode with n).
//
//   $ ./enumerate_costas --max-n 10 --est-n 14
#include <cmath>
#include <cstdio>

#include "costas/database.hpp"
#include "costas/enumerate.hpp"
#include "costas/estimate.hpp"
#include "costas/symmetry.hpp"
#include "util/flags.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  cas::util::Flags flags(
      "enumerate_costas — count all Costas arrays (and symmetry classes) by "
      "exhaustive backtracking, then estimate beyond by Knuth probing.");
  flags.add_int("max-n", 10, "largest order to enumerate (full search!)");
  flags.add_int("est-n", 14, "estimate counts up to this order with Knuth probes");
  flags.add_int("probes", 200000, "Knuth probes per estimated order");
  if (!flags.parse(argc, argv)) return 0;
  const int max_n = static_cast<int>(flags.get_int("max-n"));

  cas::util::Table table("Costas arrays by order (exhaustive backtracking)");
  table.header({"n", "arrays", "known", "symmetry classes", "n! (search space)",
                "density", "time (s)"});
  double lognfact = 0;
  for (int n = 1; n <= max_n; ++n) {
    lognfact += std::log10(static_cast<double>(n));
    cas::util::WallTimer timer;
    const auto arrays = cas::costas::all_costas(n);
    const double secs = timer.seconds();
    const size_t classes = cas::costas::count_symmetry_classes(arrays);
    const double density = static_cast<double>(arrays.size()) / std::pow(10.0, lognfact);
    const uint64_t known =
        n < 30 ? cas::costas::kKnownCostasCounts[n] : 0;
    table.row({cas::util::strf("%d", n), cas::util::strf("%zu", arrays.size()),
               known ? cas::util::strf("%llu", static_cast<unsigned long long>(known)) : "?",
               cas::util::strf("%zu", classes), cas::util::strf("10^%.1f", lognfact),
               cas::util::strf("%.2e", density), cas::util::strf("%.2f", secs)});
  }
  std::printf("%s\n", table.to_text().c_str());

  // Past comfortable enumeration: Knuth's Monte-Carlo tree estimator gives
  // the count in seconds, with an error bar (practical reach n <= ~16).
  const int est_n = static_cast<int>(flags.get_int("est-n"));
  const auto probes = static_cast<uint64_t>(flags.get_int("probes"));
  if (est_n > max_n) {
    cas::util::Table est_table(
        cas::util::strf("Knuth Monte-Carlo estimates (%llu probes per order)",
                        static_cast<unsigned long long>(probes)));
    est_table.header({"n", "estimate", "95% CI", "published", "probe hit rate"});
    for (int n = max_n + 1; n <= est_n; ++n) {
      const auto est = cas::costas::estimate_costas_count(n, probes,
                                                          static_cast<uint64_t>(1975 + n));
      const auto known = cas::costas::known_costas_count(n);
      est_table.row(
          {cas::util::strf("%d", n), cas::util::strf("%.0f", est.mean),
           cas::util::strf("[%.0f, %.0f]", est.lower(), est.upper()),
           known ? cas::util::strf("%lld", static_cast<long long>(*known)) : "?",
           cas::util::strf("%.1e", est.hit_rate)});
    }
    std::printf("%s\n", est_table.to_text().c_str());
  }

  std::printf("Density collapses with n: this is the paper's motivation for attacking\n"
              "CAP with parallel stochastic search rather than exhaustive methods.\n");
  return 0;
}
