// costas_explorer — the command-line workbench for this library.
//
// Solve a CAP instance with any engine (sequential AS, parallel multi-walk
// AS, Dialectic Search, hill climbing), print the array, its grid and
// difference triangle, verify it with the independent checker, or generate
// arrays with the algebraic constructions.
//
// Examples:
//   costas_explorer --n 18                          # sequential AS
//   costas_explorer --n 20 --walkers 8              # parallel multi-walk
//   costas_explorer --n 17 --engine ds              # Dialectic Search
//   costas_explorer --n 22 --construct              # algebraic construction
//   costas_explorer --n 16 --seed 7 --verbose
//   costas_explorer --n 24 --info                   # order status (database)
//   costas_explorer --n 14 --ambiguity              # radar sidelobe matrix
#include <cstdio>
#include <string>

#include "core/adaptive_search.hpp"
#include "core/dialectic_search.hpp"
#include "core/hill_climber.hpp"
#include "core/rickard_healy.hpp"
#include "core/simulated_annealing.hpp"
#include "core/tabu_search.hpp"
#include "costas/ambiguity.hpp"
#include "costas/checker.hpp"
#include "costas/construction.hpp"
#include "costas/database.hpp"
#include "costas/model.hpp"
#include "par/multiwalk.hpp"
#include "util/flags.hpp"
#include "util/strings.hpp"

using namespace cas;

namespace {

void print_solution(const std::vector<int>& perm, bool verbose) {
  std::string s = "[";
  for (size_t i = 0; i < perm.size(); ++i) {
    s += util::strf("%d%s", perm[i], i + 1 < perm.size() ? "," : "");
  }
  s += "]";
  std::printf("solution: %s\n", s.c_str());
  const bool ok = costas::is_costas(perm);
  std::printf("checker : %s\n", ok ? "VALID Costas array" : "INVALID!");
  if (!ok) std::printf("  reason: %s\n", costas::explain_violation(perm).c_str());
  if (verbose) {
    std::printf("\n%s\n", costas::render_grid(perm).c_str());
    std::printf("difference triangle:\n%s", costas::render_triangle(perm).c_str());
  }
}

void print_ambiguity(const std::vector<int>& perm) {
  const auto amb = costas::auto_ambiguity(perm);
  const auto st = costas::sidelobe_stats(amb);
  std::printf("\nauto-ambiguity: max sidelobe %d, mainlobe/sidelobe %.1f, "
              "%lld hits / %lld cells\n",
              st.max_sidelobe, st.thumbtack_ratio, static_cast<long long>(st.total_hits),
              static_cast<long long>(st.occupied_cells));
  if (perm.size() <= 24)
    std::printf("delay-Doppler hit matrix:\n%s", costas::render_ambiguity(amb).c_str());
}

void print_stats(const core::RunStats& st) {
  std::printf("stats   : %llu iterations, %llu local minima, %llu resets "
              "(%llu early escapes), %llu swaps, %.3f s\n",
              static_cast<unsigned long long>(st.iterations),
              static_cast<unsigned long long>(st.local_minima),
              static_cast<unsigned long long>(st.resets),
              static_cast<unsigned long long>(st.custom_reset_escapes),
              static_cast<unsigned long long>(st.swaps), st.wall_seconds);
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(
      "costas_explorer — solve, construct and inspect Costas arrays.\n"
      "Part of the reproduction of Diaz et al., 'Parallel local search for\n"
      "the Costas Array Problem' (IPPS 2012).");
  flags.add_int("n", 18, "instance size (order of the Costas array)");
  flags.add_int("walkers", 1, "parallel walkers (independent multi-walk) ");
  flags.add_int("seed", 42, "random seed");
  flags.add_string("engine", "as", "engine: as | ds | sa | hc | ts | rh");
  flags.add_bool("construct", false, "use algebraic constructions instead of search");
  flags.add_bool("info", false, "print the order's database status and exit");
  flags.add_bool("ambiguity", false, "also print the radar ambiguity analysis");
  flags.add_bool("mpi-style", false, "use the MPI-style communicator multi-walk");
  flags.add_bool("verbose", false, "print grid and difference triangle");
  flags.add_bool("no-chang", false, "disable the Chang half-triangle optimization");
  flags.add_bool("err-unit", false, "use ERR(d)=1 instead of n^2-d^2");
  if (!flags.parse(argc, argv)) return 0;

  const int n = static_cast<int>(flags.get_int("n"));
  const auto seed = static_cast<uint64_t>(flags.get_int("seed"));
  const bool verbose = flags.get_bool("verbose");

  if (flags.get_bool("info")) {
    std::printf("%s\n", costas::describe_order(n).c_str());
    const auto methods = costas::available_constructions(n);
    if (methods.empty()) {
      std::printf("constructions: none covered by this library\n");
    } else {
      std::printf("constructions:\n");
      for (const auto& m : methods) std::printf("  - %s\n", m.c_str());
    }
    if (const auto d = costas::known_density(n))
      std::printf("solution density: %.2e of %d! permutations\n", *d, n);
    return 0;
  }

  if (flags.get_bool("construct")) {
    const auto methods = costas::available_constructions(n);
    if (auto perm = costas::construct_any(n)) {
      std::printf("constructions available for n=%d:\n", n);
      for (const auto& m : methods) std::printf("  - %s\n", m.c_str());
      print_solution(*perm, verbose);
      if (flags.get_bool("ambiguity")) print_ambiguity(*perm);
      return 0;
    }
    std::printf("no covered construction for n=%d", n);
    if (n == 32 || n == 33)
      std::printf(" (whether ANY Costas array of this order exists is an open problem)");
    std::printf("\n");
    return 1;
  }

  costas::CostasOptions mopts;
  if (flags.get_bool("no-chang")) mopts.use_chang = false;
  if (flags.get_bool("err-unit")) mopts.err = costas::ErrFunction::kUnit;

  const std::string engine = flags.get_string("engine");
  const int walkers = static_cast<int>(flags.get_int("walkers"));

  if (walkers > 1) {
    auto walker = [&](int, uint64_t walker_seed, core::StopToken stop) {
      costas::CostasProblem problem(n, mopts);
      auto cfg = costas::recommended_config(n, walker_seed);
      core::AdaptiveSearch<costas::CostasProblem> eng(problem, cfg);
      return eng.solve(stop);
    };
    const auto result = flags.get_bool("mpi-style")
                            ? par::run_multiwalk_mpi_style(walkers, seed, walker)
                            : par::run_multiwalk(walkers, seed, walker);
    if (!result.solved) {
      std::printf("no solution found\n");
      return 1;
    }
    std::printf("multi-walk: %d walkers, winner %d after %.3f s (total %llu iterations)\n",
                walkers, result.winner, result.wall_seconds,
                static_cast<unsigned long long>(result.total_iterations()));
    print_solution(result.winner_stats.solution, verbose);
    print_stats(result.winner_stats);
    if (flags.get_bool("ambiguity")) print_ambiguity(result.winner_stats.solution);
    return 0;
  }

  costas::CostasProblem problem(n, mopts);
  core::RunStats st;
  if (engine == "as") {
    auto cfg = costas::recommended_config(n, seed);
    core::AdaptiveSearch<costas::CostasProblem> eng(problem, cfg);
    st = eng.solve();
  } else if (engine == "ds") {
    core::DsConfig cfg;
    cfg.seed = seed;
    core::DialecticSearch<costas::CostasProblem> eng(problem, cfg);
    st = eng.solve();
  } else if (engine == "sa") {
    core::SaConfig cfg;
    cfg.seed = seed;
    core::SimulatedAnnealing<costas::CostasProblem> eng(problem, cfg);
    st = eng.solve();
  } else if (engine == "hc") {
    core::HcConfig cfg;
    cfg.seed = seed;
    core::HillClimber<costas::CostasProblem> eng(problem, cfg);
    st = eng.solve();
  } else if (engine == "ts") {
    core::TsConfig cfg;
    cfg.seed = seed;
    core::TabuSearch<costas::CostasProblem> eng(problem, cfg);
    st = eng.solve();
  } else if (engine == "rh") {
    core::RhConfig cfg;
    cfg.seed = seed;
    core::RickardHealySearch<costas::CostasProblem> eng(problem, cfg);
    st = eng.solve();
  } else {
    std::fprintf(stderr, "unknown engine '%s' (use as | ds | sa | hc | ts | rh)\n",
                 engine.c_str());
    return 2;
  }
  if (!st.solved) {
    std::printf("no solution found\n");
    return 1;
  }
  print_solution(st.solution, verbose);
  print_stats(st);
  if (flags.get_bool("ambiguity")) print_ambiguity(st.solution);
  return 0;
}
