// Quickstart: solve a Costas Array Problem instance with parallel
// independent multi-walk Adaptive Search — the paper's headline method —
// in ~30 lines of user code.
//
//   $ ./quickstart            # CAP n=16 on 4 walkers
#include <cstdio>

#include "core/adaptive_search.hpp"
#include "costas/checker.hpp"
#include "costas/model.hpp"
#include "par/multiwalk.hpp"

int main() {
  using namespace cas;
  const int n = 16;        // instance size
  const int walkers = 4;   // independent multi-walk width
  const uint64_t master_seed = 2012;

  // Each walker owns its problem instance and engine; the only shared state
  // is the stop flag polled every probe_interval iterations.
  auto walker = [n](int /*id*/, uint64_t seed, core::StopToken stop) {
    costas::CostasProblem problem(n);
    core::AdaptiveSearch<costas::CostasProblem> engine(problem,
                                                       costas::recommended_config(n, seed));
    return engine.solve(stop);
  };

  const auto result = par::run_multiwalk(walkers, master_seed, walker);
  if (!result.solved) {
    std::printf("no solution found\n");
    return 1;
  }

  std::printf("CAP %d solved by walker %d in %.3f s (%llu iterations on the winning walk)\n",
              n, result.winner, result.wall_seconds,
              static_cast<unsigned long long>(result.winner_stats.iterations));
  std::printf("permutation:");
  for (int v : result.winner_stats.solution) std::printf(" %d", v);
  std::printf("\nvalid: %s\n",
              costas::is_costas(result.winner_stats.solution) ? "yes" : "NO (bug!)");
  std::printf("\n%s", costas::render_grid(result.winner_stats.solution).c_str());
  return 0;
}
